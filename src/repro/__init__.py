"""repro — reproduction of "SCU: A GPU Stream Compaction Unit for Graph
Processing" (Segura, Arnau, González; ISCA 2019).

Public surface:

* :mod:`repro.graph` — CSR graphs, the six Table 5 dataset analogs, IO;
* :mod:`repro.core` — the SCU: five compaction operations, hash-table
  filtering and grouping, configuration/area/energy models,
  ``build_system`` to attach one to a simulated GPU;
* :mod:`repro.gpu` — the GTX 980 / Tegra X1 cost models (Tables 3-4);
* :mod:`repro.algorithms` — BFS / SSSP / PageRank on three system
  variants, validated against exact references;
* :mod:`repro.harness` — drivers regenerating every evaluation artifact;
* :mod:`repro.request` — the unified run API: :class:`RunRequest`
  (canonical cache key shared by every caching layer) and
  :class:`RunOutcome` (typed ``run_algorithm`` result);
* :mod:`repro.serve` — the ``repro serve`` HTTP simulation service.
"""

from .algorithms import SystemMode, execute_request, run_algorithm
from .core import ScuSystem, StreamCompactionUnit, build_system
from .errors import (
    ConfigError,
    ExperimentError,
    GraphError,
    OperationError,
    ReproError,
    SimulationError,
)
from .graph import CsrGraph, load_dataset
from .harness import run_all, run_experiment
from .phases import Engine, PhaseKind, PhaseReport, RunReport
from .request import RunOutcome, RunRequest

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SystemMode",
    "run_algorithm",
    "execute_request",
    "RunRequest",
    "RunOutcome",
    "ScuSystem",
    "StreamCompactionUnit",
    "build_system",
    "CsrGraph",
    "load_dataset",
    "run_experiment",
    "run_all",
    "Engine",
    "PhaseKind",
    "PhaseReport",
    "RunReport",
    "ReproError",
    "GraphError",
    "ConfigError",
    "SimulationError",
    "OperationError",
    "ExperimentError",
]
