"""Exception hierarchy for the SCU reproduction library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without
catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for malformed or inconsistent graph data."""


class GraphFormatError(GraphError):
    """Raised when a graph file cannot be parsed."""


class ConfigError(ReproError):
    """Raised for invalid hardware or experiment configuration."""


class SimulationError(ReproError):
    """Raised when a simulation reaches an inconsistent state."""


class OperationError(ReproError):
    """Raised when an SCU operation receives invalid operands."""


class ExperimentError(ReproError):
    """Raised when an experiment driver cannot produce its artifact."""


class ObservabilityError(ReproError):
    """Raised for misuse of the tracing/metrics instrumentation layer."""


class BenchError(ReproError):
    """Raised for malformed benchmark artifacts or comparison misuse."""


class ServiceError(ReproError):
    """Base class for simulation-service (``repro serve``) failures."""


class ProtocolError(ServiceError):
    """Raised for a malformed or invalid wire-form run request."""


class ServiceOverloadError(ServiceError):
    """Raised when the admission queue is full; carries ``retry_after_s``."""

    def __init__(self, message: str, *, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceTimeoutError(ServiceError):
    """Raised when a request exceeds its per-request deadline."""


class ServiceUnavailableError(ServiceError):
    """Raised when the service is draining and not admitting work."""
