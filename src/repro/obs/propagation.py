"""W3C Trace Context propagation (the ``traceparent`` header).

A distributed trace is stitched from spans recorded in different
processes — the loadtest client, the serve front-end, forked sweep
workers — so every hop must carry the same *trace context*: which trace
this work belongs to (``trace_id``) and which span caused it
(``span_id``).  This module implements the interoperable wire form,
the W3C ``traceparent`` header::

    traceparent: 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01
                 ^^ ^^^^^^^^^^^^^^^^ trace-id ^^^^^^ ^^ span-id ^^^^^^ flags

Parsing is deliberately forgiving in exactly the ways the spec says to
be (unknown future versions with a well-formed prefix are accepted) and
strict everywhere else (wrong lengths, non-hex digits, all-zero IDs,
and the reserved version ``ff`` are rejected by returning ``None`` —
a bad header must never fail a request, only orphan its trace).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Optional

#: Canonical (lowercase) header name; HTTP header lookup is case-insensitive.
TRACEPARENT_HEADER = "traceparent"

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
_SPAN_ID_RE = re.compile(r"^[0-9a-f]{16}$")
_VERSION_RE = re.compile(r"^[0-9a-f]{2}$")
_FLAGS_RE = re.compile(r"^[0-9a-f]{2}$")

#: The ``sampled`` trace flag — the only flag the W3C level 1 spec defines.
FLAG_SAMPLED = 0x01


@dataclass(frozen=True)
class TraceContext:
    """One hop's trace identity: ``(trace_id, span_id, flags)``.

    ``trace_id`` is 32 lowercase hex digits shared by every span of the
    trace; ``span_id`` identifies the *caller's* span — the parent of
    whatever span the receiving process starts.
    """

    trace_id: str
    span_id: str
    flags: int = FLAG_SAMPLED

    def __post_init__(self) -> None:
        if not _TRACE_ID_RE.match(self.trace_id) or self.trace_id == "0" * 32:
            raise ValueError(f"invalid trace_id {self.trace_id!r}")
        if not _SPAN_ID_RE.match(self.span_id) or self.span_id == "0" * 16:
            raise ValueError(f"invalid span_id {self.span_id!r}")
        if not 0 <= self.flags <= 0xFF:
            raise ValueError(f"invalid flags {self.flags!r}")

    @property
    def sampled(self) -> bool:
        return bool(self.flags & FLAG_SAMPLED)

    def child(self, span_id: Optional[str] = None) -> "TraceContext":
        """The context a downstream hop should receive: same trace, new span."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            flags=self.flags,
        )


def new_trace_id() -> str:
    """A fresh random 32-hex-digit trace ID (never all zeros)."""
    while True:
        trace_id = os.urandom(16).hex()
        if trace_id != "0" * 32:
            return trace_id


def new_span_id() -> str:
    """A fresh random 16-hex-digit span ID (never all zeros)."""
    while True:
        span_id = os.urandom(8).hex()
        if span_id != "0" * 16:
            return span_id


def make_context() -> TraceContext:
    """A brand-new root trace context (fresh trace and span IDs)."""
    return TraceContext(trace_id=new_trace_id(), span_id=new_span_id())


def parse_traceparent(value: Optional[str]) -> Optional[TraceContext]:
    """Parse one ``traceparent`` header; ``None`` for anything malformed.

    Accepts version ``00`` exactly, and any other non-``ff`` version as
    long as its first four ``-``-separated fields are well-formed (the
    spec's forward-compatibility rule: future versions may only append).
    """
    if value is None:
        return None
    parts = value.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if not _VERSION_RE.match(version) or version == "ff":
        return None
    if version == "00" and len(parts) != 4:
        return None
    if not _TRACE_ID_RE.match(trace_id) or trace_id == "0" * 32:
        return None
    if not _SPAN_ID_RE.match(span_id) or span_id == "0" * 16:
        return None
    if not _FLAGS_RE.match(flags):
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id, flags=int(flags, 16))


def format_traceparent(context: TraceContext) -> str:
    """The version-00 wire form of ``context``."""
    return f"00-{context.trace_id}-{context.span_id}-{context.flags:02x}"


__all__ = [
    "TRACEPARENT_HEADER",
    "FLAG_SAMPLED",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "make_context",
    "parse_traceparent",
    "format_traceparent",
]
