"""Labelled metrics registry: counters, gauges, histograms.

The simulator's hot layers record *what happened* here — hash-table
occupancy, L2 hit rates, coalescing factors, frontier sizes — keyed by
metric name plus a small label set (``scu.filter.keep_rate{scheme=bfs}``).
A registry is cheap enough to leave on unconditionally for scalar
updates; code that must *compute* a value first (an occupancy scan, a
group-size histogram) guards on ``metrics.enabled``.

Instruments follow the Prometheus vocabulary:

* :class:`Counter` — monotonically increasing totals (``inc``);
* :class:`Gauge` — last-write-wins values (``set``);
* :class:`Histogram` — running count/sum/min/max of observations,
  with a vectorized ``observe_many`` for per-element series.

:class:`NullMetrics` is the disabled registry: it hands out shared
no-op instruments, so instrumentation sites never branch.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Tuple

import numpy as np

from ..errors import ObservabilityError

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class Counter:
    """Monotonic total, one running sum per label combination."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter {self.name}: negative increment")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._series.values())

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Gauge:
    """Last-write-wins value per label combination."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._series[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        key = _label_key(labels)
        if key not in self._series:
            raise ObservabilityError(
                f"gauge {self.name}: no sample for labels {dict(key)}"
            )
        return self._series[key]

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class _HistogramSeries:
    __slots__ = ("count", "sum", "min", "max")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram:
    """Running count/sum/min/max of observed values per label set."""

    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def _series_for(self, labels: Dict[str, Any]) -> _HistogramSeries:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries()
        return series

    def observe(self, value: float, **labels: Any) -> None:
        self._series_for(labels).add(float(value))

    def observe_many(self, values: Iterable[float], **labels: Any) -> None:
        """Vectorized bulk observation (group sizes, per-stream factors)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        series = self._series_for(labels)
        series.count += int(arr.size)
        series.sum += float(arr.sum())
        series.min = min(series.min, float(arr.min()))
        series.max = max(series.max, float(arr.max()))

    def stats(self, **labels: Any) -> Dict[str, float]:
        key = _label_key(labels)
        if key not in self._series:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        s = self._series[key]
        return {
            "count": s.count,
            "sum": s.sum,
            "min": s.min,
            "max": s.max,
            "mean": s.mean,
        }

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {
                "labels": dict(key),
                "count": s.count,
                "sum": s.sum,
                "min": s.min,
                "max": s.max,
                "mean": s.mean,
            }
            for key, s in sorted(self._series.items())
        ]


class MetricsRegistry:
    """Get-or-create home of every instrument recorded during one run."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-serializable dump of every series of every metric."""
        return {
            name: {"kind": metric.kind, "series": metric.snapshot()}
            for name, metric in sorted(self._metrics.items())
        }

    def flat_snapshot(self) -> List[Dict[str, Any]]:
        """Label-flattened, deterministically ordered JSON form.

        One entry per (metric, label set), sorted by metric name and
        then by the canonical label string, regardless of insertion or
        observation order — so two registries that recorded the same
        data serialize identically (bench artifacts diff cleanly).
        Counter/gauge entries carry ``value``; histograms carry their
        count/sum/min/max/mean stats.
        """
        out: List[Dict[str, Any]] = []
        for name, payload in self.snapshot().items():
            for series in payload["series"]:
                entry: Dict[str, Any] = {
                    "metric": name,
                    "kind": payload["kind"],
                    "labels": _format_labels(_label_key(series["labels"])),
                }
                if payload["kind"] == "histogram":
                    for stat in ("count", "sum", "min", "max", "mean"):
                        entry[stat] = series[stat]
                else:
                    entry["value"] = series["value"]
                out.append(entry)
        return out

    def render_prometheus(self) -> str:
        """Prometheus text-exposition dump (the ``/metrics`` endpoint).

        Metric names are sanitized to the Prometheus charset (dots
        become underscores); counters and gauges emit one sample per
        label set, histograms emit ``_count``/``_sum``/``_min``/``_max``
        series.  Output is deterministically ordered, like every other
        snapshot form in this module.
        """
        lines: List[str] = []
        for name, payload in self.snapshot().items():
            base = _prometheus_name(name)
            kind = payload["kind"]
            if kind == "histogram":
                lines.append(f"# TYPE {base}_count gauge")
                for series in payload["series"]:
                    labels = _prometheus_labels(series["labels"])
                    for stat in ("count", "sum", "min", "max"):
                        lines.append(
                            f"{base}_{stat}{labels} {series[stat]!r}"
                        )
            else:
                lines.append(f"# TYPE {base} {kind}")
                for series in payload["series"]:
                    labels = _prometheus_labels(series["labels"])
                    lines.append(f"{base}{labels} {series['value']!r}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Human-readable dump, one line per (metric, label set)."""
        lines: List[str] = []
        for name, payload in self.snapshot().items():
            for series in payload["series"]:
                labels = _format_labels(_label_key(series["labels"]))
                if payload["kind"] == "histogram":
                    lines.append(
                        f"{name}{labels} count={series['count']} "
                        f"mean={series['mean']:.4g} min={series['min']:.4g} "
                        f"max={series['max']:.4g}"
                    )
                else:
                    lines.append(f"{name}{labels} {series['value']:.6g}")
        return "\n".join(lines)


def _prometheus_name(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prometheus_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_prometheus_name(k)}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class _NullCounter(Counter):
    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float, **labels: Any) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float, **labels: Any) -> None:
        pass

    def observe_many(self, values: Iterable[float], **labels: Any) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class NullMetrics(MetricsRegistry):
    """Disabled registry: shared no-op instruments, nothing retained."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM


def merge_flat_snapshots(
    snapshots: Iterable[List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Combine ``flat_snapshot`` payloads from several registries.

    The parallel sweep engine runs grid cells in worker processes, each
    with its own registry; this merges their snapshots into the single
    list a bench artifact embeds.  Entries are keyed by (metric, kind,
    labels): counters sum, gauges take the value of the *latest*
    snapshot in iteration order (callers pass snapshots in grid order,
    matching what a shared serial registry would retain), and histograms
    pool their count/sum/min/max with the mean recomputed.  Output
    ordering matches :meth:`MetricsRegistry.flat_snapshot` — sorted by
    metric name then canonical label string — so a merged payload diffs
    cleanly against a serial one.
    """
    merged: Dict[Tuple[str, str, str], Dict[str, Any]] = {}
    for snapshot in snapshots:
        for entry in snapshot:
            key = (entry["metric"], entry["kind"], entry["labels"])
            current = merged.get(key)
            if current is None:
                merged[key] = dict(entry)
            elif entry["kind"] == "counter":
                current["value"] += entry["value"]
            elif entry["kind"] == "gauge":
                current["value"] = entry["value"]
            else:  # histogram
                current["count"] += entry["count"]
                current["sum"] += entry["sum"]
                current["min"] = min(current["min"], entry["min"])
                current["max"] = max(current["max"], entry["max"])
                current["mean"] = (
                    current["sum"] / current["count"] if current["count"] else 0.0
                )
    return [merged[key] for key in sorted(merged)]


#: Process-wide disabled registry; the default everywhere.
NULL_METRICS = NullMetrics()

#: Process-lifetime registry for infrastructure metrics that exist
#: outside any single observed run (e.g. the run-cache hit/miss
#: counters of :mod:`repro.algorithms.runner`).
_GLOBAL_METRICS = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    return _GLOBAL_METRICS
