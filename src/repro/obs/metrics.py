"""Labelled metrics registry: counters, gauges, histograms.

The simulator's hot layers record *what happened* here — hash-table
occupancy, L2 hit rates, coalescing factors, frontier sizes — keyed by
metric name plus a small label set (``scu.filter.keep_rate{scheme=bfs}``).
A registry is cheap enough to leave on unconditionally for scalar
updates; code that must *compute* a value first (an occupancy scan, a
group-size histogram) guards on ``metrics.enabled``.

Instruments follow the Prometheus vocabulary:

* :class:`Counter` — monotonically increasing totals (``inc``);
* :class:`Gauge` — last-write-wins values (``set``);
* :class:`Histogram` — running count/sum/min/max of observations,
  with a vectorized ``observe_many`` for per-element series.  A
  histogram may additionally be registered with fixed *buckets* (e.g.
  :data:`DEFAULT_LATENCY_BUCKETS`, log-spaced from 0.5 ms to ~65 s):
  it then also keeps cumulative per-bucket counts, renders Prometheus
  ``_bucket{le=...}`` series, and can estimate quantiles
  (:meth:`Histogram.quantile`) by linear interpolation inside the
  bucket that contains the target rank.

:class:`NullMetrics` is the disabled registry: it hands out shared
no-op instruments, so instrumentation sites never branch.
"""

from __future__ import annotations

import bisect
import math
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ObservabilityError

LabelKey = Tuple[Tuple[str, str], ...]

#: Log-spaced (factor-2) latency buckets: 0.5 ms .. ~65.5 s.  Wide
#: enough for a cached hit and a cold multi-second simulation alike;
#: the implicit ``+Inf`` bucket catches everything beyond.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    0.0005 * 2**k for k in range(18)
)


def _normalize_buckets(buckets: Sequence[float]) -> Tuple[float, ...]:
    """Validate explicit bucket bounds: finite, strictly increasing."""
    bounds = tuple(float(b) for b in buckets if not math.isinf(float(b)))
    if not bounds:
        raise ObservabilityError("histogram buckets need at least one finite bound")
    if any(not math.isfinite(b) for b in bounds):
        raise ObservabilityError("histogram bucket bounds must be finite numbers")
    if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        raise ObservabilityError("histogram buckets must be strictly increasing")
    return bounds


def format_le(bound: float) -> str:
    """Canonical ``le`` label value for one bucket bound."""
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


def quantile_from_buckets(
    cumulative: Sequence[Tuple[float, float]],
    q: float,
    *,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> float:
    """Estimate the ``q``-quantile from cumulative bucket counts.

    ``cumulative`` is a sequence of ``(upper_bound, cumulative_count)``
    pairs sorted by bound, whose last entry is the ``+Inf`` bucket (its
    count is the total).  The estimate interpolates linearly inside the
    bucket containing the target rank — the standard
    ``histogram_quantile`` model.  ``lo``/``hi`` (e.g. the observed
    min/max) clamp the open-ended first and last buckets so estimates
    never leave the observed range.
    """
    if not cumulative:
        return 0.0
    total = cumulative[-1][1]
    if total <= 0:
        return 0.0
    q = min(max(float(q), 0.0), 1.0)
    target = q * total
    lower = lo if lo is not None else 0.0
    prev_cum = 0.0
    for bound, cum in cumulative:
        if cum >= target:
            upper = bound
            if math.isinf(upper):
                upper = hi if hi is not None else lower
            if hi is not None:
                upper = min(upper, hi)
            if upper < lower:
                upper = lower
            in_bucket = cum - prev_cum
            value = (
                upper
                if in_bucket <= 0
                else lower + (upper - lower) * (target - prev_cum) / in_bucket
            )
            if lo is not None:
                value = max(value, lo)
            if hi is not None:
                value = min(value, hi)
            return value
        prev_cum = cum
        lower = max(bound, lower) if lo is not None else bound
    return hi if hi is not None else cumulative[-1][0]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class Counter:
    """Monotonic total, one running sum per label combination."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter {self.name}: negative increment")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._series.values())

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Gauge:
    """Last-write-wins value per label combination."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._series[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        key = _label_key(labels)
        if key not in self._series:
            raise ObservabilityError(
                f"gauge {self.name}: no sample for labels {dict(key)}"
            )
        return self._series[key]

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class _HistogramSeries:
    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    def __init__(self, n_buckets: int = 0):
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # One bin per finite bound plus the +Inf overflow bin; None when
        # the histogram was registered without buckets.
        self.bucket_counts: Optional[List[int]] = (
            [0] * (n_buckets + 1) if n_buckets else None
        )

    def add(self, value: float, bounds: Optional[Tuple[float, ...]] = None) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if self.bucket_counts is not None and bounds is not None:
            self.bucket_counts[bisect.bisect_left(bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self, bounds: Tuple[float, ...]) -> List[List[Any]]:
        """``[[le_label, cumulative_count], ...]`` ending at ``+Inf``."""
        assert self.bucket_counts is not None
        out: List[List[Any]] = []
        cum = 0
        for bound, count in zip(bounds, self.bucket_counts):
            cum += count
            out.append([format_le(bound), cum])
        out.append(["+Inf", self.count])
        return out


class Histogram:
    """Running count/sum/min/max of observed values per label set.

    With explicit ``buckets`` (finite, strictly increasing upper
    bounds) the histogram additionally counts observations per bucket
    — cumulatively at exposition time, Prometheus-style — and can
    estimate arbitrary quantiles from those counts.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.buckets: Optional[Tuple[float, ...]] = (
            None if buckets is None else _normalize_buckets(buckets)
        )
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def _series_for(self, labels: Dict[str, Any]) -> _HistogramSeries:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            n_buckets = len(self.buckets) if self.buckets is not None else 0
            series = self._series[key] = _HistogramSeries(n_buckets)
        return series

    def observe(self, value: float, **labels: Any) -> None:
        self._series_for(labels).add(float(value), self.buckets)

    def observe_many(self, values: Iterable[float], **labels: Any) -> None:
        """Vectorized bulk observation (group sizes, per-stream factors)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        series = self._series_for(labels)
        series.count += int(arr.size)
        series.sum += float(arr.sum())
        series.min = min(series.min, float(arr.min()))
        series.max = max(series.max, float(arr.max()))
        if series.bucket_counts is not None:
            indices = np.searchsorted(np.asarray(self.buckets), arr, side="left")
            counts = np.bincount(indices, minlength=len(series.bucket_counts))
            for i, count in enumerate(counts):
                series.bucket_counts[i] += int(count)

    def stats(self, **labels: Any) -> Dict[str, float]:
        key = _label_key(labels)
        if key not in self._series:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        s = self._series[key]
        return {
            "count": s.count,
            "sum": s.sum,
            "min": s.min,
            "max": s.max,
            "mean": s.mean,
        }

    def quantile(self, q: float, **labels: Any) -> float:
        """Estimate the ``q``-quantile from this series' bucket counts.

        Linear interpolation inside the bucket holding the target rank,
        clamped to the observed min/max.  Requires the histogram to
        have been registered with buckets.
        """
        if self.buckets is None:
            raise ObservabilityError(
                f"histogram {self.name}: quantile needs fixed buckets"
            )
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        cumulative = [
            (bound, cum)
            for bound, (_, cum) in zip(
                tuple(self.buckets) + (float("inf"),),
                series.cumulative_buckets(self.buckets),
            )
        ]
        return quantile_from_buckets(
            cumulative, q, lo=series.min, hi=series.max
        )

    def snapshot(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for key, s in sorted(self._series.items()):
            entry: Dict[str, Any] = {
                "labels": dict(key),
                "count": s.count,
                "sum": s.sum,
                "min": s.min,
                "max": s.max,
                "mean": s.mean,
            }
            if self.buckets is not None:
                entry["buckets"] = s.cumulative_buckets(self.buckets)
            out.append(entry)
        return out


class MetricsRegistry:
    """Get-or-create home of every instrument recorded during one run."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, buckets=buckets)
            return metric
        if not isinstance(metric, Histogram):
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        if buckets is not None and metric.buckets != _normalize_buckets(buckets):
            raise ObservabilityError(
                f"histogram {name!r} already registered with different buckets"
            )
        return metric

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-serializable dump of every series of every metric."""
        return {
            name: {"kind": metric.kind, "series": metric.snapshot()}
            for name, metric in sorted(self._metrics.items())
        }

    def flat_snapshot(self) -> List[Dict[str, Any]]:
        """Label-flattened, deterministically ordered JSON form.

        One entry per (metric, label set), sorted by metric name and
        then by the canonical label string, regardless of insertion or
        observation order — so two registries that recorded the same
        data serialize identically (bench artifacts diff cleanly).
        Counter/gauge entries carry ``value``; histograms carry their
        count/sum/min/max/mean stats.
        """
        out: List[Dict[str, Any]] = []
        for name, payload in self.snapshot().items():
            for series in payload["series"]:
                entry: Dict[str, Any] = {
                    "metric": name,
                    "kind": payload["kind"],
                    "labels": _format_labels(_label_key(series["labels"])),
                }
                if payload["kind"] == "histogram":
                    for stat in ("count", "sum", "min", "max", "mean"):
                        entry[stat] = series[stat]
                    if "buckets" in series:
                        entry["buckets"] = [list(pair) for pair in series["buckets"]]
                else:
                    entry["value"] = series["value"]
                out.append(entry)
        return out

    def render_prometheus(self) -> str:
        """Prometheus text-exposition dump (the ``/metrics`` endpoint).

        Metric names are sanitized to the Prometheus charset (dots
        become underscores) and label values are escaped per the text
        format.  Counters and gauges emit one sample per label set.
        Bucketed histograms emit the native Prometheus histogram
        family — cumulative ``_bucket{le=...}`` series (ending at
        ``+Inf``), ``_sum`` and ``_count`` — plus ``_min``/``_max``
        gauges; bucketless histograms emit
        ``_count``/``_sum``/``_min``/``_max`` gauge series.  Every
        emitted series name is announced by its own ``# TYPE`` line,
        and output is deterministically ordered, like every other
        snapshot form in this module.
        """
        lines: List[str] = []
        for name, metric in sorted(self._metrics.items()):
            base = _prometheus_name(name)
            series_list = metric.snapshot()
            if metric.kind == "histogram":
                if getattr(metric, "buckets", None) is not None:
                    lines.append(f"# TYPE {base} histogram")
                    for series in series_list:
                        for le, cum in series["buckets"]:
                            labels = _prometheus_labels(
                                {**series["labels"], "le": le}
                            )
                            lines.append(f"{base}_bucket{labels} {cum!r}")
                        labels = _prometheus_labels(series["labels"])
                        lines.append(f"{base}_sum{labels} {series['sum']!r}")
                        lines.append(f"{base}_count{labels} {series['count']!r}")
                    extra_stats: Tuple[str, ...] = ("min", "max")
                else:
                    extra_stats = ("count", "sum", "min", "max")
                for stat in extra_stats:
                    lines.append(f"# TYPE {base}_{stat} gauge")
                    for series in series_list:
                        labels = _prometheus_labels(series["labels"])
                        lines.append(f"{base}_{stat}{labels} {series[stat]!r}")
            else:
                lines.append(f"# TYPE {base} {metric.kind}")
                for series in series_list:
                    labels = _prometheus_labels(series["labels"])
                    lines.append(f"{base}{labels} {series['value']!r}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Human-readable dump, one line per (metric, label set)."""
        lines: List[str] = []
        for name, payload in self.snapshot().items():
            for series in payload["series"]:
                labels = _format_labels(_label_key(series["labels"]))
                if payload["kind"] == "histogram":
                    lines.append(
                        f"{name}{labels} count={series['count']} "
                        f"mean={series['mean']:.4g} min={series['min']:.4g} "
                        f"max={series['max']:.4g}"
                    )
                else:
                    lines.append(f"{name}{labels} {series['value']:.6g}")
        return "\n".join(lines)


def _prometheus_name(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label escaping: ``\\``, ``"``, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prometheus_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_prometheus_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class _NullCounter(Counter):
    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float, **labels: Any) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float, **labels: Any) -> None:
        pass

    def observe_many(self, values: Iterable[float], **labels: Any) -> None:
        pass

    def quantile(self, q: float, **labels: Any) -> float:
        return 0.0


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class NullMetrics(MetricsRegistry):
    """Disabled registry: shared no-op instruments, nothing retained."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return _NULL_HISTOGRAM


def merge_flat_snapshots(
    snapshots: Iterable[List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Combine ``flat_snapshot`` payloads from several registries.

    The parallel sweep engine runs grid cells in worker processes, each
    with its own registry; this merges their snapshots into the single
    list a bench artifact embeds.  Entries are keyed by (metric, kind,
    labels): counters sum, gauges take the value of the *latest*
    snapshot in iteration order (callers pass snapshots in grid order,
    matching what a shared serial registry would retain), and histograms
    pool their count/sum/min/max with the mean recomputed.  Output
    ordering matches :meth:`MetricsRegistry.flat_snapshot` — sorted by
    metric name then canonical label string — so a merged payload diffs
    cleanly against a serial one.
    """
    merged: Dict[Tuple[str, str, str], Dict[str, Any]] = {}
    for snapshot in snapshots:
        for entry in snapshot:
            key = (entry["metric"], entry["kind"], entry["labels"])
            current = merged.get(key)
            if current is None:
                current = merged[key] = dict(entry)
                if "buckets" in entry:
                    current["buckets"] = [list(pair) for pair in entry["buckets"]]
            elif entry["kind"] == "counter":
                current["value"] += entry["value"]
            elif entry["kind"] == "gauge":
                current["value"] = entry["value"]
            else:  # histogram
                current["count"] += entry["count"]
                current["sum"] += entry["sum"]
                current["min"] = min(current["min"], entry["min"])
                current["max"] = max(current["max"], entry["max"])
                current["mean"] = (
                    current["sum"] / current["count"] if current["count"] else 0.0
                )
                if "buckets" in entry or "buckets" in current:
                    # Cumulative counts over identical bounds add
                    # elementwise; key by le so partial overlap merges.
                    pooled: Dict[str, float] = {
                        le: cum for le, cum in current.get("buckets", [])
                    }
                    for le, cum in entry.get("buckets", []):
                        pooled[le] = pooled.get(le, 0) + cum
                    current["buckets"] = [
                        [le, pooled[le]]
                        for le in sorted(
                            pooled,
                            key=lambda le: (
                                float("inf") if le == "+Inf" else float(le)
                            ),
                        )
                    ]
    return [merged[key] for key in sorted(merged)]


#: Process-wide disabled registry; the default everywhere.
NULL_METRICS = NullMetrics()

#: Process-lifetime registry for infrastructure metrics that exist
#: outside any single observed run (e.g. the run-cache hit/miss
#: counters of :mod:`repro.algorithms.runner`).
_GLOBAL_METRICS = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    return _GLOBAL_METRICS
