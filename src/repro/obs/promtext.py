"""Minimal Prometheus text-exposition parser and format checker.

Two consumers share this module:

* ``repro loadtest`` scrapes a service's ``/metrics`` endpoint before
  and after a run and diffs counter/bucket samples to compute coalesce
  and cache ratios and server-side latency quantiles;
* the test suite uses :func:`check_exposition` as a conformance gate on
  everything :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`
  emits — names in the legal charset, label values correctly escaped,
  float-parseable sample values, and a ``# TYPE`` announcement for
  every emitted series family.

The parser covers the subset of the format the registry produces (and
Prometheus itself scrapes): ``# TYPE``/comment lines and
``name{label="value",...} value`` samples, with ``\\``, ``\"`` and
``\n`` escapes in label values.  Timestamps are not supported; the
registry never emits them.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ObservabilityError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: TYPE values the format allows.
_TYPES = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})

#: Suffixes that belong to a ``# TYPE <base> histogram`` family.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


@dataclass(frozen=True)
class PromSample:
    """One parsed sample line."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float

    def labels_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def key(self) -> str:
        """Stable ``name{k=v,...}`` identity for diffing two scrapes."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"


def _parse_labels(text: str, lineno: int) -> Tuple[Tuple[str, str], ...]:
    """Parse the ``k="v",...`` body between braces (escapes included)."""
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.find("=", i)
        if eq < 0:
            raise ObservabilityError(f"line {lineno}: malformed label pair")
        name = text[i:eq]
        if not _NAME_RE.match(name):
            raise ObservabilityError(
                f"line {lineno}: invalid label name {name!r}"
            )
        if eq + 1 >= len(text) or text[eq + 1] != '"':
            raise ObservabilityError(
                f"line {lineno}: label value must be double-quoted"
            )
        value_chars: List[str] = []
        i = eq + 2
        while True:
            if i >= len(text):
                raise ObservabilityError(
                    f"line {lineno}: unterminated label value"
                )
            ch = text[i]
            if ch == "\\":
                if i + 1 >= len(text):
                    raise ObservabilityError(
                        f"line {lineno}: dangling escape in label value"
                    )
                esc = text[i + 1]
                if esc == "n":
                    value_chars.append("\n")
                elif esc in ('"', "\\"):
                    value_chars.append(esc)
                else:
                    raise ObservabilityError(
                        f"line {lineno}: unknown escape \\{esc} in label value"
                    )
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                value_chars.append(ch)
                i += 1
        labels.append((name, "".join(value_chars)))
        if i < len(text):
            if text[i] != ",":
                raise ObservabilityError(
                    f"line {lineno}: expected ',' between labels"
                )
            i += 1
    return tuple(labels)


def parse_exposition(
    text: str,
) -> Tuple[List[PromSample], Dict[str, str]]:
    """Parse one exposition into (samples, declared TYPE map).

    Raises :class:`~repro.errors.ObservabilityError` on any line that
    is not a comment, a well-formed ``# TYPE`` declaration, or a
    well-formed sample.
    """
    samples: List[PromSample] = []
    types: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ObservabilityError(
                        f"line {lineno}: malformed TYPE line"
                    )
                _, _, name, kind = parts
                if not _NAME_RE.match(name):
                    raise ObservabilityError(
                        f"line {lineno}: invalid metric name {name!r}"
                    )
                if kind not in _TYPES:
                    raise ObservabilityError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                types[name] = kind
            continue  # other comments (# HELP, ...) pass through
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ObservabilityError(f"line {lineno}: unbalanced braces")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close], lineno)
            rest = line[close + 1 :].strip()
        else:
            name, _, rest = line.partition(" ")
            labels = ()
            rest = rest.strip()
        if not _NAME_RE.match(name):
            raise ObservabilityError(
                f"line {lineno}: invalid metric name {name!r}"
            )
        if not rest:
            raise ObservabilityError(f"line {lineno}: sample has no value")
        try:
            value = float(rest)
        except ValueError as error:
            raise ObservabilityError(
                f"line {lineno}: unparseable value {rest!r}"
            ) from error
        samples.append(PromSample(name=name, labels=labels, value=value))
    return samples, types


def check_exposition(text: str, *, require_type: bool = True) -> List[PromSample]:
    """Parse and conformance-check one exposition; return its samples.

    Beyond parsing, asserts (when ``require_type``) that every sample
    belongs to a declared family: either its exact name has a ``# TYPE``
    line, or it is a ``_bucket``/``_sum``/``_count`` series of a name
    declared as a histogram.
    """
    samples, types = parse_exposition(text)
    if require_type:
        for sample in samples:
            if sample.name in types:
                continue
            for suffix in _HISTOGRAM_SUFFIXES:
                base = sample.name[: -len(suffix)]
                if (
                    sample.name.endswith(suffix)
                    and types.get(base) == "histogram"
                ):
                    break
            else:
                raise ObservabilityError(
                    f"sample {sample.name!r} has no # TYPE declaration"
                )
    return samples


def sample_map(samples: List[PromSample]) -> Dict[str, float]:
    """Flatten samples to ``{canonical-key: value}`` for scrape diffs."""
    return {sample.key(): sample.value for sample in samples}


def sum_by_name(samples: List[PromSample], name: str) -> float:
    """Total of every sample with ``name``, across all label sets."""
    return sum(s.value for s in samples if s.name == name)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_sample(sample: PromSample) -> str:
    if not sample.labels:
        return f"{sample.name} {sample.value!r}"
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sample.labels
    )
    return f"{sample.name}{{{inner}}} {sample.value!r}"


def _family_of(name: str, types: Dict[str, str]) -> str:
    """The TYPE family a sample belongs to (histogram suffixes fold in)."""
    if name in types:
        return name
    for suffix in _HISTOGRAM_SUFFIXES:
        base = name[: -len(suffix)]
        if name.endswith(suffix) and types.get(base) == "histogram":
            return base
    return name


def merge_expositions(texts: List[str]) -> str:
    """Sum several expositions into one (the cluster front's /metrics).

    Samples with identical ``name{labels}`` identity are added — the
    correct merge for counters, for the cluster-wide totals gauges
    (queue depth, in-flight), and for histogram ``_bucket``/``_sum``/
    ``_count`` series recorded against the same bucket layout.  TYPE
    declarations are unioned (first declaration wins) and re-emitted,
    so the merged text passes :func:`check_exposition` like any
    single-process exposition.
    """
    merged: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    types: Dict[str, str] = {}
    for text in texts:
        samples, declared = parse_exposition(text)
        for name, kind in declared.items():
            types.setdefault(name, kind)
        for sample in samples:
            key = (sample.name, sample.labels)
            merged[key] = merged.get(key, 0.0) + sample.value
    ordered = sorted(
        merged.items(), key=lambda item: (_family_of(item[0][0], types),) + item[0]
    )
    lines: List[str] = []
    last_family: Optional[str] = None
    for (name, labels), value in ordered:
        family = _family_of(name, types)
        if family != last_family:
            if family in types:
                lines.append(f"# TYPE {family} {types[family]}")
            last_family = family
        lines.append(_render_sample(PromSample(name=name, labels=labels, value=value)))
    return "\n".join(lines) + ("\n" if lines else "")


def bucket_cumulative(
    samples: List[PromSample], base_name: str
) -> List[Tuple[float, float]]:
    """Pooled cumulative ``(upper_bound, count)`` pairs of one histogram.

    Sums the ``<base>_bucket`` series across non-``le`` label sets (the
    loadtest wants one end-to-end distribution, not one per route) and
    returns bounds sorted ascending with ``+Inf`` last — the exact input
    :func:`~repro.obs.metrics.quantile_from_buckets` takes.
    """
    pooled: Dict[float, float] = {}
    for sample in samples:
        if sample.name != f"{base_name}_bucket":
            continue
        le = sample.labels_dict().get("le")
        if le is None:
            raise ObservabilityError(
                f"{base_name}_bucket sample is missing its 'le' label"
            )
        bound = math.inf if le == "+Inf" else float(le)
        pooled[bound] = pooled.get(bound, 0.0) + sample.value
    return [(bound, pooled[bound]) for bound in sorted(pooled)]


def diff_cumulative(
    after: List[Tuple[float, float]],
    before: List[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """Bucket-wise ``after - before`` of two cumulative scrapes."""
    base: Dict[float, float] = dict(before)
    return [
        (bound, count - base.get(bound, 0.0)) for bound, count in after
    ]


__all__ = [
    "PromSample",
    "parse_exposition",
    "check_exposition",
    "sample_map",
    "sum_by_name",
    "bucket_cumulative",
    "diff_cumulative",
]
