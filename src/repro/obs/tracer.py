"""Structured event tracer emitting Chrome ``trace_event`` JSON.

The tracer records three kinds of events against a monotonic wall-clock:

* **spans** — nestable begin/end pairs (``ph: "B"``/``"E"``) wrapping a
  unit of simulator work (a kernel launch, an SCU operation, one
  algorithm iteration);
* **instants** — point-in-time markers (``ph: "i"``);
* **counters** — named value series (``ph: "C"``) that Perfetto and
  ``chrome://tracing`` render as stacked graphs (e.g. frontier size per
  iteration).

The output of :meth:`Tracer.to_chrome` is the JSON-object flavour of the
Trace Event Format, loadable directly by Perfetto;
:meth:`Tracer.write_jsonl` writes the same events one JSON object per
line for ad-hoc ``jq``-style analysis.

Tracing must never perturb the simulation, so the tracer only *records*:
it takes no locks, mutates no simulator state, and when disabled (the
:data:`NULL_TRACER` singleton) every operation is a constant-time no-op
— hot paths guard any argument construction behind ``tracer.enabled``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List

from ..errors import ObservabilityError

#: pid/tid the single-threaded simulator reports in trace events.
TRACE_PID = 1
TRACE_TID = 1


class SpanHandle:
    """Mutable handle to an open span; lets the body attach result args.

    Arguments attached via :meth:`annotate` are emitted on the span's
    end event (Perfetto merges begin- and end-event args), so a phase
    can record its *outcome* — simulated time, DRAM bytes — computed
    after the span began.
    """

    __slots__ = ("name", "category", "start_us", "extra")

    def __init__(self, name: str, category: str, start_us: float):
        self.name = name
        self.category = category
        self.start_us = start_us
        self.extra: Dict[str, Any] = {}

    def annotate(self, **args: Any) -> "SpanHandle":
        self.extra.update(args)
        return self


class Tracer:
    """Collects trace events; one instance per observed run."""

    enabled = True

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self._clock = clock
        self._t0 = clock()
        self._stack: List[SpanHandle] = []
        self.events: List[Dict[str, Any]] = []

    # -- time ---------------------------------------------------------------

    def _now_us(self) -> float:
        """Microseconds since tracer creation (Chrome traces use us)."""
        return (self._clock() - self._t0) / 1000.0

    @property
    def depth(self) -> int:
        """Current span nesting depth."""
        return len(self._stack)

    # -- spans --------------------------------------------------------------

    def begin(self, name: str, category: str = "sim", **args: Any) -> SpanHandle:
        """Open a span; prefer the :meth:`span` context manager."""
        ts = self._now_us()
        handle = SpanHandle(name, category, ts)
        self._stack.append(handle)
        event = {
            "name": name,
            "cat": category,
            "ph": "B",
            "ts": ts,
            "pid": TRACE_PID,
            "tid": TRACE_TID,
        }
        if args:
            event["args"] = args
        self.events.append(event)
        return handle

    def end(self) -> None:
        """Close the innermost open span."""
        if not self._stack:
            raise ObservabilityError("Tracer.end() called with no open span")
        handle = self._stack.pop()
        event = {
            "name": handle.name,
            "cat": handle.category,
            "ph": "E",
            "ts": self._now_us(),
            "pid": TRACE_PID,
            "tid": TRACE_TID,
        }
        if handle.extra:
            event["args"] = handle.extra
        self.events.append(event)

    @contextmanager
    def span(self, name: str, category: str = "sim", **args: Any) -> Iterator[SpanHandle]:
        """Nestable span context: ``with tracer.span("bfs.iteration"): ...``."""
        handle = self.begin(name, category, **args)
        try:
            yield handle
        finally:
            self.end()

    # -- instants and counters ----------------------------------------------

    def instant(self, name: str, category: str = "sim", **args: Any) -> None:
        event = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",  # thread-scoped marker
            "ts": self._now_us(),
            "pid": TRACE_PID,
            "tid": TRACE_TID,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, **values: float) -> None:
        """Record one sample of a counter series (``frontier.size`` etc.)."""
        if not values:
            raise ObservabilityError(f"counter {name!r} needs at least one value")
        self.events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": self._now_us(),
                "pid": TRACE_PID,
                "tid": TRACE_TID,
                "args": {k: float(v) for k, v in values.items()},
            }
        )

    # -- export -------------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The JSON-object flavour of the Chrome Trace Event Format."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro-scu simulator"},
        }

    def write_chrome(self, path: str) -> None:
        """Write a ``trace.json`` loadable by chrome://tracing / Perfetto."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle)

    def write_jsonl(self, path: str) -> None:
        """Write one JSON object per line (for jq / pandas consumption)."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event) + "\n")


class _NullSpan:
    """Shared no-op span: context manager and handle in one object."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **args: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracer: every operation is a constant-time no-op."""

    enabled = False

    def __init__(self):  # no clock reads, no buffers
        self.events = []
        self._stack = []

    def begin(self, name: str, category: str = "sim", **args: Any) -> SpanHandle:
        return _NULL_SPAN  # type: ignore[return-value]

    def end(self) -> None:
        pass

    def span(self, name: str, category: str = "sim", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "sim", **args: Any) -> None:
        pass

    def counter(self, name: str, **values: float) -> None:
        pass


#: Process-wide disabled tracer; the default everywhere.
NULL_TRACER = NullTracer()
