"""Cross-cutting observability: event tracing, metrics, profiles.

One :class:`Observability` bundle — a :class:`~repro.obs.tracer.Tracer`
plus a :class:`~repro.obs.metrics.MetricsRegistry` — is threaded through
``build_system``/``run_algorithm`` into every simulator layer: the GPU
device, the memory hierarchy, the SCU, and the algorithm drivers.  The
default is :data:`NULL_OBS`, whose tracer and registry are no-ops, so
instrumentation costs nothing when nobody is looking and — by
construction, verified by an A/B test — never changes a simulated
number.

Typical use::

    from repro.obs import make_observability

    obs = make_observability()
    outcome = run_algorithm("bfs", graph, "TX1", mode, obs=obs)
    obs.tracer.write_chrome("trace.json")   # open in ui.perfetto.dev
    print(obs.metrics.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lru import LruCache
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    global_metrics,
    merge_flat_snapshots,
    quantile_from_buckets,
)
from .promtext import (
    PromSample,
    bucket_cumulative,
    check_exposition,
    diff_cumulative,
    parse_exposition,
    sample_map,
    sum_by_name,
)
from .profile import (
    render_sim_profile,
    render_wall_profile,
    sim_profile,
    wall_profile,
)
from .propagation import (
    TRACEPARENT_HEADER,
    TraceContext,
    format_traceparent,
    make_context,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from .spans import (
    SIM_SPAN_CATEGORIES,
    SPAN_SCHEMA_VERSION,
    SpanRecord,
    SpanStore,
    count_sim_phase_spans,
    epoch_us_now,
    perf_to_epoch_us,
    reparent_spans,
    sanitize_attributes,
    spans_from_tracer,
    spans_to_chrome,
)
from .tracer import NULL_TRACER, NullTracer, SpanHandle, Tracer


@dataclass(frozen=True)
class Observability:
    """The tracer + metrics pair one observed run shares across layers.

    Frozen so an instance is hashable and can serve directly as a
    dataclass field default (:data:`NULL_OBS`) in every instrumented
    layer; the tracer and registry it points at stay mutable.
    """

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def enabled(self) -> bool:
        """Whether any instrumentation site should compute derived values."""
        return self.tracer.enabled or self.metrics.enabled


#: Shared disabled bundle — the default of every instrumented layer.
NULL_OBS = Observability(tracer=NULL_TRACER, metrics=NULL_METRICS)


def make_observability() -> Observability:
    """A fresh enabled tracer + registry for one observed run."""
    return Observability(tracer=Tracer(), metrics=MetricsRegistry())


__all__ = [
    "Observability",
    "NULL_OBS",
    "make_observability",
    "Tracer",
    "NullTracer",
    "SpanHandle",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "quantile_from_buckets",
    "global_metrics",
    "merge_flat_snapshots",
    "PromSample",
    "parse_exposition",
    "check_exposition",
    "sample_map",
    "sum_by_name",
    "bucket_cumulative",
    "diff_cumulative",
    "LruCache",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "parse_traceparent",
    "format_traceparent",
    "make_context",
    "new_trace_id",
    "new_span_id",
    "SPAN_SCHEMA_VERSION",
    "SIM_SPAN_CATEGORIES",
    "SpanRecord",
    "SpanStore",
    "sanitize_attributes",
    "spans_from_tracer",
    "reparent_spans",
    "count_sim_phase_spans",
    "spans_to_chrome",
    "perf_to_epoch_us",
    "epoch_us_now",
    "wall_profile",
    "sim_profile",
    "render_wall_profile",
    "render_sim_profile",
]
