"""Distributed-trace spans: records, the bounded store, stitching.

The Chrome-trace :class:`~repro.obs.tracer.Tracer` stops at the process
boundary: its begin/end events are relative to one tracer's creation
and carry no trace identity.  This module is the layer above it —
schema-versioned JSON **span records** that name their trace, their
parent, and absolute wall-clock time, so spans recorded by the serve
front-end, by a forked sweep worker, and by the loadtest client can be
collected into one store and re-assembled ("stitched") into a single
Chrome trace per ``trace_id``.

The pieces:

* :class:`SpanRecord` — one completed span as a JSON-serializable
  record (``schema_version`` :data:`SPAN_SCHEMA_VERSION`), including
  optional **links** to spans in *other* traces (how a coalesced
  follower points at the leader's simulation span);
* :func:`spans_from_tracer` — convert a finished tracer's begin/end
  event stream into span records under a given trace/parent;
* :func:`reparent_spans` — adopt records produced in another process
  (a forked worker) into a trace: rewrite ``trace_id`` everywhere and
  attach the roots to a new parent, leaving internal parent/child
  edges intact — the cross-process stitching protocol;
* :class:`SpanStore` — bounded in-memory home of recent traces, the
  backing of ``GET /debug/trace/{trace_id}``;
* :func:`spans_to_chrome` — one stitched trace as a Chrome
  ``trace_event`` JSON object, with each recording process on its own
  track.

Span recording is observability, not simulation: nothing here is read
by any simulated component, and the serve A/B test pins that responses
are byte-identical with tracing on or off.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError
from .propagation import new_span_id
from .tracer import Tracer

#: Bump on any backwards-incompatible change to the span-record layout.
SPAN_SCHEMA_VERSION = 1

#: Tracer categories that mark *simulation* work (as opposed to service
#: plumbing): algorithm iterations, GPU kernel launches, SCU operations.
SIM_SPAN_CATEGORIES = ("algorithm", "gpu-kernel", "scu", "sim")

# Wall-clock anchor: pairs one perf_counter reading with one epoch
# reading so monotonic stamps taken anywhere in this process convert to
# absolute microseconds.  Forked workers inherit (and share) the parent
# machine's clocks, which is what makes cross-process stitching line up.
_ANCHOR_PERF = time.perf_counter()
_ANCHOR_EPOCH = time.time()


def perf_to_epoch_us(perf_s: float) -> float:
    """Absolute epoch microseconds of one ``time.perf_counter()`` stamp."""
    return (_ANCHOR_EPOCH + (perf_s - _ANCHOR_PERF)) * 1e6


def epoch_us_now() -> float:
    """Absolute epoch microseconds, right now."""
    return time.time() * 1e6


def _attr_value(value: Any) -> Any:
    """One attribute value coerced to a JSON-serializable shape.

    Tracer event args routinely carry domain objects (enums, dataclass
    instances); span records are wire artifacts, so anything that is not
    a JSON scalar or container falls back to ``str()`` rather than
    failing the whole export.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else str(value)
    if isinstance(value, (list, tuple)):
        return [_attr_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _attr_value(item) for key, item in value.items()}
    return str(value)


def sanitize_attributes(attributes: Dict[str, Any]) -> Dict[str, Any]:
    """A JSON-safe copy of one span's attribute dict."""
    return {str(key): _attr_value(value) for key, value in attributes.items()}


@dataclass
class SpanRecord:
    """One completed span of a distributed trace.

    ``start_us`` is absolute (unix-epoch microseconds); ``parent_id``
    is ``None`` only for a root span.  ``process`` is the logical track
    the span was recorded on (``client``, ``serve``, ``worker-<pid>``)
    and ``links`` are cross-trace references (``[{"trace_id": ...,
    "span_id": ...}]``) — a link is weaker than a parent: the linked
    span belongs to another request's trace.
    """

    trace_id: str
    span_id: str
    name: str
    start_us: float
    duration_us: float
    parent_id: Optional[str] = None
    category: str = "serve"
    status: str = "ok"
    process: str = "serve"
    attributes: Dict[str, Any] = field(default_factory=dict)
    links: List[Dict[str, str]] = field(default_factory=list)

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us

    def to_dict(self) -> Dict[str, Any]:
        """The schema-versioned JSON wire/store form."""
        payload: Dict[str, Any] = {
            "schema_version": SPAN_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "status": self.status,
            "process": self.process,
            "start_us": float(self.start_us),
            "duration_us": float(self.duration_us),
        }
        if self.attributes:
            payload["attributes"] = sanitize_attributes(self.attributes)
        if self.links:
            payload["links"] = [dict(link) for link in self.links]
        return payload

    @classmethod
    def from_dict(cls, payload: Any, *, source: str = "span") -> "SpanRecord":
        """Validate one wire-form record back into a :class:`SpanRecord`."""
        if not isinstance(payload, dict):
            raise ObservabilityError(f"{source}: expected a JSON object")
        version = payload.get("schema_version")
        if version != SPAN_SCHEMA_VERSION:
            raise ObservabilityError(
                f"{source}: span schema version {version!r} is not supported "
                f"(this build reads version {SPAN_SCHEMA_VERSION})"
            )
        for name in ("span_id", "name", "start_us", "duration_us"):
            if name not in payload:
                raise ObservabilityError(f"{source}: missing field {name!r}")
        start_us = float(payload["start_us"])
        duration_us = float(payload["duration_us"])
        if not math.isfinite(start_us) or not math.isfinite(duration_us):
            raise ObservabilityError(f"{source}: non-finite span timestamps")
        return cls(
            trace_id=str(payload.get("trace_id", "")),
            span_id=str(payload["span_id"]),
            parent_id=(
                None
                if payload.get("parent_id") is None
                else str(payload["parent_id"])
            ),
            name=str(payload["name"]),
            category=str(payload.get("category", "serve")),
            status=str(payload.get("status", "ok")),
            process=str(payload.get("process", "serve")),
            start_us=start_us,
            duration_us=max(0.0, duration_us),
            attributes=dict(payload.get("attributes", {})),
            links=[dict(link) for link in payload.get("links", [])],
        )


def spans_from_tracer(
    tracer: Tracer,
    *,
    trace_id: str,
    parent_id: Optional[str],
    base_us: float,
    process: str,
) -> List[SpanRecord]:
    """Convert a finished tracer's event stream into span records.

    The tracer's begin/end nesting becomes the parent/child tree;
    ``base_us`` anchors its relative microsecond clock (``ts=0`` is
    tracer creation) to absolute time; instants become zero-duration
    spans and counters are dropped (they have no span semantics).
    Top-level tracer spans are parented under ``parent_id``.
    """
    records: List[SpanRecord] = []
    stack: List[SpanRecord] = []
    last_ts = 0.0
    for event in tracer.events:
        ts = float(event.get("ts", 0.0))
        last_ts = max(last_ts, ts)
        phase = event.get("ph")
        if phase == "B":
            record = SpanRecord(
                trace_id=trace_id,
                span_id=new_span_id(),
                parent_id=stack[-1].span_id if stack else parent_id,
                name=event["name"],
                category=event.get("cat", "sim"),
                process=process,
                start_us=base_us + ts,
                duration_us=0.0,
                attributes=sanitize_attributes(event.get("args", {})),
            )
            records.append(record)
            stack.append(record)
        elif phase == "E":
            if not stack:
                continue  # unbalanced end: tolerate, spans are best-effort
            record = stack.pop()
            record.duration_us = max(0.0, base_us + ts - record.start_us)
            record.attributes.update(sanitize_attributes(event.get("args", {})))
        elif phase == "i":
            records.append(
                SpanRecord(
                    trace_id=trace_id,
                    span_id=new_span_id(),
                    parent_id=stack[-1].span_id if stack else parent_id,
                    name=event["name"],
                    category=event.get("cat", "sim"),
                    process=process,
                    start_us=base_us + ts,
                    duration_us=0.0,
                    attributes=sanitize_attributes(event.get("args", {})),
                )
            )
    # Spans still open when the tracer stopped close at the last event.
    for record in stack:
        record.duration_us = max(0.0, base_us + last_ts - record.start_us)
    return records


def reparent_spans(
    spans: Iterable[Any],
    *,
    trace_id: str,
    parent_id: Optional[str],
    source: str = "worker span",
) -> List[SpanRecord]:
    """Adopt foreign span records into a trace (the stitching protocol).

    ``spans`` may be :class:`SpanRecord` instances or their ``to_dict``
    wire form (what a forked worker ships back over its result pipe).
    Every record's ``trace_id`` is rewritten and records without a
    parent — the worker's local roots — are attached under
    ``parent_id``; parent/child edges *within* the batch are preserved.
    Returns new records; the inputs are not mutated.
    """
    adopted: List[SpanRecord] = []
    for span in spans:
        record = (
            replace(span) if isinstance(span, SpanRecord)
            else SpanRecord.from_dict(span, source=source)
        )
        record.trace_id = trace_id
        if record.parent_id is None:
            record.parent_id = parent_id
        adopted.append(record)
    return adopted


def count_sim_phase_spans(spans: Iterable[SpanRecord]) -> int:
    """How many spans mark simulation work (vs. service plumbing)."""
    return sum(1 for span in spans if span.category in SIM_SPAN_CATEGORIES)


class SpanStore:
    """Bounded, thread-safe in-memory store of recent traces.

    Traces evict in insertion order once ``max_traces`` is exceeded
    (the store is an operator debugging aid, not durable storage), and
    one trace holds at most ``max_spans_per_trace`` spans — overflow
    spans are counted in :attr:`dropped_spans` rather than silently
    vanishing, so ``/debug/trace`` can say the trace is truncated.
    """

    def __init__(self, max_traces: int = 128, max_spans_per_trace: int = 2048):
        if max_traces < 1:
            raise ObservabilityError(
                f"span store needs at least 1 trace, got {max_traces}"
            )
        if max_spans_per_trace < 1:
            raise ObservabilityError(
                f"span store needs at least 1 span per trace, "
                f"got {max_spans_per_trace}"
            )
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self.dropped_spans = 0
        self._traces: "OrderedDict[str, List[SpanRecord]]" = OrderedDict()
        self._lock = threading.Lock()

    def add(self, spans: Iterable[SpanRecord]) -> None:
        """File each span under its ``trace_id`` (idless spans dropped)."""
        with self._lock:
            for span in spans:
                if not span.trace_id:
                    self.dropped_spans += 1
                    continue
                bucket = self._traces.get(span.trace_id)
                if bucket is None:
                    bucket = self._traces[span.trace_id] = []
                    while len(self._traces) > self.max_traces:
                        self._traces.popitem(last=False)
                if len(bucket) >= self.max_spans_per_trace:
                    self.dropped_spans += 1
                    continue
                bucket.append(span)

    def get(self, trace_id: str) -> Optional[List[SpanRecord]]:
        """All spans of one trace, sorted by start time; None if unknown."""
        with self._lock:
            bucket = self._traces.get(trace_id)
            if bucket is None:
                return None
            spans = list(bucket)
        return sorted(spans, key=lambda s: (s.start_us, s.span_id))

    def trace_ids(self) -> List[Tuple[str, int]]:
        """``(trace_id, span_count)`` pairs, oldest trace first."""
        with self._lock:
            return [(tid, len(bucket)) for tid, bucket in self._traces.items()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


def spans_to_chrome(spans: Sequence[SpanRecord]) -> Dict[str, Any]:
    """One stitched trace as a Chrome ``trace_event`` JSON object.

    Each recording process becomes its own pid (with a ``process_name``
    metadata event), spans become complete (``"X"``) events with
    timestamps re-based to the earliest span, and span identity
    (``span_id``/``parent_id``/``links``) rides along in ``args`` so
    Perfetto's query layer can reconstruct the tree.
    """
    spans = sorted(spans, key=lambda s: (s.start_us, s.span_id))
    origin_us = spans[0].start_us if spans else 0.0
    pids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        pid = pids.get(span.process)
        if pid is None:
            pid = pids[span.process] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": span.process},
                }
            )
        args: Dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "status": span.status,
        }
        if span.attributes:
            args.update(sanitize_attributes(span.attributes))
        if span.links:
            args["links"] = [dict(link) for link in span.links]
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_us - origin_us,
                "dur": span.duration_us,
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro-scu distributed tracer",
            "trace_id": spans[0].trace_id if spans else None,
            "origin_us": origin_us,
            "span_schema_version": SPAN_SCHEMA_VERSION,
        },
    }


__all__ = [
    "SPAN_SCHEMA_VERSION",
    "SIM_SPAN_CATEGORIES",
    "SpanRecord",
    "SpanStore",
    "sanitize_attributes",
    "spans_from_tracer",
    "reparent_spans",
    "count_sim_phase_spans",
    "spans_to_chrome",
    "perf_to_epoch_us",
    "epoch_us_now",
]
