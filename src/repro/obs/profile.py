"""Profile tables derived from a trace and from a run report.

Two complementary attributions:

* :func:`wall_profile` folds a tracer's span events into a classic
  self-time profile of the *simulator itself* — where the Python
  process spends its wall-clock time (useful for making the simulator
  faster);
* :func:`sim_profile` aggregates a run report's phases by name into a
  *simulated-time* attribution — where the modeled hardware spends its
  time, energy and DRAM traffic (the paper's Figures 1 and 9-13 are
  selections of exactly this table).

Both return plain row dicts; ``render_profile_table`` turns either into
an aligned text table for the ``repro profile`` CLI command.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from ..errors import ObservabilityError

if TYPE_CHECKING:  # avoid an import cycle (phases -> mem -> obs)
    from ..phases import RunReport
    from .tracer import Tracer


def wall_profile(tracer: "Tracer") -> List[Dict[str, Any]]:
    """Aggregate span events into per-name total/self wall time.

    Self time is a span's duration minus the duration of its direct
    children, so nested instrumentation (an SCU op inside an algorithm
    iteration) is not double-counted.  Rows are sorted by self time,
    descending.  Unclosed spans are ignored.
    """
    totals: Dict[str, Dict[str, float]] = {}
    # Stack entries: [name, start_ts, child_time]
    stack: List[List[Any]] = []
    for event in tracer.events:
        phase = event.get("ph")
        if phase == "B":
            stack.append([event["name"], event["ts"], 0.0])
        elif phase == "E":
            if not stack:
                raise ObservabilityError("trace has an end event with no open span")
            name, start, child_time = stack.pop()
            duration = event["ts"] - start
            row = totals.setdefault(name, {"count": 0, "total_us": 0.0, "self_us": 0.0})
            row["count"] += 1
            row["total_us"] += duration
            row["self_us"] += duration - child_time
            if stack:
                stack[-1][2] += duration
    rows = [
        {
            "name": name,
            "count": int(row["count"]),
            "total_us": row["total_us"],
            "self_us": row["self_us"],
        }
        for name, row in totals.items()
    ]
    rows.sort(key=lambda r: r["self_us"], reverse=True)
    total_self = sum(r["self_us"] for r in rows)
    for row in rows:
        row["self_pct"] = 100.0 * row["self_us"] / total_self if total_self else 0.0
    return rows


def sim_profile(report: "RunReport") -> List[Dict[str, Any]]:
    """Aggregate a run report's phases by name into simulated-cost rows."""
    totals: Dict[str, Dict[str, float]] = {}
    for phase in report.phases:
        row = totals.setdefault(
            phase.name,
            {"count": 0, "time_s": 0.0, "energy_j": 0.0, "dram_bytes": 0.0,
             "engine": phase.engine.value, "kind": phase.kind.value},
        )
        row["count"] += 1
        row["time_s"] += phase.time_s
        row["energy_j"] += phase.dynamic_energy_j
        row["dram_bytes"] += phase.memory.dram_bytes
    rows = [{"name": name, **row} for name, row in totals.items()]
    rows.sort(key=lambda r: r["time_s"], reverse=True)
    total_time = sum(r["time_s"] for r in rows)
    for row in rows:
        row["count"] = int(row["count"])
        row["time_pct"] = 100.0 * row["time_s"] / total_time if total_time else 0.0
    return rows


def render_wall_profile(rows: List[Dict[str, Any]]) -> str:
    """Text table for :func:`wall_profile` rows."""
    width = max([len(r["name"]) for r in rows] + [len("span")])
    lines = [
        f"{'span':{width}s} {'calls':>7s} {'total ms':>10s} {'self ms':>10s} {'self %':>7s}"
    ]
    for r in rows:
        lines.append(
            f"{r['name']:{width}s} {r['count']:7d} {r['total_us'] / 1e3:10.3f} "
            f"{r['self_us'] / 1e3:10.3f} {r['self_pct']:6.1f}%"
        )
    return "\n".join(lines)


def render_sim_profile(rows: List[Dict[str, Any]]) -> str:
    """Text table for :func:`sim_profile` rows."""
    width = max([len(r["name"]) for r in rows] + [len("phase")])
    lines = [
        f"{'phase':{width}s} {'engine':>6s} {'kind':>10s} {'calls':>7s} "
        f"{'sim ms':>10s} {'time %':>7s} {'energy mJ':>10s} {'DRAM MB':>9s}"
    ]
    for r in rows:
        lines.append(
            f"{r['name']:{width}s} {r['engine']:>6s} {r['kind']:>10s} {r['count']:7d} "
            f"{r['time_s'] * 1e3:10.3f} {r['time_pct']:6.1f}% "
            f"{r['energy_j'] * 1e3:10.3f} {r['dram_bytes'] / 1e6:9.2f}"
        )
    return "\n".join(lines)
