"""Bounded LRU cache with observability counters.

One reusable cache class backs every memoized-result store in the
repository — the whole-run cache of :mod:`repro.algorithms.runner` and
the experiment-report cache of :mod:`repro.harness.experiments`.  Both
used to manage their own dictionaries (one of them unbounded); sharing
the implementation means every cache is bounded, LRU-evicting, and
reports ``<prefix>.hits`` / ``<prefix>.misses`` / ``<prefix>.evictions``
into the process-wide metrics registry the same way.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

from ..errors import ObservabilityError
from .metrics import MetricsRegistry, global_metrics

_SENTINEL = object()


class LruCache:
    """A bounded, least-recently-used mapping with cache metrics.

    Args:
        capacity: maximum number of entries; inserting beyond it evicts
            the least recently used entry.
        metrics_prefix: counter-name prefix (``<prefix>.hits`` etc.);
            ``None`` disables metric recording.
        registry: registry the counters go to; defaults to the
            process-wide :func:`~repro.obs.metrics.global_metrics`.
    """

    def __init__(
        self,
        capacity: int,
        *,
        metrics_prefix: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity <= 0:
            raise ObservabilityError(
                f"LRU cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._prefix = metrics_prefix
        self._registry = registry
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def _count(self, event: str) -> None:
        if self._prefix is None:
            return
        registry = self._registry if self._registry is not None else global_metrics()
        registry.counter(f"{self._prefix}.{event}").inc()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts a hit or miss."""
        value = self._data.get(key, _SENTINEL)
        if value is _SENTINEL:
            self._count("misses")
            return default
        self._data.move_to_end(key)
        self._count("hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU entries past capacity."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self._count("evictions")

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # Membership is a passive probe: no recency refresh, no counters.
        return key in self._data

    def clear(self) -> None:
        self._data.clear()
