"""Bounded LRU cache with observability counters.

One reusable cache class backs every memoized-result store in the
repository — the whole-run cache of :mod:`repro.algorithms.runner`, the
experiment-report cache of :mod:`repro.harness.experiments`, and the
``repro serve`` daemon's leader-span cache.  Both of the report caches
used to manage their own dictionaries (one of them unbounded); sharing
the implementation means every cache is bounded, LRU-evicting, and
reports ``<prefix>.hits`` / ``<prefix>.misses`` / ``<prefix>.evictions``
into the process-wide metrics registry the same way.

The cache is **thread-safe**: the serve daemon's ``ThreadingHTTPServer``
hits the shared run cache and the leader-span cache from many handler
threads at once, and an unlocked ``OrderedDict`` corrupts under
concurrent ``move_to_end``/``popitem`` (a ``KeyError`` mid-reorder at
best, a broken internal linked list at worst).  All mutation happens
under one internal lock; metric counting stays outside it, so a cache
counter never nests the registry under the cache lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterable, Optional

from ..errors import ObservabilityError
from .metrics import MetricsRegistry, global_metrics

_SENTINEL = object()


class LruCache:
    """A bounded, least-recently-used mapping with cache metrics.

    Args:
        capacity: maximum number of entries; inserting beyond it evicts
            the least recently used entry.
        metrics_prefix: counter-name prefix (``<prefix>.hits`` etc.);
            ``None`` disables metric recording.
        registry: registry the counters go to; defaults to the
            process-wide :func:`~repro.obs.metrics.global_metrics`.
    """

    def __init__(
        self,
        capacity: int,
        *,
        metrics_prefix: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity <= 0:
            raise ObservabilityError(
                f"LRU cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._prefix = metrics_prefix
        self._registry = registry
        self._lock = threading.Lock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def _count(self, event: str, n: int = 1) -> None:
        if self._prefix is None or n <= 0:
            return
        registry = self._registry if self._registry is not None else global_metrics()
        counter = registry.counter(f"{self._prefix}.{event}")
        for _ in range(n):
            counter.inc()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts a hit or miss."""
        with self._lock:
            value = self._data.get(key, _SENTINEL)
            if value is not _SENTINEL:
                self._data.move_to_end(key)
        if value is _SENTINEL:
            self._count("misses")
            return default
        self._count("hits")
        return value

    def get_many(self, keys: Iterable[Hashable]) -> Dict[Hashable, Any]:
        """Look up many keys under **one** lock acquisition.

        The serve micro-batcher probes a whole admission window's worth
        of cache keys at once; taking the lock per key would interleave
        with writer threads N times on the hot path.  Returns only the
        present entries (each refreshed, like :meth:`get`); hit/miss
        counters reflect the whole probe.
        """
        keys = list(keys)
        hits: Dict[Hashable, Any] = {}
        with self._lock:
            for key in keys:
                value = self._data.get(key, _SENTINEL)
                if value is not _SENTINEL:
                    self._data.move_to_end(key)
                    hits[key] = value
        self._count("hits", len(hits))
        self._count("misses", len(keys) - len(hits))
        return hits

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU entries past capacity."""
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                evicted += 1
        self._count("evictions", evicted)

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # Membership is a passive probe: no recency refresh, no counters.
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
