"""The bench grid runner: sweep, measure, assemble one artifact.

Each cell of the (algorithm x dataset x GPU x system-mode) grid is
measured twice over:

* **wall-clock** — ``reps`` fresh, un-memoized simulations timed with
  ``perf_counter`` (min/median/mean/IQR), tracking how fast the
  harness itself runs;
* **simulated** — the deterministic cost-model outputs (time, energy,
  cycles, DRAM traffic, compaction fraction) of the memoized run the
  figure drivers share, so the scoreboard sweep that follows is almost
  free.

The memoized run is executed under a shared observability bundle; its
:class:`~repro.obs.metrics.MetricsRegistry` snapshot (plus the
process-wide run-cache counters) is embedded in the artifact.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Optional, Sequence

from ..algorithms.common import SystemMode
from ..algorithms.runner import ALGORITHM_NAMES, run_algorithm
from ..gpu.config import GPU_SYSTEMS
from ..graph.datasets import DATASET_NAMES, load_dataset
from ..harness.experiments import GPU_NAMES, _mode_for, _run
from ..obs import global_metrics, make_observability
from .record import (
    BenchArtifact,
    BenchRecord,
    SimMetrics,
    WallStats,
    collect_provenance,
)
from .scoreboard import build_scoreboard, scoreboard_payload

#: Dataset subset swept by ``--quick`` (mirrors the benchmark suite).
QUICK_DATASETS = ("delaunay", "human", "kron")

#: Default wall-clock repetitions per cell.
DEFAULT_REPS = 3


@dataclass(frozen=True)
class BenchGrid:
    """What one bench run sweeps."""

    algorithms: Sequence[str]
    datasets: Sequence[str]
    gpus: Sequence[str]
    modes: Sequence[SystemMode]
    reps: int
    quick: bool

    def cells(self):
        for algorithm in self.algorithms:
            for dataset in self.datasets:
                for gpu in self.gpus:
                    for mode in self.modes:
                        yield algorithm, dataset, gpu, mode

    def describe(self) -> dict:
        payload = asdict(self)
        payload["modes"] = [mode.value for mode in self.modes]
        payload["algorithms"] = list(self.algorithms)
        payload["datasets"] = list(self.datasets)
        payload["gpus"] = list(self.gpus)
        return payload


def default_grid(
    *,
    quick: bool = False,
    algorithms: Sequence[str] | None = None,
    datasets: Sequence[str] | None = None,
    gpus: Sequence[str] | None = None,
    reps: int = DEFAULT_REPS,
) -> BenchGrid:
    if datasets is None:
        datasets = QUICK_DATASETS if quick else DATASET_NAMES
    return BenchGrid(
        algorithms=tuple(algorithms or ALGORITHM_NAMES),
        datasets=tuple(datasets),
        gpus=tuple(gpus or GPU_NAMES),
        modes=tuple(SystemMode),
        reps=max(1, reps),
        quick=quick,
    )


def run_bench(
    grid: BenchGrid,
    *,
    tag: str,
    with_scoreboard: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> BenchArtifact:
    """Sweep the grid and assemble one schema-versioned artifact."""

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    obs = make_observability()
    artifact = BenchArtifact(
        tag=tag, grid=grid.describe(), provenance=collect_provenance()
    )
    cells = list(grid.cells())
    for index, (algorithm, dataset, gpu, mode) in enumerate(cells):
        effective = _mode_for(algorithm, mode)
        graph = load_dataset(dataset)
        samples = []
        for _ in range(grid.reps):
            started = time.perf_counter()
            run_algorithm(algorithm, graph, gpu, effective)
            samples.append(time.perf_counter() - started)
        # Memoized run, shared with the scoreboard's figure drivers;
        # the obs bundle only matters on the first miss per key.
        report = _run(algorithm, dataset, gpu, effective, obs=obs)
        record = BenchRecord(
            algorithm=algorithm,
            dataset=dataset,
            gpu=gpu,
            mode=mode.value,
            effective_mode=effective.value,
            wall=WallStats.from_samples(samples),
            sim=SimMetrics.from_report(
                report, gpu_clock_hz=GPU_SYSTEMS[gpu].clock_hz
            ),
        )
        artifact.records.append(record)
        say(
            f"[{index + 1}/{len(cells)}] {record.label()}: "
            f"wall {record.wall.median_s * 1e3:.0f} ms, "
            f"sim {record.sim.sim_time_s * 1e3:.3f} ms"
        )
    if with_scoreboard:
        say("scoreboard: reproducing paper artifacts on the bench grid")
        table = build_scoreboard(datasets=grid.datasets, gpus=grid.gpus)
        artifact.scoreboard = scoreboard_payload(table)
    artifact.metrics = (
        obs.metrics.flat_snapshot() + global_metrics().flat_snapshot()
    )
    return artifact
