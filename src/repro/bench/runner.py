"""The bench grid runner: sweep, measure, assemble one artifact.

Each cell of the (algorithm x dataset x GPU x system-mode) grid is
measured twice over:

* **wall-clock** — one *discarded warmup* repetition (first-call costs:
  dataset-generation caches, numpy allocator pools) followed by
  ``reps`` fresh, un-memoized simulations timed with ``perf_counter``
  (min/median/mean/IQR), tracking how fast the harness itself runs;
* **simulated** — the deterministic cost-model outputs (time, energy,
  cycles, DRAM traffic, compaction fraction) of an observed run whose
  report primes the shared experiment cache, so the scoreboard sweep
  that follows is almost free.

Cells are executed by the parallel sweep engine
(:mod:`repro.harness.parallel`): ``jobs > 1`` shards them across worker
processes with per-cell timeout, bounded retry, and in-process
fallback, then re-assembles records **in grid order** — simulated
metrics and the scoreboard are byte-identical for every ``jobs`` value.
Worker :class:`~repro.obs.metrics.MetricsRegistry` snapshots are merged
into the artifact.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, List, Optional, Sequence

from ..algorithms.common import SystemMode
from ..algorithms.runner import ALGORITHM_NAMES
from ..backends import available_modes
from ..gpu.config import GPU_SYSTEMS
from ..graph.datasets import DATASET_NAMES
from ..harness.experiments import GPU_NAMES, _mode_for
from ..harness.parallel import CellOutcome, SweepCell, sweep_cells
from ..obs import global_metrics, merge_flat_snapshots
from .record import (
    BenchArtifact,
    BenchRecord,
    SimMetrics,
    WallStats,
    collect_provenance,
)
from .scoreboard import build_scoreboard, scoreboard_payload

#: Dataset subset swept by ``--quick`` (mirrors the benchmark suite).
QUICK_DATASETS = ("delaunay", "human", "kron")

#: Default wall-clock repetitions per cell.
DEFAULT_REPS = 3


@dataclass(frozen=True)
class BenchGrid:
    """What one bench run sweeps."""

    algorithms: Sequence[str]
    datasets: Sequence[str]
    gpus: Sequence[str]
    modes: Sequence[SystemMode]
    reps: int
    quick: bool

    def cells(self):
        for algorithm in self.algorithms:
            for dataset in self.datasets:
                for gpu in self.gpus:
                    for mode in self.modes:
                        yield algorithm, dataset, gpu, mode

    def describe(self) -> dict:
        payload = asdict(self)
        payload["modes"] = [mode.value for mode in self.modes]
        payload["algorithms"] = list(self.algorithms)
        payload["datasets"] = list(self.datasets)
        payload["gpus"] = list(self.gpus)
        return payload


def default_grid(
    *,
    quick: bool = False,
    algorithms: Sequence[str] | None = None,
    datasets: Sequence[str] | None = None,
    gpus: Sequence[str] | None = None,
    reps: int = DEFAULT_REPS,
) -> BenchGrid:
    if datasets is None:
        datasets = QUICK_DATASETS if quick else DATASET_NAMES
    return BenchGrid(
        algorithms=tuple(algorithms or ALGORITHM_NAMES),
        datasets=tuple(datasets),
        gpus=tuple(gpus or GPU_NAMES),
        # every registered backend, in registry order
        modes=tuple(SystemMode(name) for name in available_modes()),
        reps=max(1, reps),
        quick=quick,
    )


def run_bench(
    grid: BenchGrid,
    *,
    tag: str,
    with_scoreboard: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cell_timeout_s: Optional[float] = None,
    retries: int = 1,
    batch_datasets: bool = False,
) -> BenchArtifact:
    """Sweep the grid (``jobs``-wide) and assemble one artifact.

    Records always land in grid order regardless of worker completion
    order; the only fields that vary between ``jobs`` settings are
    wall-clock timings (noise by contract).  ``batch_datasets`` groups
    cells sharing a dataset into one sweep task so each worker generates
    a graph once per dataset instead of once per cell — simulated
    metrics and the scoreboard stay byte-identical (pinned by a test);
    the per-cell timeout then applies to whole groups.
    """

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    artifact = BenchArtifact(
        tag=tag, grid=grid.describe(), provenance=collect_provenance()
    )
    requested = list(grid.cells())
    cells = [
        SweepCell(
            algorithm=algorithm,
            dataset=dataset,
            gpu=gpu,
            mode=_mode_for(algorithm, mode),
            reps=grid.reps,
        )
        for algorithm, dataset, gpu, mode in requested
    ]

    def on_cell(outcome: CellOutcome, done: int, total: int) -> None:
        wall = WallStats.from_samples(
            outcome.payload.wall_samples, warmup_s=outcome.payload.warmup_s
        )
        sim_ms = outcome.payload.report.time_s() * 1e3
        suffix = ""
        if jobs > 1:
            suffix = f" (worker {outcome.worker_pid})"
        if outcome.fell_back:
            suffix = " (in-process fallback)"
        elif outcome.attempts > 1:
            suffix += f" [attempt {outcome.attempts}]"
        say(
            f"[{done}/{total}] {outcome.cell.label()}: "
            f"wall {wall.median_s * 1e3:.0f} ms, "
            f"sim {sim_ms:.3f} ms{suffix}"
        )

    outcomes = sweep_cells(
        cells,
        jobs=jobs,
        timeout_s=cell_timeout_s,
        retries=retries,
        progress=on_cell,
        batch_datasets=batch_datasets,
    )
    snapshots: List[list] = []
    for (algorithm, dataset, gpu, mode), outcome in zip(requested, outcomes):
        payload = outcome.payload
        record = BenchRecord(
            algorithm=algorithm,
            dataset=dataset,
            gpu=gpu,
            mode=mode.value,
            effective_mode=outcome.cell.mode.value,
            wall=WallStats.from_samples(
                payload.wall_samples, warmup_s=payload.warmup_s
            ),
            sim=SimMetrics.from_report(
                payload.report, gpu_clock_hz=GPU_SYSTEMS[gpu].clock_hz
            ),
        )
        artifact.records.append(record)
        snapshots.append(list(payload.metrics))
    if with_scoreboard:
        say("scoreboard: reproducing paper artifacts on the bench grid")
        table = build_scoreboard(
            datasets=grid.datasets,
            gpus=grid.gpus,
            jobs=jobs,
            cell_timeout_s=cell_timeout_s,
            retries=retries,
        )
        artifact.scoreboard = scoreboard_payload(table)
    snapshots.append(global_metrics().flat_snapshot())
    artifact.metrics = merge_flat_snapshots(snapshots)
    return artifact
