"""Service-level load harness (``repro loadtest``).

``repro bench`` measures the simulator; nothing measured the *service*
wrapped around it.  This module drives a ``repro serve`` instance —
in-process by default, or any URL — with a reproducible request mix:

* a fixed **key population** (algorithm x dataset x GPU x mode cells)
  sampled with **zipf-skewed popularity**, so a few hot keys dominate
  exactly the way the run cache and single-flight coalescing are
  designed to exploit;
* a **closed loop** (``clients`` callers issuing back-to-back) or an
  **open loop** (a fixed arrival rate that does not slow down when the
  service does — the load shape that actually exposes queueing);
* client-observed p50/p95/p99 latency and throughput, plus
  server-side truth scraped from ``/metrics`` before and after the run
  (coalesce/cache ratios from counter deltas, stage-latency quantiles
  from ``_bucket`` deltas).

The schedule is a pure function of the config's seed, so two runs of
the same build issue byte-identical request sequences; only the wall
clock differs.  Results serialize as schema-versioned
``BENCH_serve_<tag>.json`` artifacts and gate through the same
``--compare`` exit-2 contract as ``bench``/``--micro``, with an extra
``--slo`` gate (exit 3) for absolute service-level objectives.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backends import available_modes
from ..errors import BenchError
from ..obs.promtext import (
    bucket_cumulative,
    diff_cumulative,
    parse_exposition,
    sum_by_name,
)
from ..obs.metrics import quantile_from_buckets
from ..obs.propagation import TraceContext, format_traceparent
from ..obs.spans import SpanRecord, perf_to_epoch_us, spans_to_chrome
from ..request import RunRequest
from .compare import V_FASTER, V_MISSING, V_WALL, CompareReport, Finding
from .record import collect_provenance

#: Bump on any backwards-incompatible change to the serve-artifact layout.
SERVE_SCHEMA_VERSION = 1

#: Distinguishes serve artifacts from grid/micro artifacts at load time.
SERVE_KIND = "bench-serve"

#: Verdict label for an absolute-rate regression (429/504/error ratios).
V_RATE = "RATE-REGRESSION"

#: Verdict label for an SLO violation (``--slo``, exit 3).
V_SLO = "SLO-VIOLATION"

#: Workload fields that must match between baseline and current for a
#: comparison to be meaningful.  Service sizing (workers, queue depth,
#: timeouts) is deliberately NOT here: sizing is the thing a loadtest
#: tunes, so changing it must *compare*, not bail.
WORKLOAD_FIELDS: Tuple[str, ...] = (
    "mode",
    "requests",
    "clients",
    "rate",
    "algorithms",
    "datasets",
    "gpus",
    "modes",
    "keys",
    "zipf_s",
    "burst_datasets",
    "seed",
)

#: Latency percentiles carried by every artifact, in report order.
LATENCY_STATS: Tuple[str, ...] = ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms")

#: Outcome-rate fields gated by ``--compare`` (absolute tolerance) and
#: available to ``--slo``.
RATE_STATS: Tuple[str, ...] = (
    "error_rate",
    "rejected_429_rate",
    "timeout_504_rate",
)

#: SLO keys: maps the ``--slo name=value`` vocabulary onto artifact
#: fields.  ``throughput_rps`` is a floor; everything else a ceiling.
SLO_CEILINGS: Tuple[str, ...] = LATENCY_STATS + RATE_STATS
SLO_FLOORS: Tuple[str, ...] = ("throughput_rps",)


@dataclass(frozen=True)
class LoadtestConfig:
    """One reproducible load shape (CLI flags map 1:1)."""

    mode: str = "closed"  # "closed" | "open"
    requests: int = 120
    clients: int = 4  # closed loop: concurrent callers
    rate: float = 20.0  # open loop: arrivals per second
    algorithms: Tuple[str, ...] = ("bfs",)
    datasets: Tuple[str, ...] = ("delaunay", "human", "kron")
    gpus: Tuple[str, ...] = ("TX1",)
    #: every registered backend mode, in registry order
    modes: Tuple[str, ...] = field(default_factory=lambda: tuple(available_modes()))
    keys: int = 12  # population truncated to the first N cells
    zipf_s: float = 1.1  # popularity skew exponent (0 = uniform)
    #: >1 emits the schedule in same-dataset bursts of this length: a
    #: zipf-drawn leader key is followed by burst-1 keys sharing its
    #: dataset, so micro-batching (``batch_window_ms``) actually sees
    #: compatible neighbours in flight instead of a shuffled mix.
    burst_datasets: int = 0
    seed: int = 42
    # in-process server sizing (ignored when targeting an external URL)
    workers: int = 2
    queue_depth: int = 8
    request_timeout_s: Optional[float] = None
    http_timeout_s: float = 120.0
    #: micro-batching admission window of the in-process server
    #: (``serve --batch-window-ms``); 0 disables batching.
    batch_window_ms: float = 0.0
    batch_max: int = 8
    #: >0 starts an in-process LocalCluster (that many worker daemons
    #: behind the consistent-hash front) instead of a single server.
    cluster_workers: int = 0
    #: L2 result-store directory of the in-process server/cluster;
    #: ``None`` keeps the memory-only tier.  A warm directory makes a
    #: cold-start run serve from disk (the per-tier ratios show it).
    store_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise BenchError(
                f"loadtest mode must be 'closed' or 'open', got {self.mode!r}"
            )
        if self.requests < 1:
            raise BenchError(f"need at least 1 request, got {self.requests}")
        if self.clients < 1:
            raise BenchError(f"need at least 1 client, got {self.clients}")
        if self.rate <= 0:
            raise BenchError(f"arrival rate must be positive, got {self.rate}")
        if self.keys < 1:
            raise BenchError(f"need at least 1 key, got {self.keys}")
        if self.zipf_s < 0:
            raise BenchError(f"zipf exponent must be >= 0, got {self.zipf_s}")
        if self.burst_datasets < 0:
            raise BenchError(
                f"burst length must be >= 0, got {self.burst_datasets}"
            )

    def workload_dict(self) -> Dict[str, Any]:
        """The fields two comparable artifacts must agree on."""
        payload: Dict[str, Any] = {}
        for name in WORKLOAD_FIELDS:
            value = getattr(self, name)
            payload[name] = list(value) if isinstance(value, tuple) else value
        return payload

    def to_dict(self) -> Dict[str, Any]:
        payload = self.workload_dict()
        payload.update(
            workers=self.workers,
            queue_depth=self.queue_depth,
            request_timeout_s=self.request_timeout_s,
            http_timeout_s=self.http_timeout_s,
            cluster_workers=self.cluster_workers,
            store_dir=self.store_dir,
            batch_window_ms=self.batch_window_ms,
            batch_max=self.batch_max,
        )
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LoadtestConfig":
        kwargs = dict(payload)
        for name in ("algorithms", "datasets", "gpus", "modes"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)


def build_population(config: LoadtestConfig) -> List[RunRequest]:
    """The key population: the first ``keys`` grid cells, in rank order.

    Rank order *is* popularity order — rank 0 gets the largest zipf
    weight — and enumerates modes innermost so the population mixes
    system modes before it mixes datasets.
    """
    cells: List[RunRequest] = []
    for algorithm in config.algorithms:
        for dataset in config.datasets:
            for gpu in config.gpus:
                for mode in config.modes:
                    cells.append(
                        RunRequest.make(
                            algorithm, dataset, gpu, mode, seed=config.seed
                        )
                    )
    if not cells:
        raise BenchError("loadtest population is empty")
    return cells[: config.keys]


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized zipf popularity of ranks ``1..n`` (``s=0`` = uniform)."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


def build_schedule(
    config: LoadtestConfig,
    population_size: int,
    datasets: Optional[Sequence[str]] = None,
) -> np.ndarray:
    """Per-request key indices; a pure function of the config seed.

    With ``burst_datasets > 1`` (and ``datasets`` naming each key's
    dataset) the schedule is emitted in bursts: one zipf-drawn leader
    key followed by ``burst_datasets - 1`` keys restricted to the
    leader's dataset (zipf weights renormalized within it).  Adjacent
    requests then share a batching compatibility key, which is exactly
    the arrival shape the serve micro-batching window fuses.
    """
    rng = np.random.default_rng(config.seed)
    weights = zipf_weights(population_size, config.zipf_s)
    if config.burst_datasets <= 1 or datasets is None:
        return rng.choice(population_size, size=config.requests, p=weights)
    by_dataset: Dict[str, List[int]] = {}
    for index, name in enumerate(datasets):
        by_dataset.setdefault(name, []).append(index)
    schedule = np.empty(config.requests, dtype=np.int64)
    position = 0
    while position < config.requests:
        leader = int(rng.choice(population_size, p=weights))
        peers = np.asarray(by_dataset[datasets[leader]], dtype=np.int64)
        peer_weights = weights[peers] / weights[peers].sum()
        length = min(config.burst_datasets, config.requests - position)
        schedule[position] = leader
        if length > 1:
            schedule[position + 1 : position + length] = rng.choice(
                peers, size=length - 1, p=peer_weights
            )
        position += length
    return schedule


# ---------------------------------------------------------------------------
# HTTP client
# ---------------------------------------------------------------------------


@dataclass
class RequestResult:
    """One client-side observation."""

    index: int
    key_index: int
    status: int
    latency_s: float
    request_id: Optional[str] = None
    trace_id: Optional[str] = None
    started_us: float = 0.0  # absolute epoch us of the client send


def client_trace_context(seed: int, index: int) -> TraceContext:
    """The deterministic trace context of schedule entry ``index``.

    A pure function of (seed, index), like the schedule itself: the
    high half of the trace ID carries the seed, the low half the
    1-based request index, so a trace ID alone identifies which request
    of which run produced it.  The client span ID is the index again —
    never all-zero because the index is 1-based.
    """
    high = seed & 0xFFFFFFFFFFFFFFFF
    return TraceContext(
        trace_id=f"{high:016x}{index + 1:016x}",
        span_id=f"{index + 1:016x}",
    )


def _post_run(
    base_url: str,
    body: bytes,
    timeout_s: float,
    traceparent: Optional[str] = None,
) -> Tuple[int, Optional[str], Optional[str]]:
    """POST one run request; returns (status, X-Request-Id, X-Trace-Id)."""
    headers = {"Content-Type": "application/json"}
    if traceparent is not None:
        headers["traceparent"] = traceparent
    req = urllib.request.Request(f"{base_url}/run", data=body, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as response:
            response.read()
            return (
                response.status,
                response.headers.get("X-Request-Id"),
                response.headers.get("X-Trace-Id"),
            )
    except urllib.error.HTTPError as error:
        error.read()
        return (
            error.code,
            error.headers.get("X-Request-Id"),
            error.headers.get("X-Trace-Id"),
        )


def _scrape_metrics(base_url: str, timeout_s: float) -> str:
    with urllib.request.urlopen(
        f"{base_url}/metrics", timeout=timeout_s
    ) as response:
        return response.read().decode("utf-8")


# ---------------------------------------------------------------------------
# Artifact
# ---------------------------------------------------------------------------


@dataclass
class ServeArtifact:
    """A whole loadtest run, serialized as ``BENCH_serve_<tag>.json``."""

    tag: str
    provenance: Dict[str, Any]
    config: Dict[str, Any]
    totals: Dict[str, float] = field(default_factory=dict)
    rates: Dict[str, float] = field(default_factory=dict)
    latency_ms: Dict[str, float] = field(default_factory=dict)
    server: Dict[str, Any] = field(default_factory=dict)
    #: Worst offenders for correlation: the slowest requests plus every
    #: captured 429/504, each with its request/trace IDs.  Additive and
    #: optional, so the schema version stays put.
    offenders: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    schema_version: int = SERVE_SCHEMA_VERSION
    kind: str = SERVE_KIND

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "tag": self.tag,
            "provenance": dict(self.provenance),
            "config": dict(self.config),
            "totals": dict(self.totals),
            "rates": dict(self.rates),
            "latency_ms": dict(self.latency_ms),
            "server": dict(self.server),
            "offenders": {k: list(v) for k, v in self.offenders.items()},
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, allow_nan=False, sort_keys=True)
            + "\n"
        )
        return path

    @classmethod
    def from_dict(
        cls, payload: Dict[str, Any], *, source: str = "artifact"
    ) -> "ServeArtifact":
        if not isinstance(payload, dict):
            raise BenchError(f"{source}: expected a JSON object")
        if payload.get("kind") != SERVE_KIND:
            raise BenchError(
                f"{source}: kind {payload.get('kind')!r} is not a serve artifact "
                f"(expected {SERVE_KIND!r})"
            )
        version = payload.get("schema_version")
        if version != SERVE_SCHEMA_VERSION:
            raise BenchError(
                f"{source}: schema version {version!r} is not supported "
                f"(this build reads version {SERVE_SCHEMA_VERSION})"
            )
        for req in ("tag", "provenance", "config", "totals", "rates", "latency_ms"):
            if req not in payload:
                raise BenchError(f"{source}: missing field {req!r}")
        return cls(
            tag=payload["tag"],
            provenance=payload["provenance"],
            config=payload["config"],
            totals=payload["totals"],
            rates=payload["rates"],
            latency_ms=payload["latency_ms"],
            server=payload.get("server", {}),
            offenders=payload.get("offenders", {}),
            schema_version=version,
        )

    @classmethod
    def load(cls, path: str | Path) -> "ServeArtifact":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError as error:
            raise BenchError(f"{path}: no such artifact") from error
        except json.JSONDecodeError as error:
            raise BenchError(f"{path}: not a valid artifact: {error}") from error
        return cls.from_dict(payload, source=str(path))


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(1, int(np.ceil(q * len(ordered))))
    return ordered[rank - 1]


def summarize_results(
    results: Sequence[RequestResult], elapsed_s: float
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, float]]:
    """(totals, rates, latency_ms) of one run's client observations."""
    n = len(results)
    ok = sum(1 for r in results if r.status == 200)
    rejected = sum(1 for r in results if r.status == 429)
    timeouts = sum(1 for r in results if r.status == 504)
    errors = n - ok - rejected - timeouts
    totals = {
        "requests": float(n),
        "ok": float(ok),
        "rejected_429": float(rejected),
        "timeout_504": float(timeouts),
        "errors": float(errors),
        "elapsed_s": elapsed_s,
    }
    rates = {
        "throughput_rps": (n / elapsed_s) if elapsed_s > 0 else 0.0,
        "error_rate": (errors / n) if n else 0.0,
        "rejected_429_rate": (rejected / n) if n else 0.0,
        "timeout_504_rate": (timeouts / n) if n else 0.0,
    }
    latencies = sorted(r.latency_s for r in results)
    latency_ms = {
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p95_ms": _percentile(latencies, 0.95) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "mean_ms": (statistics.fmean(latencies) * 1e3) if latencies else 0.0,
        "max_ms": (latencies[-1] * 1e3) if latencies else 0.0,
    }
    return totals, rates, latency_ms


#: How many requests each offender list retains.
OFFENDER_LIMIT = 10


def _offender_row(result: RequestResult) -> Dict[str, Any]:
    return {
        "request_id": result.request_id,
        "trace_id": result.trace_id,
        "status": result.status,
        "latency_ms": round(result.latency_s * 1e3, 3),
        "key_index": result.key_index,
    }


def collect_offenders(
    results: Sequence[RequestResult], limit: int = OFFENDER_LIMIT
) -> Dict[str, List[Dict[str, Any]]]:
    """The artifact's ``offenders`` block: worst requests by category.

    ``slowest`` ranks every observation by latency; ``rejected_429`` and
    ``timeout_504`` capture each shed request (worst-latency first, the
    504s being the ones that burned a worker slot the longest).  Every
    row carries the ``X-Request-Id``/``X-Trace-Id`` the server minted,
    so an offender joins directly to ``/debug/requests`` rows and
    ``/debug/trace/{trace_id}`` stitched traces.
    """
    by_latency = sorted(results, key=lambda r: -r.latency_s)
    offenders = {
        "slowest": [_offender_row(r) for r in by_latency[:limit]],
        "rejected_429": [
            _offender_row(r) for r in by_latency if r.status == 429
        ][:limit],
        "timeout_504": [
            _offender_row(r) for r in by_latency if r.status == 504
        ][:limit],
    }
    return {k: v for k, v in offenders.items() if v}


#: Counter families diffed between the before/after ``/metrics`` scrapes.
_SERVER_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("requests", "serve_requests"),
    ("simulations", "serve_simulations"),
    ("coalesced", "serve_singleflight_coalesced_hits"),
    ("rejected", "serve_rejected"),
    ("store_hits", "serve_store_hits"),
    ("store_misses", "serve_store_misses"),
    ("batched", "serve_batch_fused_requests"),
    ("batches", "serve_batch_batches"),
)

#: Stage-latency histograms whose bucket deltas yield server quantiles.
_SERVER_HISTOGRAMS: Tuple[Tuple[str, str], ...] = (
    ("total", "serve_latency_total_seconds"),
    ("queue_wait", "serve_latency_queue_wait_seconds"),
    ("simulate", "serve_latency_simulate_seconds"),
)


def summarize_server(before_text: str, after_text: str) -> Dict[str, Any]:
    """Server-side truth from the before/after ``/metrics`` scrapes."""
    before, _ = parse_exposition(before_text)
    after, _ = parse_exposition(after_text)
    counters: Dict[str, float] = {}
    for label, name in _SERVER_COUNTERS:
        counters[label] = sum_by_name(after, name) - sum_by_name(before, name)
    handled = counters["requests"]
    summary: Dict[str, Any] = {"counters": counters, "ratios": {}, "latency_ms": {}}
    if handled > 0:
        simulated = counters["simulations"]
        coalesced = counters["coalesced"]
        cached = max(0.0, handled - simulated - coalesced)
        summary["ratios"] = {
            "simulated": simulated / handled,
            "coalesced": coalesced / handled,
            "cached": cached / handled,
            # Requests fused into micro-batches of >= 2.  An overlapping
            # subset of ``simulated`` (each fused member still runs its
            # own simulation inside the one stacked pass), so the three
            # ratios above keep summing to 1 without it.
            "batched": counters["batched"] / handled,
        }
        # Per-tier attribution of the cached hits: an L2 (disk store)
        # hit counts in serve_store_hits; the remainder of the cached
        # outcomes came straight from the in-memory L1.  Derived from
        # serve-level counters only, so the split stays correct when a
        # cluster front merges several workers' expositions.
        l2_hits = min(counters["store_hits"], cached)
        summary["tiers"] = {
            "l1_hit_ratio": (cached - l2_hits) / handled,
            "l2_hit_ratio": l2_hits / handled,
            "simulated_ratio": simulated / handled,
            "coalesced_ratio": coalesced / handled,
        }
    for label, name in _SERVER_HISTOGRAMS:
        delta = diff_cumulative(
            bucket_cumulative(after, name), bucket_cumulative(before, name)
        )
        if delta and delta[-1][1] > 0:
            summary["latency_ms"][label] = {
                "p50_ms": quantile_from_buckets(delta, 0.50) * 1e3,
                "p95_ms": quantile_from_buckets(delta, 0.95) * 1e3,
                "p99_ms": quantile_from_buckets(delta, 0.99) * 1e3,
            }
    return summary


# ---------------------------------------------------------------------------
# Load generation
# ---------------------------------------------------------------------------


def _run_closed_loop(
    bodies: List[bytes],
    base_url: str,
    clients: int,
    timeout_s: float,
    traceparents: Optional[List[str]] = None,
) -> List[RequestResult]:
    """``clients`` callers pull the next request back-to-back."""
    schedule_lock = threading.Lock()
    cursor = [0]
    results: List[Optional[RequestResult]] = [None] * len(bodies)

    def client() -> None:
        while True:
            with schedule_lock:
                index = cursor[0]
                if index >= len(bodies):
                    return
                cursor[0] = index + 1
            traceparent = traceparents[index] if traceparents else None
            started = time.perf_counter()
            try:
                status, rid, tid = _post_run(
                    base_url, bodies[index], timeout_s, traceparent
                )
            except OSError:
                status, rid, tid = 599, None, None  # transport, not HTTP
            results[index] = RequestResult(
                index=index,
                key_index=-1,
                status=status,
                latency_s=time.perf_counter() - started,
                request_id=rid,
                trace_id=tid,
                started_us=perf_to_epoch_us(started),
            )

    threads = [
        threading.Thread(target=client, name=f"loadtest-{i}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [r for r in results if r is not None]


def _run_open_loop(
    bodies: List[bytes],
    base_url: str,
    rate: float,
    timeout_s: float,
    traceparents: Optional[List[str]] = None,
) -> List[RequestResult]:
    """Fire at a fixed arrival rate; completions never slow arrivals."""
    results: List[Optional[RequestResult]] = [None] * len(bodies)

    def one(index: int) -> None:
        traceparent = traceparents[index] if traceparents else None
        started = time.perf_counter()
        try:
            status, rid, tid = _post_run(
                base_url, bodies[index], timeout_s, traceparent
            )
        except OSError:
            status, rid, tid = 599, None, None
        results[index] = RequestResult(
            index=index,
            key_index=-1,
            status=status,
            latency_s=time.perf_counter() - started,
            request_id=rid,
            trace_id=tid,
            started_us=perf_to_epoch_us(started),
        )

    threads: List[threading.Thread] = []
    interval = 1.0 / rate
    origin = time.perf_counter()
    for index in range(len(bodies)):
        wait = origin + index * interval - time.perf_counter()
        if wait > 0:
            time.sleep(wait)
        thread = threading.Thread(
            target=one, args=(index,), name=f"loadtest-{index}", daemon=True
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    return [r for r in results if r is not None]


def run_loadtest(
    config: LoadtestConfig,
    *,
    url: Optional[str] = None,
    tag: str = "serve",
    progress: Optional[Callable[[str], None]] = None,
    trace_out: Optional[str] = None,
) -> ServeArtifact:
    """Drive one service with ``config``'s workload; return the artifact.

    With no ``url`` an in-process server is started on a free port (and
    the process-wide run cache cleared first, so cache/coalesce ratios
    are a property of the workload, not of what ran before); with
    ``cluster_workers > 0`` it is a whole in-process LocalCluster — the
    requests travel through the consistent-hash front exactly as they
    would against ``repro cluster``.  Every
    request carries a deterministic W3C ``traceparent``
    (:func:`client_trace_context`); with ``trace_out`` the slowest
    successful request's stitched trace is fetched from
    ``/debug/trace/{trace_id}`` before the server goes away and written
    — client span included — as a Chrome trace file.
    """
    population = build_population(config)
    schedule = build_schedule(
        config, len(population), [request.dataset for request in population]
    )
    payloads = [population[k].to_dict() for k in range(len(population))]
    bodies = [
        json.dumps(payloads[int(k)], sort_keys=True).encode("utf-8")
        for k in schedule
    ]
    contexts = [
        client_trace_context(config.seed, index)
        for index in range(len(bodies))
    ]
    traceparents = [format_traceparent(context) for context in contexts]

    server = None
    service = None
    server_thread = None
    cluster = None
    if url is None and config.cluster_workers > 0:
        from ..algorithms.runner import clear_run_cache
        from ..serve.cluster import LocalCluster
        from ..serve.server import ServiceConfig

        clear_run_cache()
        cluster = LocalCluster(
            config.cluster_workers,
            store_dir=config.store_dir,
            worker_config=ServiceConfig(
                workers=config.workers,
                queue_depth=config.queue_depth,
                request_timeout_s=config.request_timeout_s,
                batch_window_ms=config.batch_window_ms,
                batch_max=config.batch_max,
            ),
        )
        url = cluster.url
    elif url is None:
        from ..algorithms.runner import clear_run_cache
        from ..serve.server import ServiceConfig, SimulationService, make_server

        clear_run_cache()
        service = SimulationService(
            ServiceConfig(
                port=0,
                workers=config.workers,
                queue_depth=config.queue_depth,
                request_timeout_s=config.request_timeout_s,
                store_dir=config.store_dir,
                batch_window_ms=config.batch_window_ms,
                batch_max=config.batch_max,
            )
        )
        server = make_server(service, port=0)
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        server_thread = threading.Thread(
            target=server.serve_forever, name="loadtest-server", daemon=True
        )
        server_thread.start()
    base_url = url.rstrip("/")

    if progress is not None:
        mix = "x".join(
            str(len(getattr(config, n)))
            for n in ("algorithms", "datasets", "gpus", "modes")
        )
        progress(
            f"loadtest: {config.mode} loop, {config.requests} requests, "
            f"{len(population)} keys ({mix} grid), zipf s={config.zipf_s}, "
            f"target {base_url}"
        )

    try:
        before_text = _scrape_metrics(base_url, config.http_timeout_s)
        started = time.perf_counter()
        if config.mode == "closed":
            results = _run_closed_loop(
                bodies, base_url, config.clients, config.http_timeout_s,
                traceparents,
            )
        else:
            results = _run_open_loop(
                bodies, base_url, config.rate, config.http_timeout_s,
                traceparents,
            )
        elapsed_s = time.perf_counter() - started
        after_text = _scrape_metrics(base_url, config.http_timeout_s)
        if trace_out is not None:
            # Fetch while the (possibly in-process) server still exists.
            written = _write_stitched_trace(
                base_url, results, contexts, trace_out, config.http_timeout_s
            )
            if progress is not None:
                progress(
                    f"loadtest: stitched trace written to {trace_out} "
                    f"({written} spans)"
                    if written
                    else "loadtest: no successful traced request; "
                    f"{trace_out} not written"
                )
    finally:
        if cluster is not None:
            cluster.close()
        if server is not None:
            server.shutdown()
            server.server_close()
            if server_thread is not None:
                server_thread.join(timeout=10.0)
            service.drain(timeout_s=30.0)
            service.close()

    for result in results:
        result.key_index = int(schedule[result.index])
    totals, rates, latency_ms = summarize_results(results, elapsed_s)
    artifact = ServeArtifact(
        tag=tag,
        provenance=collect_provenance(),
        config=config.to_dict(),
        totals=totals,
        rates=rates,
        latency_ms=latency_ms,
        server=summarize_server(before_text, after_text),
        offenders=collect_offenders(results),
    )
    if progress is not None:
        progress(
            f"loadtest: {totals['ok']:.0f}/{totals['requests']:.0f} ok, "
            f"{totals['rejected_429']:.0f} x 429, "
            f"{totals['timeout_504']:.0f} x 504 in {elapsed_s:.2f}s "
            f"({rates['throughput_rps']:.1f} req/s); "
            f"p50 {latency_ms['p50_ms']:.1f} ms, "
            f"p99 {latency_ms['p99_ms']:.1f} ms"
        )
    return artifact


def _write_stitched_trace(
    base_url: str,
    results: Sequence[RequestResult],
    contexts: Sequence[TraceContext],
    trace_out: str,
    timeout_s: float,
) -> int:
    """Fetch + write the slowest successful request's stitched trace.

    Pulls the server's span records (``?raw=1``), prepends the client's
    own span (the trace root — the server parented its ``serve.request``
    span under it via ``traceparent``), and writes the combined Chrome
    trace.  Returns the span count, 0 when nothing could be fetched.
    """
    candidates = [
        r for r in results if r.status == 200 and r.trace_id is not None
    ]
    if not candidates:
        return 0
    slowest = max(candidates, key=lambda r: r.latency_s)
    try:
        with urllib.request.urlopen(
            f"{base_url}/debug/trace/{slowest.trace_id}?raw=1",
            timeout=timeout_s,
        ) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return 0  # tracing disabled server-side, or the trace evicted
    spans = [
        SpanRecord.from_dict(raw, source="served span")
        for raw in payload.get("spans", [])
    ]
    client_span = SpanRecord(
        trace_id=slowest.trace_id,
        span_id=contexts[slowest.index].span_id,
        parent_id=None,
        name="client.request",
        category="client",
        process="client",
        start_us=slowest.started_us,
        duration_us=slowest.latency_s * 1e6,
        attributes={
            "request_id": slowest.request_id,
            "http.status": slowest.status,
            "key_index": slowest.key_index,
        },
    )
    stitched = [client_span] + spans
    Path(trace_out).write_text(
        json.dumps(spans_to_chrome(stitched), indent=1) + "\n"
    )
    return len(stitched)


# ---------------------------------------------------------------------------
# Comparison (the --compare exit-2 gate)
# ---------------------------------------------------------------------------


def compare_serve_artifacts(
    baseline: ServeArtifact,
    current: ServeArtifact,
    *,
    latency_tolerance_pct: float = 300.0,
    rate_tolerance: float = 0.05,
) -> CompareReport:
    """Diff two serve artifacts.

    The contract mirrors the workload semantics: **latencies are noisy**
    (gated only beyond ``latency_tolerance_pct``; non-positive disables,
    which is what cross-machine CI comparisons should use), while
    **outcome rates are structural** — a 429/504/error ratio more than
    ``rate_tolerance`` (absolute) above the baseline means the service
    sheds load it used to carry, whatever the hardware.  Comparing two
    different workloads is an error, not a verdict.
    """
    base_workload = {k: baseline.config.get(k) for k in WORKLOAD_FIELDS}
    cur_workload = {k: current.config.get(k) for k in WORKLOAD_FIELDS}
    if base_workload != cur_workload:
        mismatched = sorted(
            k for k in WORKLOAD_FIELDS if base_workload[k] != cur_workload[k]
        )
        raise BenchError(
            "serve artifacts describe different workloads "
            f"(mismatched: {', '.join(mismatched)}); re-record the baseline"
        )
    report = CompareReport()
    report.cells_compared = 1
    cell = f"loadtest/{baseline.config.get('mode', '?')}"
    if latency_tolerance_pct > 0.0:
        for name in LATENCY_STATS:
            base_value = baseline.latency_ms.get(name)
            cur_value = current.latency_ms.get(name)
            if not base_value or cur_value is None:
                continue
            ratio = cur_value / base_value
            if ratio > 1.0 + latency_tolerance_pct / 100.0:
                report.regressions.append(
                    Finding(V_WALL, cell, f"latency.{name}", base_value, cur_value)
                )
            elif ratio < 1.0 / (1.0 + latency_tolerance_pct / 100.0):
                report.improvements.append(
                    Finding(V_FASTER, cell, f"latency.{name}", base_value, cur_value)
                )
    for name in RATE_STATS:
        base_value = baseline.rates.get(name)
        cur_value = current.rates.get(name)
        if base_value is None or cur_value is None:
            report.regressions.append(
                Finding(V_MISSING, cell, f"rates.{name}", base_value, cur_value)
            )
            continue
        if cur_value > base_value + rate_tolerance:
            report.regressions.append(
                Finding(V_RATE, cell, f"rates.{name}", base_value, cur_value)
            )
    return report


# ---------------------------------------------------------------------------
# SLO gating (the --slo exit-3 gate)
# ---------------------------------------------------------------------------


def parse_slo(specs: Sequence[str]) -> Dict[str, float]:
    """Parse ``name=value`` SLO specs (e.g. ``p99_ms=500 error_rate=0``)."""
    slo: Dict[str, float] = {}
    known = SLO_CEILINGS + SLO_FLOORS
    for spec in specs:
        name, sep, raw = spec.partition("=")
        if not sep:
            raise BenchError(f"SLO {spec!r} is not of the form name=value")
        name = name.strip()
        if name not in known:
            raise BenchError(
                f"unknown SLO {name!r}; known: {', '.join(known)}"
            )
        try:
            slo[name] = float(raw)
        except ValueError:
            raise BenchError(f"SLO {spec!r} has a non-numeric value") from None
    return slo


def evaluate_slo(
    artifact: ServeArtifact, slo: Dict[str, float]
) -> List[Finding]:
    """SLO violations of one artifact (empty list = all objectives met)."""
    violations: List[Finding] = []
    cell = f"loadtest/{artifact.config.get('mode', '?')}"
    for name, limit in slo.items():
        if name in LATENCY_STATS:
            actual = artifact.latency_ms.get(name)
        else:
            actual = artifact.rates.get(name)
        if actual is None:
            violations.append(Finding(V_SLO, cell, name, limit, None))
        elif name in SLO_FLOORS:
            if actual < limit:
                violations.append(Finding(V_SLO, cell, name, limit, actual))
        elif actual > limit:
            violations.append(Finding(V_SLO, cell, name, limit, actual))
    return violations


__all__ = [
    "SERVE_SCHEMA_VERSION",
    "SERVE_KIND",
    "V_RATE",
    "V_SLO",
    "WORKLOAD_FIELDS",
    "LATENCY_STATS",
    "RATE_STATS",
    "SLO_CEILINGS",
    "SLO_FLOORS",
    "OFFENDER_LIMIT",
    "LoadtestConfig",
    "RequestResult",
    "ServeArtifact",
    "client_trace_context",
    "collect_offenders",
    "build_population",
    "build_schedule",
    "zipf_weights",
    "summarize_results",
    "summarize_server",
    "run_loadtest",
    "compare_serve_artifacts",
    "parse_slo",
    "evaluate_slo",
]
