"""Paper-fidelity scoreboard: measured vs published, pass/fail.

Reproduces the scoreboard experiments (headline + Figures 1 and 9-13)
on the bench grid's datasets/GPUs, evaluates every shared
:mod:`~repro.harness.expectations` entry against them, and renders the
verdicts as one table.  Runs that restrict the grid (quick mode, a
single GPU) simply skip the expectations whose rows are absent —
``skipped`` is reported distinctly from ``FAIL``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algorithms.common import SystemMode
from ..algorithms.runner import ALGORITHM_NAMES
from ..errors import ReproError
from ..harness.expectations import EXPECTATIONS, scoreboard_experiments
from ..harness.experiments import _mode_for
from ..harness.parallel import SweepCell, sweep_cells
from ..harness.registry import EXPERIMENTS
from ..harness.results import ExperimentResult

#: Experiment drivers that accept the (datasets=..., gpus=...) grid kwargs.
_GRID_EXPERIMENTS = ("fig1", "fig9", "fig10", "fig11", "fig13", "headline", "iru")

STATUS_PASS = "pass"
STATUS_FAIL = "FAIL"
STATUS_SKIP = "skipped"


def run_scoreboard_experiments(
    *,
    datasets: Sequence[str],
    gpus: Sequence[str],
) -> Dict[str, ExperimentResult]:
    """Reproduce every artifact the expectations table references."""
    results: Dict[str, ExperimentResult] = {}
    for experiment_id in scoreboard_experiments():
        driver = EXPERIMENTS[experiment_id]
        if experiment_id in _GRID_EXPERIMENTS:
            kwargs = {"datasets": tuple(datasets), "gpus": tuple(gpus)}
        elif experiment_id == "fig12":
            # Figure 12 is a single-GPU artifact (SSSP on TX1 in the
            # paper); fall back to the first swept GPU when TX1 is out.
            gpu = "TX1" if "TX1" in gpus else gpus[0]
            kwargs = {"datasets": tuple(datasets), "gpu": gpu}
        else:
            kwargs = {}
        results[experiment_id] = driver(**kwargs)
    return results


def evaluate_expectations(
    results: Dict[str, ExperimentResult],
) -> ExperimentResult:
    """Check every expectation against its reproduced artifact.

    Pure function of the results — unit-testable without simulation.
    """
    table = ExperimentResult(
        "fidelity",
        "Paper-fidelity scoreboard (measured vs published)",
        ("expectation", "description", "paper", "measured", "band", "status"),
    )
    for expectation in EXPECTATIONS:
        result = results.get(expectation.experiment)
        if result is None:
            measured, status = float("nan"), STATUS_SKIP
        else:
            try:
                measured = float(expectation.extract(result))
            except (ReproError, ValueError, KeyError, ZeroDivisionError):
                measured = float("nan")
            if math.isnan(measured):
                status = STATUS_SKIP
            else:
                status = STATUS_PASS if expectation.check(measured) else STATUS_FAIL
        table.add_row(
            expectation.id,
            expectation.description,
            expectation.paper_text(),
            "-" if math.isnan(measured) else f"{measured:.3g}{expectation.units}",
            expectation.band_text(),
            status,
        )
    passed, failed, skipped = summarize(table)
    table.add_note(
        f"{passed} pass, {failed} fail, {skipped} skipped "
        f"of {len(EXPECTATIONS)} paper targets"
    )
    return table


def summarize(table: ExperimentResult) -> Tuple[int, int, int]:
    statuses = table.column("status")
    return (
        statuses.count(STATUS_PASS),
        statuses.count(STATUS_FAIL),
        statuses.count(STATUS_SKIP),
    )


def _fig12_gpu(gpus: Sequence[str]) -> str:
    return "TX1" if "TX1" in gpus else gpus[0]


def scoreboard_cells(
    *, datasets: Sequence[str], gpus: Sequence[str]
) -> List[SweepCell]:
    """Every simulated grid cell the scoreboard experiments will request.

    Enumerated in deterministic grid order so a parallel prewarm merges
    the same way a serial sweep fills the cache.  Covers the GPU
    baseline and effective SCU-enhanced cell of every (algorithm,
    dataset, GPU), the basic-SCU cells Figure 11 compares (BFS/SSSP),
    the IRU cells of the head-to-head experiment (BFS/SSSP), and
    Figure 12's filtering-only SSSP variants.
    """
    cells: List[SweepCell] = []
    for algorithm in ALGORITHM_NAMES:
        for dataset in datasets:
            for gpu in gpus:
                modes = [SystemMode.GPU, _mode_for(algorithm, SystemMode.SCU_ENHANCED)]
                if algorithm in ("bfs", "sssp"):
                    modes.append(SystemMode.SCU_BASIC)
                    modes.append(SystemMode.IRU)
                for mode in dict.fromkeys(modes):
                    cells.append(
                        SweepCell(
                            algorithm=algorithm, dataset=dataset, gpu=gpu, mode=mode
                        )
                    )
    gpu = _fig12_gpu(gpus)
    for dataset in datasets:
        cells.append(
            SweepCell(
                algorithm="sssp",
                dataset=dataset,
                gpu=gpu,
                mode=SystemMode.SCU_ENHANCED,
                kwargs=(("enable_grouping", False),),
            )
        )
    return cells


def prewarm_scoreboard(
    *,
    datasets: Sequence[str],
    gpus: Sequence[str],
    jobs: int,
    cell_timeout_s: Optional[float] = None,
    retries: int = 1,
    progress=None,
) -> int:
    """Simulate the scoreboard's grid cells ``jobs``-wide, priming the
    experiment cache so the drivers afterwards are pure cache hits.

    Cells already cached (e.g. just primed by the bench sweep) are
    skipped.  Returns the number of cells actually simulated.
    """
    from ..harness.experiments import _MEMO  # the shared report cache

    pending = [
        cell
        for cell in scoreboard_cells(datasets=datasets, gpus=gpus)
        if cell.key not in _MEMO
    ]
    if pending:
        sweep_cells(
            pending,
            jobs=jobs,
            timeout_s=cell_timeout_s,
            retries=retries,
            progress=progress,
        )
    return len(pending)


def build_scoreboard(
    *,
    datasets: Sequence[str],
    gpus: Sequence[str],
    jobs: int = 1,
    cell_timeout_s: Optional[float] = None,
    retries: int = 1,
) -> ExperimentResult:
    """Run the scoreboard experiments and evaluate the expectations.

    With ``jobs > 1`` the underlying simulations are sharded across
    worker processes first (deterministically merged into the shared
    cache); the drivers themselves then assemble rows serially, so the
    resulting table is identical for every ``jobs`` value.
    """
    if jobs > 1:
        prewarm_scoreboard(
            datasets=datasets,
            gpus=gpus,
            jobs=jobs,
            cell_timeout_s=cell_timeout_s,
            retries=retries,
        )
    return evaluate_expectations(
        run_scoreboard_experiments(datasets=datasets, gpus=gpus)
    )


def scoreboard_payload(table: ExperimentResult) -> Dict[str, Any]:
    """JSON-embeddable form of the scoreboard for bench artifacts."""
    passed, failed, skipped = summarize(table)
    return {
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "passed": passed,
        "failed": failed,
        "skipped": skipped,
    }


def scoreboard_table(payload: Dict[str, Any]) -> ExperimentResult:
    """Rebuild a renderable table from an artifact's scoreboard payload."""
    table = ExperimentResult(
        "fidelity",
        "Paper-fidelity scoreboard (measured vs published)",
        tuple(payload["columns"]),
    )
    for row in payload["rows"]:
        table.add_row(*row)
    table.add_note(
        f"{payload['passed']} pass, {payload['failed']} fail, "
        f"{payload['skipped']} skipped"
    )
    return table
