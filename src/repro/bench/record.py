"""Schema-versioned benchmark artifacts (``BENCH_<tag>.json``).

One :class:`BenchArtifact` is the machine-readable output of a
``repro bench`` run: per-cell records of the (algorithm x dataset x
GPU x system-mode) grid, each pairing wall-clock statistics (the
harness's real speed) with the deterministic simulated cost model
(the paper's numbers), plus a metrics-registry snapshot, a fidelity
scoreboard, and provenance.  Artifacts are the unit of longitudinal
comparison — ``repro bench --compare`` diffs two of them — so the
schema carries an explicit version and loading validates it.
"""

from __future__ import annotations

import json
import math
import platform
import statistics
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import BenchError
from ..phases import Engine, RunReport

#: Bump on any backwards-incompatible change to the artifact layout.
SCHEMA_VERSION = 1

#: Simulated metrics every record carries, in artifact order.  These are
#: deterministic outputs of the cost model: any drift between two runs
#: of the same code is a correctness change, not noise.
SIM_METRIC_NAMES: Tuple[str, ...] = (
    "sim_time_s",
    "gpu_time_s",
    "scu_time_s",
    "gpu_cycles",
    "total_energy_j",
    "dynamic_energy_j",
    "static_energy_j",
    "instructions",
    "gpu_instructions",
    "dram_bytes",
    "dram_transactions",
    "mem_transactions",
    "compaction_fraction",
)


@dataclass(frozen=True)
class WallStats:
    """Wall-clock statistics of N repetitions of one grid cell.

    ``warmup_s`` is the duration of one *discarded* first repetition:
    the warmup pays the first-call costs (dataset-generation caches,
    numpy allocator pools) that used to skew ``min``/``mean`` on small
    grids, and is recorded separately so the skew stays visible in the
    artifact.  ``None`` in artifacts written before the field existed.
    """

    reps: int
    min_s: float
    median_s: float
    mean_s: float
    iqr_s: float  # interquartile range; 0.0 when reps < 4
    warmup_s: Optional[float] = None  # discarded warmup rep, if measured

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], *, warmup_s: Optional[float] = None
    ) -> "WallStats":
        if not samples:
            raise BenchError("wall statistics need at least one sample")
        ordered = sorted(samples)
        if len(ordered) >= 4:
            q1, _, q3 = statistics.quantiles(ordered, n=4)
            iqr = q3 - q1
        else:
            iqr = 0.0
        return cls(
            reps=len(ordered),
            min_s=ordered[0],
            median_s=statistics.median(ordered),
            mean_s=statistics.fmean(ordered),
            iqr_s=iqr,
            warmup_s=warmup_s,
        )


@dataclass(frozen=True)
class SimMetrics:
    """Deterministic cost-model outputs of one grid cell."""

    sim_time_s: float
    gpu_time_s: float
    scu_time_s: float
    gpu_cycles: float
    total_energy_j: float
    dynamic_energy_j: float
    static_energy_j: float
    instructions: float
    gpu_instructions: float
    dram_bytes: float
    dram_transactions: float
    mem_transactions: float
    compaction_fraction: Optional[float]  # None when the report is empty

    @classmethod
    def from_report(cls, report: RunReport, *, gpu_clock_hz: float) -> "SimMetrics":
        memory = report.memory()
        fraction = report.compaction_time_fraction()
        return cls(
            sim_time_s=report.time_s(),
            gpu_time_s=report.time_s(engine=Engine.GPU),
            scu_time_s=report.time_s(engine=Engine.SCU),
            gpu_cycles=report.time_s(engine=Engine.GPU) * gpu_clock_hz,
            total_energy_j=report.total_energy_j(),
            dynamic_energy_j=report.dynamic_energy_j(),
            static_energy_j=report.static_energy_j,
            instructions=float(report.instructions()),
            gpu_instructions=float(report.instructions(engine=Engine.GPU)),
            dram_bytes=float(report.dram_bytes()),
            dram_transactions=float(memory.dram_accesses),
            mem_transactions=float(memory.transactions),
            compaction_fraction=None if math.isnan(fraction) else fraction,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in SIM_METRIC_NAMES}


@dataclass(frozen=True)
class BenchRecord:
    """One cell of the bench grid."""

    algorithm: str
    dataset: str
    gpu: str
    mode: str  # requested system mode
    effective_mode: str  # after paper Section 4.6 substitution (PR)
    wall: WallStats
    sim: SimMetrics

    @property
    def key(self) -> Tuple[str, str, str, str]:
        return (self.algorithm, self.dataset, self.gpu, self.mode)

    def label(self) -> str:
        return f"{self.algorithm}/{self.dataset}/{self.gpu}/{self.mode}"


@dataclass
class BenchArtifact:
    """A whole bench run, ready to serialize as ``BENCH_<tag>.json``."""

    tag: str
    grid: Dict[str, Any]
    provenance: Dict[str, Any]
    records: List[BenchRecord] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    scoreboard: Optional[Dict[str, Any]] = None
    schema_version: int = SCHEMA_VERSION

    def record_map(self) -> Dict[Tuple[str, str, str, str], BenchRecord]:
        return {record.key: record for record in self.records}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "tag": self.tag,
            "grid": dict(self.grid),
            "provenance": dict(self.provenance),
            "records": [
                {
                    "algorithm": r.algorithm,
                    "dataset": r.dataset,
                    "gpu": r.gpu,
                    "mode": r.mode,
                    "effective_mode": r.effective_mode,
                    "wall": asdict(r.wall),
                    "sim": r.sim.as_dict(),
                }
                for r in self.records
            ],
            "metrics": list(self.metrics),
            "scoreboard": self.scoreboard,
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        # allow_nan=False: NaN would silently produce invalid JSON; the
        # schema represents "no value" as null instead.
        path.write_text(
            json.dumps(self.to_dict(), indent=2, allow_nan=False) + "\n"
        )
        return path

    @classmethod
    def from_dict(cls, payload: Dict[str, Any], *, source: str = "artifact") -> "BenchArtifact":
        if not isinstance(payload, dict):
            raise BenchError(f"{source}: expected a JSON object")
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise BenchError(
                f"{source}: schema version {version!r} is not supported "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        for key in ("tag", "grid", "provenance", "records"):
            if key not in payload:
                raise BenchError(f"{source}: missing field {key!r}")
        records: List[BenchRecord] = []
        for index, raw in enumerate(payload["records"]):
            try:
                sim_fields = {
                    name: raw["sim"][name] for name in SIM_METRIC_NAMES
                }
                records.append(
                    BenchRecord(
                        algorithm=raw["algorithm"],
                        dataset=raw["dataset"],
                        gpu=raw["gpu"],
                        mode=raw["mode"],
                        effective_mode=raw.get("effective_mode", raw["mode"]),
                        wall=WallStats(**raw["wall"]),
                        sim=SimMetrics(**sim_fields),
                    )
                )
            except (KeyError, TypeError) as error:
                raise BenchError(
                    f"{source}: record {index} is malformed: {error!r}"
                ) from error
        return cls(
            tag=payload["tag"],
            grid=payload["grid"],
            provenance=payload["provenance"],
            records=records,
            metrics=payload.get("metrics", []),
            scoreboard=payload.get("scoreboard"),
            schema_version=version,
        )

    @classmethod
    def load(cls, path: str | Path) -> "BenchArtifact":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError as error:
            raise BenchError(f"{path}: no such artifact") from error
        except json.JSONDecodeError as error:
            raise BenchError(f"{path}: not a valid artifact: {error}") from error
        return cls.from_dict(payload, source=str(path))


def collect_provenance() -> Dict[str, Any]:
    """Where an artifact came from: code version, interpreter, host."""
    return {
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def short_git_sha() -> str:
    sha = _git_sha()
    return sha[:10] if sha != "unknown" else "local"
