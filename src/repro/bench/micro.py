"""Kernel-level microbenchmarks (``repro bench --micro``).

``repro bench`` measures whole grid cells — an algorithm on a dataset
end to end — which is the right granularity for paper fidelity but too
coarse to localise a kernel regression: a 2x slowdown in the DRAM
replay hides inside a cell whose wall clock is dominated by expansion.
The micro suite times the individual vectorized kernels (DRAM batch
replay, unique filtering, grouping, warp/stream coalescing, LRU cache
replay, CC labelling) on fixed-seed synthetic inputs and writes the
same style of schema-versioned artifact, so ``--compare`` against the
committed ``benchmarks/baseline_micro.json`` gates future kernel work
through the existing exit-2 path.

Each record pairs three things:

* **wall statistics** of the vectorized kernel (warmup discarded,
  same :class:`~repro.bench.record.WallStats` convention as ``bench``);
* **reference wall statistics and speedup** where a scalar
  ``*_reference`` twin exists — the artifact is the durable proof that
  the batch replay actually pays (the DRAM kernel must stay >= 3x on a
  100k-address trace);
* **deterministic checksums** (cycles, hit/miss counts, permutation
  and label digests) compared *exactly* by ``--compare``: checksum
  drift is a correctness change in a kernel, not noise.  When a
  reference exists its checksums are asserted equal to the vectorized
  kernel's at measurement time, so every micro run re-proves the
  equivalence contract.

Timed repetitions are also observed into the process-wide
:func:`~repro.obs.metrics.global_metrics` registry as
``scu.kernel.<name>.seconds`` histograms, which ``repro serve``
already exposes at ``/metrics``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..algorithms import connected_components_labels, connected_components_reference
from ..core.batch import (
    data_compaction_batch,
    filter_unique_batch,
    group_order_batch,
)
from ..core.config import HashTableConfig
from ..core.filtering import filter_unique, filter_unique_reference
from ..core.grouping import group_order, group_order_reference
from ..core.ops import data_compaction
from ..errors import BenchError
from ..graph.csr import CsrGraph
from ..mem.cache import SetAssociativeCache
from ..mem.coalescer import coalesce_stream, coalesce_warp
from ..mem.dram import GDDR5
from ..mem.dram_sim import BankedDramSim
from ..obs.metrics import MetricsRegistry, global_metrics
from .compare import V_MISSING, V_SIM, V_WALL, V_FASTER, CompareReport, Finding
from .record import WallStats, collect_provenance

#: Bump on any backwards-incompatible change to the micro-artifact layout.
MICRO_SCHEMA_VERSION = 1

#: Distinguishes micro artifacts from grid artifacts at load time.
MICRO_KIND = "bench-micro"

#: Default timed repetitions per kernel (one extra warmup is discarded).
DEFAULT_MICRO_REPS = 3

#: The DRAM replay trace length is pinned in both quick and full modes:
#: the committed baseline's >= 3x speedup claim is defined at this size.
DRAM_TRACE_LEN = 100_000

_MICRO_TABLE = HashTableConfig(
    name="micro", capacity_bytes=64 * 1024, ways=1, bytes_per_entry=8
)


@dataclass(frozen=True)
class MicroRecord:
    """One kernel's measurement."""

    kernel: str
    size: int
    wall: WallStats
    sim: Dict[str, float]  # deterministic checksums, exact-compare
    reference_wall: Optional[WallStats] = None
    speedup: Optional[float] = None  # reference median / vectorized median

    @property
    def key(self) -> Tuple[str, int]:
        return (self.kernel, self.size)

    def label(self) -> str:
        return f"{self.kernel}[n={self.size}]"


@dataclass
class MicroArtifact:
    """A whole micro run, serialized as ``BENCH_micro_<tag>.json``."""

    tag: str
    provenance: Dict[str, Any]
    records: List[MicroRecord] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    quick: bool = False
    schema_version: int = MICRO_SCHEMA_VERSION
    kind: str = MICRO_KIND

    def record_map(self) -> Dict[Tuple[str, int], MicroRecord]:
        return {record.key: record for record in self.records}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "tag": self.tag,
            "quick": self.quick,
            "provenance": dict(self.provenance),
            "records": [
                {
                    "kernel": r.kernel,
                    "size": r.size,
                    "wall": {
                        "reps": r.wall.reps,
                        "min_s": r.wall.min_s,
                        "median_s": r.wall.median_s,
                        "mean_s": r.wall.mean_s,
                        "iqr_s": r.wall.iqr_s,
                        "warmup_s": r.wall.warmup_s,
                    },
                    "reference_wall": None
                    if r.reference_wall is None
                    else {
                        "reps": r.reference_wall.reps,
                        "min_s": r.reference_wall.min_s,
                        "median_s": r.reference_wall.median_s,
                        "mean_s": r.reference_wall.mean_s,
                        "iqr_s": r.reference_wall.iqr_s,
                        "warmup_s": r.reference_wall.warmup_s,
                    },
                    "speedup": r.speedup,
                    "sim": dict(r.sim),
                }
                for r in self.records
            ],
            "metrics": list(self.metrics),
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, allow_nan=False) + "\n"
        )
        return path

    @classmethod
    def from_dict(
        cls, payload: Dict[str, Any], *, source: str = "artifact"
    ) -> "MicroArtifact":
        if not isinstance(payload, dict):
            raise BenchError(f"{source}: expected a JSON object")
        if payload.get("kind") != MICRO_KIND:
            raise BenchError(
                f"{source}: kind {payload.get('kind')!r} is not a micro artifact "
                f"(expected {MICRO_KIND!r})"
            )
        version = payload.get("schema_version")
        if version != MICRO_SCHEMA_VERSION:
            raise BenchError(
                f"{source}: schema version {version!r} is not supported "
                f"(this build reads version {MICRO_SCHEMA_VERSION})"
            )
        for req in ("tag", "provenance", "records"):
            if req not in payload:
                raise BenchError(f"{source}: missing field {req!r}")
        records: List[MicroRecord] = []
        for index, raw in enumerate(payload["records"]):
            try:
                reference_wall = raw.get("reference_wall")
                records.append(
                    MicroRecord(
                        kernel=raw["kernel"],
                        size=raw["size"],
                        wall=WallStats(**raw["wall"]),
                        sim=dict(raw["sim"]),
                        reference_wall=None
                        if reference_wall is None
                        else WallStats(**reference_wall),
                        speedup=raw.get("speedup"),
                    )
                )
            except (KeyError, TypeError) as error:
                raise BenchError(
                    f"{source}: record {index} is malformed: {error!r}"
                ) from error
        return cls(
            tag=payload["tag"],
            provenance=payload["provenance"],
            records=records,
            metrics=payload.get("metrics", []),
            quick=bool(payload.get("quick", False)),
            schema_version=version,
        )

    @classmethod
    def load(cls, path: str | Path) -> "MicroArtifact":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError as error:
            raise BenchError(f"{path}: no such artifact") from error
        except json.JSONDecodeError as error:
            raise BenchError(f"{path}: not a valid artifact: {error}") from error
        return cls.from_dict(payload, source=str(path))


# ---------------------------------------------------------------------------
# Kernel definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MicroKernel:
    """One benchmarked kernel: fixed-seed inputs, a vectorized body, and
    an optional scalar reference returning the same checksums."""

    name: str
    make_inputs: Callable[[bool], Tuple[int, Dict[str, Any]]]  # quick -> (size, inputs)
    run: Callable[[Dict[str, Any]], Dict[str, float]]
    reference: Optional[Callable[[Dict[str, Any]], Dict[str, float]]] = None


def _perm_digest(perm: np.ndarray) -> int:
    # Position-weighted sum: order-sensitive, exact in 64-bit JSON ints
    # for the sizes used here.
    return int(np.sum(perm * np.arange(1, perm.size + 1, dtype=np.int64)))


def _dram_inputs(quick: bool) -> Tuple[int, Dict[str, Any]]:
    rng = np.random.default_rng(2026)
    addresses = rng.integers(0, 1 << 24, size=DRAM_TRACE_LEN) * 32
    return DRAM_TRACE_LEN, {"addresses": addresses}


def _dram_run(inputs: Dict[str, Any]) -> Dict[str, float]:
    sim = BankedDramSim(config=GDDR5)  # fresh device: row state is per-run
    result = sim.process(inputs["addresses"])
    return {
        "cycles": float(result.cycles),
        "row_hits": float(result.row_hits),
        "row_misses": float(result.row_misses),
    }


def _dram_reference(inputs: Dict[str, Any]) -> Dict[str, float]:
    sim = BankedDramSim(config=GDDR5)
    result = sim.process_reference(inputs["addresses"])
    return {
        "cycles": float(result.cycles),
        "row_hits": float(result.row_hits),
        "row_misses": float(result.row_misses),
    }


def _filter_inputs(quick: bool) -> Tuple[int, Dict[str, Any]]:
    n = 50_000 if quick else 200_000
    rng = np.random.default_rng(2027)
    return n, {"ids": rng.integers(0, n // 2, size=n)}


def _filter_run(inputs: Dict[str, Any]) -> Dict[str, float]:
    keep = filter_unique(inputs["ids"], _MICRO_TABLE)
    return {
        "kept": float(keep.sum()),
        "mask_digest": float(_perm_digest(keep.astype(np.int64))),
    }


def _filter_reference(inputs: Dict[str, Any]) -> Dict[str, float]:
    keep = filter_unique_reference(inputs["ids"], _MICRO_TABLE)
    return {
        "kept": float(keep.sum()),
        "mask_digest": float(_perm_digest(keep.astype(np.int64))),
    }


def _group_inputs(quick: bool) -> Tuple[int, Dict[str, Any]]:
    n = 25_000 if quick else 100_000
    rng = np.random.default_rng(2028)
    return n, {"blocks": rng.integers(0, 4096, size=n)}


def _group_run(inputs: Dict[str, Any]) -> Dict[str, float]:
    perm = group_order(inputs["blocks"], _MICRO_TABLE)
    return {"perm_digest": float(_perm_digest(perm)), "length": float(perm.size)}


def _group_reference(inputs: Dict[str, Any]) -> Dict[str, float]:
    perm = group_order_reference(inputs["blocks"], _MICRO_TABLE)
    return {"perm_digest": float(_perm_digest(perm)), "length": float(perm.size)}


def _coalesce_inputs(quick: bool) -> Tuple[int, Dict[str, Any]]:
    n = 50_000 if quick else 200_000
    rng = np.random.default_rng(2029)
    return n, {"addresses": rng.integers(0, n, size=n) * 4}


def _coalesce_warp_run(inputs: Dict[str, Any]) -> Dict[str, float]:
    result = coalesce_warp(inputs["addresses"])
    return {
        "transactions": float(result.transactions),
        "accesses": float(result.accesses),
    }


def _coalesce_stream_run(inputs: Dict[str, Any]) -> Dict[str, float]:
    result = coalesce_stream(inputs["addresses"])
    return {
        "transactions": float(result.transactions),
        "accesses": float(result.accesses),
    }


def _cache_inputs(quick: bool) -> Tuple[int, Dict[str, Any]]:
    n = 25_000 if quick else 100_000
    rng = np.random.default_rng(2030)
    return n, {"lines": rng.integers(0, 8192, size=n)}


def _make_cache() -> SetAssociativeCache:
    return SetAssociativeCache(capacity_bytes=256 * 1024, line_bytes=128, ways=8)


def _cache_run(inputs: Dict[str, Any]) -> Dict[str, float]:
    cache = _make_cache()
    cache.access_lines(inputs["lines"])
    return {
        "hits": float(cache.stats.hits),
        "misses": float(cache.stats.misses),
        "evictions": float(cache.stats.evictions),
    }


def _cache_reference(inputs: Dict[str, Any]) -> Dict[str, float]:
    cache = _make_cache()
    cache.access_lines_reference(inputs["lines"])
    return {
        "hits": float(cache.stats.hits),
        "misses": float(cache.stats.misses),
        "evictions": float(cache.stats.evictions),
    }


def _cc_inputs(quick: bool) -> Tuple[int, Dict[str, Any]]:
    num_nodes = 5_000 if quick else 20_000
    rng = np.random.default_rng(2031)
    degrees = rng.integers(0, 4, size=num_nodes)
    targets = rng.integers(0, num_nodes, size=int(degrees.sum()))
    sources = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    all_src = np.concatenate([sources, targets])  # symmetrized
    all_dst = np.concatenate([targets, sources])
    order = np.argsort(all_src, kind="stable")
    counts = np.bincount(all_src, minlength=num_nodes)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    graph = CsrGraph(
        offsets=offsets,
        edges=all_dst[order].astype(np.int64),
        weights=np.ones(all_dst.size, dtype=np.float64),
        name="micro-cc",
    )
    return num_nodes, {"graph": graph}


def _cc_checks(labels: np.ndarray) -> Dict[str, float]:
    return {
        "label_digest": float(_perm_digest(labels)),
        "components": float(np.unique(labels).size),
    }


def _cc_run(inputs: Dict[str, Any]) -> Dict[str, float]:
    return _cc_checks(connected_components_labels(inputs["graph"]))


def _cc_reference(inputs: Dict[str, Any]) -> Dict[str, float]:
    return _cc_checks(connected_components_reference(inputs["graph"]))


#: Rows per synthetic request batch (the paper-grid frontier pipeline
#: fused over a request axis).  The committed >= 3x speedup claim is
#: defined at these batch sizes — both comfortably past batch 8.
BATCH_ROWS_QUICK = 64
BATCH_ROWS_FULL = 128


def _batch_inputs(quick: bool) -> Tuple[int, Dict[str, Any]]:
    rows = BATCH_ROWS_QUICK if quick else BATCH_ROWS_FULL
    rng = np.random.default_rng(2032)
    # Ragged frontier sizes (including an empty row) model N queued
    # requests at different points of their traversal: many small
    # frontiers, where the per-call dispatch overhead the batched path
    # amortizes dominates the scalar replay.
    sizes = rng.integers(16, 129, size=rows)
    sizes[rows // 2] = 0
    ids = [rng.integers(0, 4096, size=size).astype(np.int64) for size in sizes]
    offsets = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return int(sizes.sum()), {
        "ids": np.concatenate(ids) if rows else np.empty(0, dtype=np.int64),
        "offsets": offsets,
    }


def _batch_checks(
    kept: int, grouped: np.ndarray, out_offsets: np.ndarray
) -> Dict[str, float]:
    return {
        "kept": float(kept),
        "grouped_digest": float(_perm_digest(grouped)),
        "offsets_digest": float(_perm_digest(out_offsets)),
    }


def _batch_run(inputs: Dict[str, Any]) -> Dict[str, float]:
    """One fused pass: batched filter -> scan+scatter compact -> group."""
    keep = filter_unique_batch(inputs["ids"], inputs["offsets"], _MICRO_TABLE)
    values, out_offsets = data_compaction_batch(
        inputs["ids"], inputs["offsets"], keep
    )
    blocks = values >> 3
    perm = group_order_batch(blocks, out_offsets, _MICRO_TABLE)
    return _batch_checks(int(values.size), values[perm], out_offsets)


def _batch_reference(inputs: Dict[str, Any]) -> Dict[str, float]:
    """Per-request replay: the same pipeline, one row at a time."""
    offsets = inputs["offsets"]
    grouped_rows = []
    out_sizes = []
    for r in range(offsets.size - 1):
        row = inputs["ids"][offsets[r] : offsets[r + 1]]
        keep = filter_unique(row, _MICRO_TABLE)
        values = data_compaction(row, keep)
        perm = group_order(values >> 3, _MICRO_TABLE)
        grouped_rows.append(values[perm])
        out_sizes.append(values.size)
    out_offsets = np.zeros(offsets.size, dtype=np.int64)
    np.cumsum(np.asarray(out_sizes, dtype=np.int64), out=out_offsets[1:])
    grouped = (
        np.concatenate(grouped_rows) if grouped_rows else np.empty(0, np.int64)
    )
    return _batch_checks(int(grouped.size), grouped, out_offsets)


MICRO_KERNELS: Tuple[MicroKernel, ...] = (
    MicroKernel("dram.replay", _dram_inputs, _dram_run, _dram_reference),
    MicroKernel("filter.unique", _filter_inputs, _filter_run, _filter_reference),
    MicroKernel("group.order", _group_inputs, _group_run, _group_reference),
    MicroKernel("coalesce.warp", _coalesce_inputs, _coalesce_warp_run),
    MicroKernel("coalesce.stream", _coalesce_inputs, _coalesce_stream_run),
    MicroKernel("cache.lru", _cache_inputs, _cache_run, _cache_reference),
    MicroKernel("cc.labels", _cc_inputs, _cc_run, _cc_reference),
    MicroKernel("batch.compaction", _batch_inputs, _batch_run, _batch_reference),
)

MICRO_KERNEL_NAMES: Tuple[str, ...] = tuple(k.name for k in MICRO_KERNELS)


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def _timed(body: Callable[[], Dict[str, float]]) -> Tuple[float, Dict[str, float]]:
    started = time.perf_counter()
    checks = body()
    return time.perf_counter() - started, checks


def run_micro(
    *,
    quick: bool = False,
    reps: int = DEFAULT_MICRO_REPS,
    tag: str = "micro",
    progress: Optional[Callable[[str], None]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> MicroArtifact:
    """Measure every kernel and return the artifact.

    Timed repetitions are recorded into ``registry`` (default: a fresh
    one, snapshotted into the artifact) *and* the process-global
    registry's ``scu.kernel.<name>.seconds`` histograms so a running
    service surfaces them on ``/metrics``.
    """
    if reps <= 0:
        raise BenchError(f"reps must be positive, got {reps}")
    local = registry if registry is not None else MetricsRegistry()
    artifact = MicroArtifact(
        tag=tag, provenance=collect_provenance(), quick=quick
    )
    for kernel in MICRO_KERNELS:
        size, inputs = kernel.make_inputs(quick)
        metric = f"scu.kernel.{kernel.name}.seconds"
        warmup_s, checks = _timed(lambda: kernel.run(inputs))
        samples: List[float] = []
        for _ in range(reps):
            elapsed, rep_checks = _timed(lambda: kernel.run(inputs))
            if rep_checks != checks:
                raise BenchError(
                    f"{kernel.name}: nondeterministic checksums across reps"
                )
            samples.append(elapsed)
            local.histogram(metric).observe(elapsed)
            global_metrics().histogram(metric).observe(elapsed)
        wall = WallStats.from_samples(samples, warmup_s=warmup_s)
        reference_wall: Optional[WallStats] = None
        speedup: Optional[float] = None
        if kernel.reference is not None:
            ref_elapsed, ref_checks = _timed(lambda: kernel.reference(inputs))
            if ref_checks != checks:
                raise BenchError(
                    f"{kernel.name}: vectorized checksums {checks} diverge "
                    f"from reference {ref_checks}"
                )
            reference_wall = WallStats.from_samples([ref_elapsed])
            if wall.median_s > 0:
                speedup = ref_elapsed / wall.median_s
        artifact.records.append(
            MicroRecord(
                kernel=kernel.name,
                size=size,
                wall=wall,
                sim=checks,
                reference_wall=reference_wall,
                speedup=speedup,
            )
        )
        if progress is not None:
            gain = "" if speedup is None else f"  ({speedup:.1f}x vs reference)"
            progress(
                f"  {kernel.name:16s} n={size:<7d} "
                f"median {wall.median_s * 1e3:8.3f} ms{gain}"
            )
    artifact.metrics = local.flat_snapshot()
    return artifact


# ---------------------------------------------------------------------------
# Comparison (the --compare exit-2 gate)
# ---------------------------------------------------------------------------


def compare_micro_artifacts(
    baseline: MicroArtifact,
    current: MicroArtifact,
    *,
    sim_rtol: float = 0.0,
    wall_tolerance_pct: float = 50.0,
) -> CompareReport:
    """Diff two micro artifacts with the bench comparison contract:
    checksums are deterministic (exact by default, either direction);
    wall medians gate only beyond the tolerance; a vanished kernel is a
    regression."""
    report = CompareReport()
    current_map = current.record_map()
    for key, base in baseline.record_map().items():
        cur = current_map.pop(key, None)
        if cur is None:
            report.regressions.append(
                Finding(V_MISSING, base.label(), "record", None, None)
            )
            continue
        report.cells_compared += 1
        cell = base.label()
        for name in sorted(set(base.sim) | set(cur.sim)):
            base_value = base.sim.get(name)
            cur_value = cur.sim.get(name)
            if _checksum_differs(base_value, cur_value, sim_rtol):
                report.regressions.append(
                    Finding(V_SIM, cell, name, base_value, cur_value)
                )
        if wall_tolerance_pct > 0.0 and base.wall.median_s > 0.0:
            ratio = cur.wall.median_s / base.wall.median_s
            if ratio > 1.0 + wall_tolerance_pct / 100.0:
                report.regressions.append(
                    Finding(
                        V_WALL, cell, "wall.median_s",
                        base.wall.median_s, cur.wall.median_s,
                    )
                )
            elif ratio < 1.0 - wall_tolerance_pct / 100.0:
                report.improvements.append(
                    Finding(
                        V_FASTER, cell, "wall.median_s",
                        base.wall.median_s, cur.wall.median_s,
                    )
                )
    report.cells_added = len(current_map)
    return report


def _checksum_differs(
    a: Optional[float], b: Optional[float], rtol: float
) -> bool:
    if a is None or b is None:
        return True  # a checksum appearing or vanishing is drift
    if a == b:
        return False
    if rtol <= 0.0:
        return True
    scale = max(abs(a), abs(b))
    return abs(a - b) > rtol * scale
