"""Regression detection between two bench artifacts.

The comparison contract mirrors what the numbers mean:

* **simulated metrics are deterministic** — the same code must produce
  bit-identical cost-model outputs, so any difference beyond
  ``sim_rtol`` (default exact) is flagged, in either direction: an
  unexplained "improvement" is drift just as much as a slowdown;
* **wall-clock is noisy** — only the median matters, and only a
  slowdown beyond ``wall_tolerance_pct`` counts as a regression
  (speedups are reported as improvements).  A non-positive tolerance
  disables wall-clock gating entirely, which is what cross-machine
  comparisons (CI vs a committed baseline) should use.

``compare_artifacts`` returns a :class:`CompareReport` whose ``table``
renders the per-cell verdicts and whose ``ok`` drives the CLI exit
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..harness.results import ExperimentResult
from .record import SIM_METRIC_NAMES, BenchArtifact, BenchRecord

#: Verdict labels used in the diff table.
V_SIM = "SIM-DRIFT"
V_WALL = "WALL-REGRESSION"
V_MISSING = "MISSING"
V_FASTER = "faster"
V_OK = "ok"


@dataclass(frozen=True)
class Finding:
    """One flagged difference between baseline and current."""

    verdict: str  # V_SIM / V_WALL / V_MISSING
    cell: str  # "bfs/kron/TX1/scu-enhanced"
    metric: str
    baseline: Optional[float]
    current: Optional[float]

    def delta_pct(self) -> Optional[float]:
        if self.baseline in (None, 0.0) or self.current is None:
            return None
        return 100.0 * (self.current / self.baseline - 1.0)


@dataclass
class CompareReport:
    """Everything a caller needs to print and gate on."""

    regressions: List[Finding] = field(default_factory=list)
    improvements: List[Finding] = field(default_factory=list)
    cells_compared: int = 0
    cells_added: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions

    def table(self) -> ExperimentResult:
        result = ExperimentResult(
            "bench-compare",
            "Bench regression check (current vs baseline)",
            ("cell", "metric", "baseline", "current", "delta", "verdict"),
        )
        for finding in self.regressions + self.improvements:
            delta = finding.delta_pct()
            result.add_row(
                finding.cell,
                finding.metric,
                _fmt(finding.baseline),
                _fmt(finding.current),
                "-" if delta is None else f"{delta:+.2f}%",
                finding.verdict,
            )
        result.add_note(
            f"{self.cells_compared} cells compared, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{self.cells_added} new cell(s) not in the baseline"
        )
        if self.ok:
            result.add_note("verdict: OK — no regression against the baseline")
        else:
            result.add_note("verdict: REGRESSION — see rows above")
        return result


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "absent"
    return f"{value:.6g}"


def _sim_differs(a: Optional[float], b: Optional[float], rtol: float) -> bool:
    if a is None or b is None:
        return a is not b  # None vs number is a schema-level change
    if a == b:
        return False
    if rtol <= 0.0:
        return True
    scale = max(abs(a), abs(b))
    return abs(a - b) > rtol * scale


def compare_records(
    baseline: BenchRecord,
    current: BenchRecord,
    *,
    sim_rtol: float,
    wall_tolerance_pct: float,
) -> List[Finding]:
    """All findings for one grid cell (empty list = clean)."""
    findings: List[Finding] = []
    cell = baseline.label()
    for name in SIM_METRIC_NAMES:
        base_value = getattr(baseline.sim, name)
        cur_value = getattr(current.sim, name)
        if _sim_differs(base_value, cur_value, sim_rtol):
            findings.append(Finding(V_SIM, cell, name, base_value, cur_value))
    if wall_tolerance_pct > 0.0 and baseline.wall.median_s > 0.0:
        ratio = current.wall.median_s / baseline.wall.median_s
        if ratio > 1.0 + wall_tolerance_pct / 100.0:
            findings.append(
                Finding(
                    V_WALL,
                    cell,
                    "wall.median_s",
                    baseline.wall.median_s,
                    current.wall.median_s,
                )
            )
        elif ratio < 1.0 - wall_tolerance_pct / 100.0:
            findings.append(
                Finding(
                    V_FASTER,
                    cell,
                    "wall.median_s",
                    baseline.wall.median_s,
                    current.wall.median_s,
                )
            )
    return findings


def compare_artifacts(
    baseline: BenchArtifact,
    current: BenchArtifact,
    *,
    sim_rtol: float = 0.0,
    wall_tolerance_pct: float = 50.0,
) -> CompareReport:
    """Diff two artifacts; every baseline cell must still exist and match."""
    report = CompareReport()
    current_map = current.record_map()
    for key, base_record in baseline.record_map().items():
        cur_record = current_map.pop(key, None)
        if cur_record is None:
            report.regressions.append(
                Finding(V_MISSING, base_record.label(), "record", None, None)
            )
            continue
        report.cells_compared += 1
        for finding in compare_records(
            base_record,
            cur_record,
            sim_rtol=sim_rtol,
            wall_tolerance_pct=wall_tolerance_pct,
        ):
            if finding.verdict == V_FASTER:
                report.improvements.append(finding)
            else:
                report.regressions.append(finding)
    report.cells_added = len(current_map)
    return report
