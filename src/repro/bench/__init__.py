"""Benchmark regression harness and paper-fidelity scoreboard.

``repro bench`` sweeps the (algorithm x dataset x GPU x system-mode)
grid and writes one schema-versioned ``BENCH_<tag>.json`` artifact per
run: wall-clock statistics, the deterministic simulated cost-model
numbers, a metrics-registry snapshot, a fidelity scoreboard against
the paper's published targets, and provenance.  ``--compare`` diffs a
run against a committed baseline and exits nonzero on regression —
the gate every perf-affecting PR is judged by.
"""

from .compare import (
    CompareReport,
    Finding,
    compare_artifacts,
    compare_records,
)
from .loadtest import (
    LATENCY_STATS,
    RATE_STATS,
    SERVE_KIND,
    SERVE_SCHEMA_VERSION,
    SLO_CEILINGS,
    SLO_FLOORS,
    WORKLOAD_FIELDS,
    LoadtestConfig,
    RequestResult,
    ServeArtifact,
    build_population,
    build_schedule,
    client_trace_context,
    collect_offenders,
    compare_serve_artifacts,
    evaluate_slo,
    parse_slo,
    run_loadtest,
    summarize_results,
    summarize_server,
    zipf_weights,
)
from .micro import (
    DEFAULT_MICRO_REPS,
    DRAM_TRACE_LEN,
    MICRO_KERNEL_NAMES,
    MICRO_KERNELS,
    MICRO_SCHEMA_VERSION,
    MicroArtifact,
    MicroRecord,
    compare_micro_artifacts,
    run_micro,
)
from .record import (
    SCHEMA_VERSION,
    SIM_METRIC_NAMES,
    BenchArtifact,
    BenchRecord,
    SimMetrics,
    WallStats,
    collect_provenance,
    short_git_sha,
)
from .runner import (
    DEFAULT_REPS,
    QUICK_DATASETS,
    BenchGrid,
    default_grid,
    run_bench,
)
from .scoreboard import (
    build_scoreboard,
    evaluate_expectations,
    run_scoreboard_experiments,
    scoreboard_payload,
    scoreboard_table,
    summarize,
)

__all__ = [
    "SCHEMA_VERSION",
    "SIM_METRIC_NAMES",
    "BenchArtifact",
    "BenchRecord",
    "SimMetrics",
    "WallStats",
    "collect_provenance",
    "short_git_sha",
    "BenchGrid",
    "default_grid",
    "run_bench",
    "DEFAULT_REPS",
    "QUICK_DATASETS",
    "CompareReport",
    "Finding",
    "compare_artifacts",
    "compare_records",
    "MICRO_SCHEMA_VERSION",
    "MICRO_KERNELS",
    "MICRO_KERNEL_NAMES",
    "MicroArtifact",
    "MicroRecord",
    "DEFAULT_MICRO_REPS",
    "DRAM_TRACE_LEN",
    "run_micro",
    "compare_micro_artifacts",
    "SERVE_SCHEMA_VERSION",
    "SERVE_KIND",
    "WORKLOAD_FIELDS",
    "LATENCY_STATS",
    "RATE_STATS",
    "SLO_CEILINGS",
    "SLO_FLOORS",
    "LoadtestConfig",
    "RequestResult",
    "ServeArtifact",
    "build_population",
    "build_schedule",
    "zipf_weights",
    "summarize_results",
    "summarize_server",
    "client_trace_context",
    "collect_offenders",
    "run_loadtest",
    "compare_serve_artifacts",
    "parse_slo",
    "evaluate_slo",
    "build_scoreboard",
    "evaluate_expectations",
    "run_scoreboard_experiments",
    "scoreboard_payload",
    "scoreboard_table",
    "summarize",
]
