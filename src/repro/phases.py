"""Phase reporting shared by the GPU and SCU engines.

Every simulated kernel or SCU operation produces a :class:`PhaseReport`;
a full algorithm run aggregates them into a :class:`RunReport`.  The
figure drivers consume these:

* Figure 1 needs the COMPACTION / PROCESSING time split;
* Figures 9-10 need the GPU / SCU time and energy split;
* Figure 12 needs per-phase coalescing factors;
* Figure 13 needs DRAM bytes and total runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .mem.hierarchy import MemoryStats


class Engine(enum.Enum):
    """Which hardware executed a phase."""

    GPU = "gpu"
    SCU = "scu"


class PhaseKind(enum.Enum):
    """The paper's Figure 1 dichotomy."""

    COMPACTION = "compaction"
    PROCESSING = "processing"


@dataclass(frozen=True)
class PhaseReport:
    """Cost accounting of one kernel launch or SCU operation."""

    name: str
    engine: Engine
    kind: PhaseKind
    elements: int  # threads (GPU) or stream elements (SCU)
    instructions: int  # thread-instructions (GPU) or pipeline slots (SCU)
    time_s: float
    dynamic_energy_j: float
    memory: MemoryStats = field(default_factory=MemoryStats)

    def __post_init__(self) -> None:
        if self.time_s < 0 or self.dynamic_energy_j < 0:
            raise ValueError(f"phase {self.name}: negative cost")


@dataclass
class RunReport:
    """Aggregate of all phases of one algorithm run on one system."""

    algorithm: str
    system: str  # a registered mode string (repro.backends.available_modes)
    dataset: str
    phases: list[PhaseReport] = field(default_factory=list)
    static_energy_j: float = 0.0  # filled in by the runner after timing

    def add(self, phase: PhaseReport) -> None:
        self.phases.append(phase)

    def extend(self, phases: Iterable[PhaseReport]) -> None:
        self.phases.extend(phases)

    def __iter__(self) -> Iterator[PhaseReport]:
        return iter(self.phases)

    # -- selections --------------------------------------------------------

    def select(
        self, *, engine: Engine | None = None, kind: PhaseKind | None = None
    ) -> list[PhaseReport]:
        out = self.phases
        if engine is not None:
            out = [p for p in out if p.engine == engine]
        if kind is not None:
            out = [p for p in out if p.kind == kind]
        return out

    # -- aggregates ---------------------------------------------------------

    def time_s(self, *, engine: Engine | None = None, kind: PhaseKind | None = None) -> float:
        return sum(p.time_s for p in self.select(engine=engine, kind=kind))

    def dynamic_energy_j(
        self, *, engine: Engine | None = None, kind: PhaseKind | None = None
    ) -> float:
        return sum(p.dynamic_energy_j for p in self.select(engine=engine, kind=kind))

    def total_energy_j(self) -> float:
        return self.dynamic_energy_j() + self.static_energy_j

    def instructions(self, *, engine: Engine | None = None) -> int:
        return sum(p.instructions for p in self.select(engine=engine))

    def memory(self, *, engine: Engine | None = None) -> MemoryStats:
        total = MemoryStats()
        for phase in self.select(engine=engine):
            total = total.merged(phase.memory)
        return total

    def compaction_time_fraction(self) -> float:
        """Figure 1's quantity: fraction of run time spent compacting.

        An empty report has no meaningful split — returning 0.0 would
        silently conflate "no phases ran" with "no time was spent
        compacting" — so it yields ``nan``, which propagates loudly
        through any averaging instead of biasing it.
        """
        total = self.time_s()
        if total == 0:
            return float("nan")
        return self.time_s(kind=PhaseKind.COMPACTION) / total

    def dram_bytes(self) -> int:
        return sum(p.memory.dram_bytes for p in self.phases)
