"""Event-driven banked DRAM simulator (the DramSim2 analog).

The phase-level experiments use the analytic :class:`~repro.mem.dram.
DramModel` (bandwidth derated by row locality); this module provides the
detailed counterpart for small traces: per-bank row buffers, explicit
tRCD/tRP/tCL/tBurst timing, tRRD/tFAW activation-rate limits, a shared
data bus, and per-bank row hit/miss accounting.  Tests validate that the
analytic model's efficiency band (35-90 % of peak) brackets what this
simulator measures on streaming vs. random traces — the same role
DramSim2 played for the paper's own analytic assumptions.

**The batched replay model.**  A trace is serviced as independent
per-bank command streams merged against the shared resources — the
formulation GraphCage-style cache-aware partitioning suggests: bank
behaviour is a property of each bank's own request subsequence, global
behaviour of how those streams contend for the activation budget and
the data bus.  Concretely, for a trace of ``n`` addresses:

1. **Bank partition.** Each request maps to a bank (row:bank:column
   interleave) and a row.  Banks service their own subsequences in
   order; a request is a *row hit* iff its row equals the row the bank
   currently has open (row state persists across ``process`` calls
   until :meth:`BankedDramSim.reset`).
2. **Per-bank pipeline.** The front end issues one command per cycle,
   so request ``i`` cannot start before cycle ``i``; within a bank,
   ``command = max(i, bank_ready)``.  A hit occupies the bank for
   ``tBurst``; a miss pays ``tRP`` (if a row was open) plus
   ``tRCD`` before its burst.
3. **Activation merge.** All misses, in trace order, share the
   activation budget: the k-th activation cannot issue earlier than
   ``tRRD`` after the previous one nor earlier than ``tFAW`` after the
   fourth-last one.
4. **Data-bus merge.** Every request's data occupies the shared bus for
   ``tBurst``, in trace order; the trace completes when the last burst
   drains.

Activation-limit and bus delays postpone *data transfer* but do not
back-pressure a bank's internal pipeline (streams are pre-scheduled —
the standard decoupling of batched replays).  This replaces the older
FR-FCFS-lite reorder window: partitioning by bank already keeps every
bank's row stream intact across arbitrary bank interleaving, which is
what the window existed to approximate.

Both implementations of the model are kept, following the
``filter_unique`` / ``filter_unique_reference`` convention:
:meth:`BankedDramSim.process_reference` is the sequential normative
spec, :meth:`BankedDramSim.process` the vectorized batch replay
(argsort bank grouping, segmented max-plus scans, a closed-form
residue-class cummax for the tRRD/tFAW chain).  Property tests assert
they produce byte-identical cycle totals, row hit/miss counts, and
post-trace bank state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from .dram import DramConfig


@dataclass(frozen=True)
class DramTimingParams:
    """Command timing in device-clock cycles."""

    t_rcd: int = 14  # ACT -> column command
    t_rp: int = 14  # PRE -> ACT
    t_cl: int = 14  # column command -> first data
    t_burst: int = 4  # data transfer (one 32B sector)
    t_rrd: int = 8  # minimum spacing between two ACTs (any banks)
    t_faw: int = 46  # window in which at most four ACTs may issue

    def __post_init__(self) -> None:
        if min(self.t_rcd, self.t_rp, self.t_cl, self.t_burst) <= 0:
            raise ConfigError("DRAM timing parameters must be positive")
        if self.t_rrd <= 0 or self.t_faw <= 0:
            raise ConfigError("activation-rate parameters must be positive")


@dataclass
class BankState:
    """Persistent per-bank state: the open row and cumulative counters."""

    open_row: int = -1
    row_hits: int = 0
    row_misses: int = 0


def _activation_chain(base: np.ndarray, t_rrd: int, t_faw: int) -> np.ndarray:
    """Exact solve of ``x[k] = max(base[k], x[k-1]+tRRD, x[k-4]+tFAW)``.

    The recurrence is max-plus linear, so ``x[k]`` is the best-cost path
    from any earlier activation: ``x[k] = max_j base[j] + cost(k - j)``
    with steps of 1 (cost ``tRRD``) and 4 (cost ``tFAW``).  For a gap of
    ``d`` the optimal mix is closed-form — ``cost(d) = (d // 4) * F +
    (d % 4) * tRRD`` with ``F = max(tFAW, 4 * tRRD)`` — which turns the
    chain into four strided running maxima plus four shifted
    elementwise maxima instead of a sequential loop.
    """
    m = int(base.size)
    if m == 0:
        return base.copy()
    big_step = max(int(t_faw), 4 * int(t_rrd))
    positions = np.arange(m, dtype=np.int64)
    # Running class maxima of base[j] - F * (j // 4), one class per
    # residue j % 4: after the strided accumulate, entry k holds the
    # best origin j <= k with j ≡ k (mod 4).
    class_max = base - big_step * (positions >> 2)
    for residue in range(min(4, m)):
        class_max[residue::4] = np.maximum.accumulate(class_max[residue::4])
    x = np.full(m, np.iinfo(np.int64).min, dtype=np.int64)
    for residue in range(min(4, m)):
        gaps = positions[residue:] - residue
        candidate = (
            residue * t_rrd + big_step * (gaps >> 2) + class_max[: m - residue]
        )
        np.maximum(x[residue:], candidate, out=x[residue:])
    return x


@dataclass
class BankedDramSim:
    """A multi-bank DRAM device processing a transaction trace exactly.

    ``reorder_window`` is retained for API compatibility with the older
    FR-FCFS-lite scheduler; the batched replay model services each
    bank's stream in order, which subsumes the window (see module
    docstring).
    """

    config: DramConfig
    timing: DramTimingParams = field(default_factory=DramTimingParams)
    num_banks: int = 16
    reorder_window: int = 8
    sector_bytes: int = 32

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.num_banks & (self.num_banks - 1):
            raise ConfigError("num_banks must be a positive power of two")
        if self.reorder_window <= 0:
            raise ConfigError("reorder_window must be positive")
        # Device clock chosen so that one burst per cycle-group saturates
        # the configured peak bandwidth.
        self.clock_hz = (
            self.config.peak_bandwidth_bps / self.sector_bytes * self.timing.t_burst
        )
        self._banks = [BankState() for _ in range(self.num_banks)]

    # -- address mapping -----------------------------------------------------

    def _bank_of(self, address: int) -> int:
        # Row:bank:column interleave — consecutive rows hit different
        # banks, the standard throughput-friendly mapping.
        return (address // self.config.row_bytes) & (self.num_banks - 1)

    def _row_of(self, address: int) -> int:
        return address // (self.config.row_bytes * self.num_banks)

    # -- simulation ----------------------------------------------------------

    def process(self, addresses: np.ndarray) -> "DramSimResult":
        """Service a transaction trace (vectorized batch replay).

        Byte-identical to :meth:`process_reference`.  All per-trace
        timing state (bank pipelines, activation history, data bus) is
        local to the call: only row state and hit/miss counters persist
        across calls.
        """
        addresses = np.asarray(addresses, dtype=np.int64).ravel()
        n = int(addresses.size)
        if n == 0:
            return self._result(transactions=0, cycles=0)
        timing = self.timing
        banks = (addresses // self.config.row_bytes) & (self.num_banks - 1)
        rows = addresses // (self.config.row_bytes * self.num_banks)

        is_hit = np.empty(n, dtype=bool)
        command = np.empty(n, dtype=np.int64)
        penalty = np.empty(n, dtype=np.int64)
        # Stable sort groups each bank's subsequence in trace order.
        order = np.argsort(banks, kind="stable")
        boundaries = np.nonzero(np.diff(banks[order]))[0] + 1
        for segment in np.split(order, boundaries):
            state = self._banks[int(banks[segment[0]])]
            seg_rows = rows[segment]
            hits = np.empty(segment.size, dtype=bool)
            hits[0] = seg_rows[0] == state.open_row
            hits[1:] = seg_rows[1:] == seg_rows[:-1]
            # tRP applies to a miss only when a row is open; after the
            # first access the bank always has one (rows are >= 0, so a
            # closed bank cannot hit on its first access).
            pen = np.where(hits, 0, timing.t_rp)
            if state.open_row == -1:
                pen[0] = 0
            increment = np.where(
                hits, timing.t_burst, pen + timing.t_rcd + timing.t_burst
            )
            # command[k] = max(i_k, ready[k-1]) with ready[k] =
            # command[k] + increment[k] is a max-plus prefix: with
            # CS = cumsum(increment), command = CSprev + cummax(i - CSprev).
            cs_prev = np.cumsum(increment) - increment
            command[segment] = cs_prev + np.maximum.accumulate(segment - cs_prev)
            penalty[segment] = pen
            is_hit[segment] = hits
            state.row_hits += int(hits.sum())
            state.row_misses += int(segment.size - hits.sum())
            state.open_row = int(seg_rows[-1])

        data_ready = command + timing.t_cl
        miss_index = np.nonzero(~is_hit)[0]
        if miss_index.size:
            act = _activation_chain(
                command[miss_index] + penalty[miss_index],
                timing.t_rrd,
                timing.t_faw,
            )
            data_ready[miss_index] = act + timing.t_rcd + timing.t_cl
        # Shared data bus: bursts drain in trace order, one per tBurst;
        # the final busy time is a single max over shifted ready times.
        total = int(
            np.max(data_ready + (n - np.arange(n, dtype=np.int64)) * timing.t_burst)
        )
        return self._result(transactions=n, cycles=total)

    def process_reference(self, addresses: np.ndarray) -> "DramSimResult":
        """Sequential normative spec of the batched replay model."""
        addresses = np.asarray(addresses, dtype=np.int64).ravel()
        n = int(addresses.size)
        if n == 0:
            return self._result(transactions=0, cycles=0)
        timing = self.timing
        bank_ready = [0] * self.num_banks
        recent_activations: list[int] = []
        bus_free = 0
        for i, address in enumerate(addresses.tolist()):
            bank_id = self._bank_of(address)
            bank = self._banks[bank_id]
            row = self._row_of(address)
            command = max(i, bank_ready[bank_id])
            if bank.open_row == row:
                bank.row_hits += 1
                data_ready = command + timing.t_cl
                bank_ready[bank_id] = command + timing.t_burst
            else:
                pen = timing.t_rp if bank.open_row != -1 else 0
                bank.row_misses += 1
                bank.open_row = row
                # Activation-rate limits (tRRD between ACTs, tFAW per
                # four) delay the data, not the bank pipeline.
                act = command + pen
                if recent_activations:
                    act = max(act, recent_activations[-1] + timing.t_rrd)
                if len(recent_activations) >= 4:
                    act = max(act, recent_activations[-4] + timing.t_faw)
                recent_activations.append(act)
                if len(recent_activations) > 4:
                    recent_activations.pop(0)
                data_ready = act + timing.t_rcd + timing.t_cl
                bank_ready[bank_id] = command + pen + timing.t_rcd + timing.t_burst
            bus_free = max(data_ready, bus_free) + timing.t_burst
        return self._result(transactions=n, cycles=bus_free)

    def _result(self, *, transactions: int, cycles: int) -> "DramSimResult":
        return DramSimResult(
            transactions=transactions,
            cycles=cycles,
            elapsed_s=cycles / self.clock_hz,
            bytes_transferred=transactions * self.sector_bytes,
            row_hits=sum(bank.row_hits for bank in self._banks),
            row_misses=sum(bank.row_misses for bank in self._banks),
            peak_bandwidth_bps=self.config.peak_bandwidth_bps,
        )

    def reset(self) -> None:
        """Close every row and zero the cumulative hit/miss counters."""
        self._banks = [BankState() for _ in range(self.num_banks)]


@dataclass(frozen=True)
class DramSimResult:
    """Outcome of one simulated trace."""

    transactions: int
    cycles: int
    elapsed_s: float
    bytes_transferred: int
    row_hits: int
    row_misses: int
    peak_bandwidth_bps: float

    def __post_init__(self) -> None:
        if self.peak_bandwidth_bps <= 0:
            raise ConfigError(
                f"peak_bandwidth_bps must be positive, got {self.peak_bandwidth_bps}"
            )

    @property
    def achieved_bandwidth_bps(self) -> float:
        if self.elapsed_s == 0:
            return 0.0
        return self.bytes_transferred / self.elapsed_s

    @property
    def efficiency(self) -> float:
        """Fraction of peak bandwidth sustained."""
        if self.peak_bandwidth_bps == 0:  # defense in depth; rejected above
            return 0.0
        return self.achieved_bandwidth_bps / self.peak_bandwidth_bps

    @property
    def row_hit_fraction(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
