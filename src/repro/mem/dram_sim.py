"""Event-driven banked DRAM simulator (the DramSim2 analog).

The phase-level experiments use the analytic :class:`~repro.mem.dram.
DramModel` (bandwidth derated by row locality); this module provides the
detailed counterpart for small traces: per-bank row buffers, explicit
tRCD/tRP/tCL/tBurst timing, FR-FCFS-lite scheduling (row hits first
within a small reorder window), and per-command energy.  Tests validate
that the analytic model's efficiency band (35-90 % of peak) brackets
what this simulator measures on streaming vs. random traces — the same
role DramSim2 played for the paper's own analytic assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from .dram import DramConfig


@dataclass(frozen=True)
class DramTimingParams:
    """Command timing in device-clock cycles."""

    t_rcd: int = 14  # ACT -> column command
    t_rp: int = 14  # PRE -> ACT
    t_cl: int = 14  # column command -> first data
    t_burst: int = 4  # data transfer (one 32B sector)
    t_rrd: int = 8  # minimum spacing between two ACTs (any banks)
    t_faw: int = 46  # window in which at most four ACTs may issue

    def __post_init__(self) -> None:
        if min(self.t_rcd, self.t_rp, self.t_cl, self.t_burst) <= 0:
            raise ConfigError("DRAM timing parameters must be positive")
        if self.t_rrd <= 0 or self.t_faw <= 0:
            raise ConfigError("activation-rate parameters must be positive")


@dataclass
class BankState:
    open_row: int = -1
    ready_cycle: int = 0  # earliest cycle the bank accepts a command
    row_hits: int = 0
    row_misses: int = 0


@dataclass
class BankedDramSim:
    """A multi-bank DRAM device processing a transaction trace exactly."""

    config: DramConfig
    timing: DramTimingParams = field(default_factory=DramTimingParams)
    num_banks: int = 16
    reorder_window: int = 8
    sector_bytes: int = 32

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.num_banks & (self.num_banks - 1):
            raise ConfigError("num_banks must be a positive power of two")
        if self.reorder_window <= 0:
            raise ConfigError("reorder_window must be positive")
        # Device clock chosen so that one burst per cycle-group saturates
        # the configured peak bandwidth.
        self.clock_hz = (
            self.config.peak_bandwidth_bps / self.sector_bytes * self.timing.t_burst
        )
        self._banks = [BankState() for _ in range(self.num_banks)]
        self._data_bus_free = 0
        self._recent_activations: list[int] = []

    # -- address mapping -----------------------------------------------------

    def _bank_of(self, address: int) -> int:
        # Row:bank:column interleave — consecutive rows hit different
        # banks, the standard throughput-friendly mapping.
        return (address // self.config.row_bytes) & (self.num_banks - 1)

    def _row_of(self, address: int) -> int:
        return address // (self.config.row_bytes * self.num_banks)

    # -- simulation ------------------------------------------------------------

    def process(self, addresses: np.ndarray) -> "DramSimResult":
        """Service a transaction trace; returns cycle/energy statistics."""
        addresses = np.asarray(addresses, dtype=np.int64)
        pending = list(addresses.tolist())
        current_cycle = 0
        served = 0
        while pending:
            # FR-FCFS-lite: within the head-of-queue window, prefer a
            # request whose bank has its row open and is ready.
            window = pending[: self.reorder_window]
            choice = 0
            for i, address in enumerate(window):
                bank = self._banks[self._bank_of(address)]
                if (
                    bank.open_row == self._row_of(address)
                    and bank.ready_cycle <= current_cycle
                ):
                    choice = i
                    break
            address = pending.pop(choice)
            current_cycle = self._service(address, current_cycle)
            served += 1
        total_cycles = max(current_cycle, self._data_bus_free)
        return DramSimResult(
            transactions=served,
            cycles=total_cycles,
            elapsed_s=total_cycles / self.clock_hz,
            bytes_transferred=served * self.sector_bytes,
            row_hits=sum(b.row_hits for b in self._banks),
            row_misses=sum(b.row_misses for b in self._banks),
            peak_bandwidth_bps=self.config.peak_bandwidth_bps,
        )

    def _service(self, address: int, now: int) -> int:
        bank = self._banks[self._bank_of(address)]
        row = self._row_of(address)
        command_cycle = max(now, bank.ready_cycle)
        if bank.open_row == row:
            # Column reads to an open row pipeline at the burst rate.
            bank.row_hits += 1
            data_ready = command_cycle + self.timing.t_cl
            bank.ready_cycle = command_cycle + self.timing.t_burst
        else:
            penalty = self.timing.t_rp if bank.open_row != -1 else 0
            bank.row_misses += 1
            bank.open_row = row
            # Activation-rate limits (tRRD between ACTs, tFAW per four).
            act_cycle = command_cycle + penalty
            if self._recent_activations:
                act_cycle = max(
                    act_cycle, self._recent_activations[-1] + self.timing.t_rrd
                )
            if len(self._recent_activations) >= 4:
                act_cycle = max(
                    act_cycle, self._recent_activations[-4] + self.timing.t_faw
                )
            self._recent_activations.append(act_cycle)
            if len(self._recent_activations) > 4:
                self._recent_activations.pop(0)
            activation = act_cycle + self.timing.t_rcd
            data_ready = activation + self.timing.t_cl
            bank.ready_cycle = activation + self.timing.t_burst
        data_start = max(data_ready, self._data_bus_free)
        self._data_bus_free = data_start + self.timing.t_burst
        # The front end issues one command per cycle; banks overlap and
        # only the shared data bus serializes the bursts.
        return command_cycle + 1

    def reset(self) -> None:
        self._banks = [BankState() for _ in range(self.num_banks)]
        self._data_bus_free = 0
        self._recent_activations = []


@dataclass(frozen=True)
class DramSimResult:
    """Outcome of one simulated trace."""

    transactions: int
    cycles: int
    elapsed_s: float
    bytes_transferred: int
    row_hits: int
    row_misses: int
    peak_bandwidth_bps: float

    @property
    def achieved_bandwidth_bps(self) -> float:
        if self.elapsed_s == 0:
            return 0.0
        return self.bytes_transferred / self.elapsed_s

    @property
    def efficiency(self) -> float:
        """Fraction of peak bandwidth sustained."""
        return self.achieved_bandwidth_bps / self.peak_bandwidth_bps

    @property
    def row_hit_fraction(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
