"""Composition of the memory system: coalescer -> L2 -> DRAM.

A simulation phase hands this module the coalesced transactions it
produced (real line ids); the hierarchy estimates L2 hits, derives DRAM
traffic and row locality, and returns a :class:`MemoryStats` bundle the
timing and energy models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import NULL_OBS, Observability
from .coalescer import SECTOR_BYTES, CoalesceResult
from .dram import DramConfig, DramModel, DramTraffic
from .locality import estimate_hit_rate, profile_lines


@dataclass(frozen=True)
class MemoryStats:
    """Aggregate memory behaviour of one phase."""

    accesses: int = 0  # thread/element-level accesses before coalescing
    transactions: int = 0  # after coalescing
    l2_hits: int = 0
    dram_accesses: int = 0
    dram_bytes: int = 0
    row_hit_fraction: float = 0.5

    def merged(self, other: "MemoryStats") -> "MemoryStats":
        """Combine two phases' stats (row locality weighted by DRAM bytes)."""
        total_bytes = self.dram_bytes + other.dram_bytes
        if total_bytes:
            row_hit = (
                self.row_hit_fraction * self.dram_bytes
                + other.row_hit_fraction * other.dram_bytes
            ) / total_bytes
        else:
            row_hit = 0.5
        return MemoryStats(
            accesses=self.accesses + other.accesses,
            transactions=self.transactions + other.transactions,
            l2_hits=self.l2_hits + other.l2_hits,
            dram_accesses=self.dram_accesses + other.dram_accesses,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            row_hit_fraction=row_hit,
        )

    @property
    def coalescing_factor(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.accesses / self.transactions

    @property
    def l2_hit_rate(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.l2_hits / self.transactions

    def dram_traffic(self) -> DramTraffic:
        return DramTraffic(
            accesses=self.dram_accesses,
            bytes_transferred=self.dram_bytes,
            row_hit_fraction=self.row_hit_fraction,
        )


def row_hit_fraction(
    line_ids: np.ndarray, *, row_bytes: int = 2048, sector_bytes: int = SECTOR_BYTES
) -> float:
    """Fraction of consecutive DRAM transactions staying in the same row.

    ``line_ids`` are transaction ids at ``sector_bytes`` granularity —
    callers passing ids of a different block size must say so, or rows
    are mis-sized by the granularity ratio.
    """
    line_ids = np.asarray(line_ids, dtype=np.int64)
    if line_ids.size < 2:
        return 0.5
    lines_per_row = max(1, row_bytes // sector_bytes)
    rows = line_ids // lines_per_row
    return float(np.mean(rows[1:] == rows[:-1]))


@dataclass
class MemoryHierarchy:
    """L2 + DRAM stack shared by the GPU SMs and the SCU."""

    l2_capacity_bytes: int
    dram: DramConfig
    l2_line_bytes: int = SECTOR_BYTES
    obs: Observability = NULL_OBS
    _dram_model: DramModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._dram_model = DramModel(self.dram, obs=self.obs)

    def attach_obs(self, obs: Observability) -> None:
        """Point this hierarchy (and its DRAM model) at an observer."""
        self.obs = obs
        self._dram_model.obs = obs

    def process(self, result: CoalesceResult, *, l2_bypass: bool = False) -> MemoryStats:
        """Turn coalesced transactions into hierarchy-level statistics.

        Args:
            result: the coalescer output (real transaction line ids).
            l2_bypass: model streaming accesses that are not worth
                caching (the GPU marks such loads; the SCU's bulk
                sequential writes behave this way too).
        """
        if result.transactions == 0:
            return MemoryStats()
        # The coalescer emits *sector* ids; the L2 tracks residency at
        # its own line granularity.  Convert before profiling reuse —
        # with the default sector-sized L2 lines this is the identity,
        # but a 128-byte-line configuration would otherwise overstate
        # the working set (and understate hits) by the size ratio.
        profile = profile_lines(result.cache_line_ids(self.l2_line_bytes))
        if l2_bypass:
            hit_rate = 0.0
        else:
            hit_rate = estimate_hit_rate(profile, self.l2_capacity_bytes, self.l2_line_bytes)
        l2_hits = int(round(hit_rate * result.transactions))
        dram_accesses = result.transactions - l2_hits
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("mem.accesses").inc(result.accesses)
            metrics.counter("mem.l2.transactions").inc(result.transactions)
            metrics.counter("mem.l2.hits").inc(l2_hits)
            metrics.counter("mem.l2.misses").inc(dram_accesses)
            metrics.counter("mem.dram.bytes").inc(dram_accesses * result.sector_bytes)
            metrics.histogram("mem.l2.hit_rate").observe(hit_rate)
        # DRAM sees the miss stream; its locality mirrors the transaction
        # stream's (misses preserve order through the L2 miss queue).
        return MemoryStats(
            accesses=result.accesses,
            transactions=result.transactions,
            l2_hits=l2_hits,
            dram_accesses=dram_accesses,
            dram_bytes=dram_accesses * result.sector_bytes,
            row_hit_fraction=row_hit_fraction(
                result.line_ids,
                row_bytes=self.dram.row_bytes,
                sector_bytes=result.sector_bytes,
            ),
        )

    def dram_time_s(self, stats: MemoryStats) -> float:
        return self._dram_model.transfer_time_s(stats.dram_traffic())

    def dram_dynamic_energy_j(self, stats: MemoryStats) -> float:
        return self._dram_model.dynamic_energy_j(stats.dram_traffic())

    def dram_static_energy_j(self, elapsed_s: float) -> float:
        return self._dram_model.static_energy_j(elapsed_s)
