"""Memory-access coalescing models.

Two coalescers live here:

* :func:`coalesce_warp` — the GPU's per-warp coalescer: the 32 threads of
  a warp issue one address each; accesses falling in the same cache line
  merge into a single memory transaction.  Intra-warp *memory
  divergence* is exactly the ratio ``transactions / warps`` and is the
  quantity the paper's grouping operation improves (Figure 12).

* :func:`coalesce_stream` — the SCU's sequential coalescing unit
  (Section 3.2.3): a sliding merge window over an in-order request
  stream (Table 1: 32 in-flight requests, 4-element merge window).

Both are exact (they look at real addresses) and vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

#: Default transaction size. Maxwell L2 moves 32-byte sectors.
SECTOR_BYTES = 32
#: L1/texture cache line size used for grouping decisions.
LINE_BYTES = 128
#: Threads per warp on every NVIDIA architecture the paper targets.
WARP_SIZE = 32


@dataclass(frozen=True)
class CoalesceResult:
    """Outcome of running an address stream through a coalescer.

    ``line_ids`` are **sector** ids at ``sector_bytes`` granularity (one
    per transaction) — not cache-line ids.  Downstream cache models that
    track a different block size must convert via
    :meth:`cache_line_ids`; feeding sector ids straight into a 128-byte
    line cache silently mis-sizes the working set by 4x.
    """

    accesses: int
    transactions: int
    line_ids: np.ndarray  # one sector id per transaction, for cache modeling
    sector_bytes: int = SECTOR_BYTES

    @property
    def coalescing_factor(self) -> float:
        """Average accesses merged per transaction (higher is better)."""
        if self.transactions == 0:
            return 0.0
        return self.accesses / self.transactions

    @property
    def bytes_transferred(self) -> int:
        return self.transactions * self.sector_bytes

    def cache_line_ids(self, line_bytes: int) -> np.ndarray:
        """Transaction ids at ``line_bytes`` granularity.

        Identity when the granularities already match; otherwise each
        sector id maps into the (coarser) cache line containing it.
        """
        if line_bytes == self.sector_bytes:
            return self.line_ids
        if line_bytes < self.sector_bytes or line_bytes % self.sector_bytes:
            raise SimulationError(
                f"cache line size {line_bytes} is not a multiple of the "
                f"transaction sector size {self.sector_bytes}"
            )
        return self.line_ids // (line_bytes // self.sector_bytes)


def _unique_per_row(lines: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """For a 2-D array, return (mask of first occurrences row-wise, sorted array).

    Rows are sorted first; a cell counts when it differs from its left
    neighbour.  Padding with -1 is handled by callers.
    """
    rows_sorted = np.sort(lines, axis=1)
    first = np.ones_like(rows_sorted, dtype=bool)
    first[:, 1:] = rows_sorted[:, 1:] != rows_sorted[:, :-1]
    return first, rows_sorted


def coalesce_warp(
    addresses: np.ndarray,
    *,
    warp_size: int = WARP_SIZE,
    sector_bytes: int = SECTOR_BYTES,
    active_mask: np.ndarray | None = None,
) -> CoalesceResult:
    """Coalesce thread addresses warp-by-warp.

    Args:
        addresses: byte address per thread, in thread order.  The stream
            is chopped into consecutive groups of ``warp_size`` (the last
            warp may be partial).
        active_mask: optional boolean array marking active lanes;
            inactive lanes issue no access (predicated-off threads).
    """
    if warp_size <= 0:
        raise SimulationError(f"warp_size must be positive, got {warp_size}")
    if sector_bytes <= 0 or sector_bytes & (sector_bytes - 1):
        raise SimulationError(f"sector_bytes must be a power of two, got {sector_bytes}")
    addresses = np.asarray(addresses, dtype=np.int64)
    if active_mask is not None:
        active_mask = np.asarray(active_mask, dtype=bool)
        if active_mask.shape != addresses.shape:
            raise SimulationError("active_mask must be parallel to addresses")
        addresses = addresses[active_mask]
    n = addresses.size
    if n == 0:
        return CoalesceResult(0, 0, np.empty(0, dtype=np.int64), sector_bytes)

    shift = int(sector_bytes).bit_length() - 1
    lines = addresses >> shift
    pad = (-n) % warp_size
    if pad:
        lines = np.concatenate([lines, np.full(pad, -1, dtype=np.int64)])
    grid = lines.reshape(-1, warp_size)
    first, rows_sorted = _unique_per_row(grid)
    keep = first & (rows_sorted != -1)
    return CoalesceResult(
        accesses=n,
        transactions=int(keep.sum()),
        line_ids=rows_sorted[keep],
        sector_bytes=sector_bytes,
    )


def coalesce_stream(
    addresses: np.ndarray,
    *,
    merge_window: int = 4,
    sector_bytes: int = SECTOR_BYTES,
) -> CoalesceResult:
    """Coalesce an in-order request stream with a bounded merge window.

    Models the SCU coalescing unit: a pending transaction absorbs
    consecutive requests to the same sector, up to ``merge_window``
    elements per transaction (Table 1: 4-element merge window).  A
    request to a different sector — or the window filling up — issues a
    new transaction.
    """
    if merge_window <= 0:
        raise SimulationError(f"merge_window must be positive, got {merge_window}")
    addresses = np.asarray(addresses, dtype=np.int64)
    n = addresses.size
    if n == 0:
        return CoalesceResult(0, 0, np.empty(0, dtype=np.int64), sector_bytes)

    shift = int(sector_bytes).bit_length() - 1
    lines = addresses >> shift
    run_start = np.ones(n, dtype=bool)
    run_start[1:] = lines[1:] != lines[:-1]
    # Position of each access within its same-sector run.
    indices = np.arange(n, dtype=np.int64)
    start_index = np.maximum.accumulate(np.where(run_start, indices, 0))
    position = indices - start_index
    keep = position % merge_window == 0
    return CoalesceResult(
        accesses=n,
        transactions=int(keep.sum()),
        line_ids=lines[keep],
        sector_bytes=sector_bytes,
    )


def sequential_addresses(
    count: int, *, base: int = 0, elem_bytes: int = 4
) -> np.ndarray:
    """Addresses of a dense sequential array walk (perfectly coalescable)."""
    if count < 0:
        raise SimulationError(f"count must be non-negative, got {count}")
    return base + np.arange(count, dtype=np.int64) * elem_bytes


def gather_addresses(
    indices: np.ndarray, *, base: int = 0, elem_bytes: int = 4
) -> np.ndarray:
    """Addresses of an indexed gather (sparse; coalescing depends on indices)."""
    return base + np.asarray(indices, dtype=np.int64) * elem_bytes
