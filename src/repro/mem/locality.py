"""Analytic cache-hit estimation for large access streams.

The phase-level timing model needs an L2 hit rate for streams of
millions of transactions.  Rather than simulate every access, we use a
capacity-based reuse model:

* every *first* access to a line is a compulsory miss;
* a *reuse* hits with probability ``min(1, capacity_lines / working_set
  lines)`` — if the working set fits, (almost) every reuse hits; if it
  is ``k`` times the capacity, roughly ``1/k`` of reuses find their line
  still resident.

This is the classic "fractional residency" approximation.  Tests
validate it against the exact simulator on streams spanning fitting,
2x-over and 8x-over working sets, where it tracks simulated hit rate
within a few percentage points — enough fidelity for the timing model,
whose conclusions hinge on transaction *counts*, not hit-rate decimals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class LocalityProfile:
    """Reuse structure of one access stream (in cache-line units)."""

    accesses: int
    unique_lines: int

    @property
    def reuses(self) -> int:
        return self.accesses - self.unique_lines


def profile_lines(line_ids: np.ndarray) -> LocalityProfile:
    """Measure the reuse structure of a stream of line ids."""
    line_ids = np.asarray(line_ids, dtype=np.int64)
    if line_ids.size == 0:
        return LocalityProfile(0, 0)
    return LocalityProfile(int(line_ids.size), int(np.unique(line_ids).size))


def estimate_hit_rate(
    profile: LocalityProfile, capacity_bytes: int, line_bytes: int
) -> float:
    """Estimate the hit rate of ``profile`` on a cache of the given size."""
    if capacity_bytes <= 0 or line_bytes <= 0:
        raise ConfigError("cache capacity and line size must be positive")
    if profile.accesses == 0:
        return 0.0
    capacity_lines = capacity_bytes / line_bytes
    residency = min(1.0, capacity_lines / max(profile.unique_lines, 1))
    return (profile.reuses * residency) / profile.accesses


def estimate_hits(
    line_ids: np.ndarray, capacity_bytes: int, line_bytes: int
) -> int:
    """Convenience wrapper: estimated hit count for a line-id stream."""
    profile = profile_lines(line_ids)
    rate = estimate_hit_rate(profile, capacity_bytes, line_bytes)
    return int(round(rate * profile.accesses))
