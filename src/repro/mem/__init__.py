"""Memory-system substrate: coalescing, caches, DRAM, hierarchy."""

from .address_space import AddressSpace, Allocation, DeviceArray, DeviceContext
from .cache import CacheStats, SetAssociativeCache
from .coalescer import (
    LINE_BYTES,
    SECTOR_BYTES,
    WARP_SIZE,
    CoalesceResult,
    coalesce_stream,
    coalesce_warp,
    gather_addresses,
    sequential_addresses,
)
from .dram import GDDR5, LPDDR4, DramConfig, DramModel, DramTraffic
from .dram_sim import BankedDramSim, DramSimResult, DramTimingParams
from .hierarchy import MemoryHierarchy, MemoryStats, row_hit_fraction
from .locality import LocalityProfile, estimate_hit_rate, estimate_hits, profile_lines

__all__ = [
    "AddressSpace",
    "Allocation",
    "DeviceArray",
    "DeviceContext",
    "CacheStats",
    "SetAssociativeCache",
    "CoalesceResult",
    "coalesce_warp",
    "coalesce_stream",
    "sequential_addresses",
    "gather_addresses",
    "SECTOR_BYTES",
    "LINE_BYTES",
    "WARP_SIZE",
    "DramConfig",
    "DramModel",
    "DramTraffic",
    "GDDR5",
    "LPDDR4",
    "BankedDramSim",
    "DramSimResult",
    "DramTimingParams",
    "MemoryHierarchy",
    "MemoryStats",
    "row_hit_fraction",
    "LocalityProfile",
    "profile_lines",
    "estimate_hit_rate",
    "estimate_hits",
]
