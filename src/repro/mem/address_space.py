"""A synthetic device address space.

The cost models work on *real byte addresses* so that coalescing and
row-locality effects are measured, not assumed.  The functional
simulation therefore places every logical array (CSR offsets, edge
array, frontiers, hash tables, ...) at a concrete base address through
this allocator, mirroring ``cudaMalloc``'s behaviour of handing out
aligned, non-overlapping regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError


@dataclass
class Allocation:
    """One array placed in device memory."""

    name: str
    base: int
    size_bytes: int
    elem_bytes: int

    def addresses(self, indices: np.ndarray | None = None) -> np.ndarray:
        """Byte addresses of the given element indices (or all elements)."""
        if indices is None:
            count = self.size_bytes // self.elem_bytes
            indices = np.arange(count, dtype=np.int64)
        addrs = self.base + np.asarray(indices, dtype=np.int64) * self.elem_bytes
        return addrs

    @property
    def num_elements(self) -> int:
        return self.size_bytes // self.elem_bytes


@dataclass
class AddressSpace:
    """Bump allocator over a synthetic device memory."""

    capacity_bytes: int = 4 << 30
    alignment: int = 256  # cudaMalloc alignment
    _cursor: int = 0
    _allocations: dict = field(default_factory=dict)

    def alloc(self, name: str, num_elements: int, elem_bytes: int = 4) -> Allocation:
        """Place an array of ``num_elements`` elements; returns its allocation."""
        if num_elements < 0 or elem_bytes <= 0:
            raise SimulationError(f"invalid allocation request for {name!r}")
        size = num_elements * elem_bytes
        base = -(-self._cursor // self.alignment) * self.alignment
        if base + size > self.capacity_bytes:
            raise SimulationError(
                f"address space exhausted allocating {name!r} "
                f"({size} bytes at {base}, capacity {self.capacity_bytes})"
            )
        self._cursor = base + size
        allocation = Allocation(name=name, base=base, size_bytes=size, elem_bytes=elem_bytes)
        self._allocations[name] = allocation
        return allocation

    def get(self, name: str) -> Allocation:
        if name not in self._allocations:
            raise SimulationError(f"no allocation named {name!r}")
        return self._allocations[name]

    @property
    def bytes_in_use(self) -> int:
        return self._cursor


@dataclass
class DeviceArray:
    """A logical array with both its values and its device placement.

    The functional simulation computes on ``values``; the cost models
    read ``addresses()`` so that coalescing and locality are measured on
    the addresses a real kernel would issue.
    """

    values: np.ndarray
    alloc: Allocation

    def addresses(self, indices: np.ndarray | None = None) -> np.ndarray:
        return self.alloc.addresses(indices)

    @property
    def name(self) -> str:
        return self.alloc.name

    @property
    def size(self) -> int:
        return int(self.values.size)

    def __len__(self) -> int:
        return self.size


@dataclass
class DeviceContext:
    """Allocates :class:`DeviceArray` objects in one address space.

    Names are made unique automatically (``frontier``, ``frontier.1``,
    ...) because algorithms allocate fresh frontiers every iteration.
    """

    space: AddressSpace = field(default_factory=AddressSpace)
    _counters: dict = field(default_factory=dict)

    def _unique_name(self, name: str) -> str:
        count = self._counters.get(name, 0)
        self._counters[name] = count + 1
        return name if count == 0 else f"{name}.{count}"

    def array(self, name: str, values: np.ndarray, *, elem_bytes: int = 4) -> DeviceArray:
        """Place ``values`` in device memory under (a uniquified) ``name``."""
        values = np.asarray(values)
        alloc = self.space.alloc(self._unique_name(name), values.size, elem_bytes)
        return DeviceArray(values=values, alloc=alloc)

    def bitmask(self, name: str, mask: np.ndarray) -> DeviceArray:
        """Place a boolean bitmask (stored packed, 1 bit per element)."""
        mask = np.asarray(mask, dtype=bool)
        words = max(1, -(-mask.size // 32))  # packed into 4-byte words
        alloc = self.space.alloc(self._unique_name(name), words, 4)
        return DeviceArray(values=mask, alloc=alloc)
