"""Exact set-associative LRU cache simulator.

Used for small traces (unit tests, SCU hash-table residency studies) and
as the ground truth against which the analytic estimator in
:mod:`repro.mem.locality` is validated.  For full-workload experiments
the estimator is used instead — an exact per-access simulation of a
multi-million-access trace in pure Python would dominate runtime without
changing any conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..obs import NULL_OBS, Observability


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class SetAssociativeCache:
    """An LRU set-associative cache over line ids.

    Attributes:
        capacity_bytes: total cache size.
        line_bytes: line (block) size in bytes.
        ways: associativity; ``capacity / (line * ways)`` must be a power
            of two so the set index is a bit mask.
    """

    capacity_bytes: int
    line_bytes: int = 128
    ways: int = 16
    stats: CacheStats = field(default_factory=CacheStats)
    name: str = "l2"
    obs: Observability = NULL_OBS

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ConfigError("cache parameters must be positive")
        num_lines = self.capacity_bytes // self.line_bytes
        if num_lines == 0 or num_lines % self.ways:
            raise ConfigError(
                f"capacity {self.capacity_bytes} not divisible into {self.ways}-way sets"
            )
        self.num_sets = num_lines // self.ways
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"number of sets must be a power of two, got {self.num_sets}")
        # tags[set][way] = line id or -1; lru[set][way] = age counter.
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._ages = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self._clock = 0

    def access_line(self, line_id: int) -> bool:
        """Access one line id; returns True on hit."""
        self._clock += 1
        set_idx = line_id & (self.num_sets - 1)
        tags = self._tags[set_idx]
        self.stats.accesses += 1
        hit_ways = np.nonzero(tags == line_id)[0]
        if hit_ways.size:
            self._ages[set_idx, hit_ways[0]] = self._clock
            self.stats.hits += 1
            if self.obs.enabled:
                self.obs.metrics.counter("cache.hits").inc(cache=self.name)
            return True
        self.stats.misses += 1
        if self.obs.enabled:
            self.obs.metrics.counter("cache.misses").inc(cache=self.name)
        victim = int(np.argmin(self._ages[set_idx]))
        if tags[victim] != -1:
            self.stats.evictions += 1
        tags[victim] = line_id
        self._ages[set_idx, victim] = self._clock
        return False

    def access_lines(self, line_ids: np.ndarray) -> int:
        """Access a sequence of line ids; returns the number of hits."""
        hits = 0
        for line in np.asarray(line_ids, dtype=np.int64):
            hits += self.access_line(int(line))
        return hits

    def access_addresses(self, addresses: np.ndarray) -> int:
        """Access byte addresses (converted to lines); returns hits."""
        shift = int(self.line_bytes).bit_length() - 1
        return self.access_lines(np.asarray(addresses, dtype=np.int64) >> shift)

    def reset(self) -> None:
        self._tags.fill(-1)
        self._ages.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    @property
    def resident_lines(self) -> int:
        return int(np.count_nonzero(self._tags != -1))
