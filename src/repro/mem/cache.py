"""Exact set-associative LRU cache simulator.

Used for small traces (unit tests, SCU hash-table residency studies) and
as the ground truth against which the analytic estimator in
:mod:`repro.mem.locality` is validated.  For full-workload experiments
the estimator is used instead — an exact per-access simulation of a
multi-million-access trace in pure Python would dominate runtime without
changing any conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..obs import NULL_OBS, Observability


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class SetAssociativeCache:
    """An LRU set-associative cache over line ids.

    Attributes:
        capacity_bytes: total cache size.
        line_bytes: line (block) size in bytes.
        ways: associativity; ``capacity / (line * ways)`` must be a power
            of two so the set index is a bit mask.
    """

    capacity_bytes: int
    line_bytes: int = 128
    ways: int = 16
    stats: CacheStats = field(default_factory=CacheStats)
    name: str = "l2"
    obs: Observability = NULL_OBS

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ConfigError("cache parameters must be positive")
        num_lines = self.capacity_bytes // self.line_bytes
        if num_lines == 0 or num_lines % self.ways:
            raise ConfigError(
                f"capacity {self.capacity_bytes} not divisible into {self.ways}-way sets"
            )
        self.num_sets = num_lines // self.ways
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"number of sets must be a power of two, got {self.num_sets}")
        # tags[set][way] = line id or -1; lru[set][way] = age counter.
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._ages = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self._clock = 0

    def access_line(self, line_id: int) -> bool:
        """Access one line id; returns True on hit."""
        self._clock += 1
        set_idx = line_id & (self.num_sets - 1)
        tags = self._tags[set_idx]
        self.stats.accesses += 1
        hit_ways = np.nonzero(tags == line_id)[0]
        if hit_ways.size:
            self._ages[set_idx, hit_ways[0]] = self._clock
            self.stats.hits += 1
            if self.obs.enabled:
                self.obs.metrics.counter("cache.hits").inc(cache=self.name)
            return True
        self.stats.misses += 1
        if self.obs.enabled:
            self.obs.metrics.counter("cache.misses").inc(cache=self.name)
        victim = int(np.argmin(self._ages[set_idx]))
        if tags[victim] != -1:
            self.stats.evictions += 1
        tags[victim] = line_id
        self._ages[set_idx, victim] = self._clock
        return False

    def access_lines(self, line_ids: np.ndarray) -> int:
        """Access a sequence of line ids; returns the number of hits.

        Batched equivalent of calling :meth:`access_line` per element —
        byte-identical tags, ages, way placement, and stats (pinned by
        :meth:`access_lines_reference` equivalence tests).  Accesses to
        different sets are independent, so the stream is replayed as a
        time-stepped matrix sweep: group accesses by set (stable
        argsort), then at step ``t`` process every set's ``t``-th access
        at once — tag compare, first-matching-way hit resolution
        (``argmax`` over booleans), and first-minimum-age victim choice
        (``argmin``) are all whole-array operations over the active
        sets.  Each set appears at most once per step, so the scattered
        updates never collide.  Total work is O(n·ways) element ops
        instead of n Python-level iterations.
        """
        lines = np.asarray(line_ids, dtype=np.int64).ravel()
        n = int(lines.size)
        if n == 0:
            return 0
        base_clock = self._clock
        set_ids = lines & (self.num_sets - 1)
        hits = misses = evictions = 0
        # Stable sort groups same-set accesses preserving stream order,
        # then within-set ranks split the stream into time steps.
        order = np.argsort(set_ids, kind="stable")
        sorted_sets = set_ids[order]
        indices = np.arange(n, dtype=np.int64)
        new_segment = np.ones(n, dtype=bool)
        new_segment[1:] = sorted_sets[1:] != sorted_sets[:-1]
        segment_start = np.maximum.accumulate(np.where(new_segment, indices, 0))
        rank = indices - segment_start
        step_order = np.argsort(rank, kind="stable")
        step_boundaries = np.nonzero(np.diff(rank[step_order]))[0] + 1
        for group in np.split(step_order, step_boundaries):
            rows = sorted_sets[group]  # distinct sets: one access each
            positions = order[group]
            line = lines[positions]
            tag_rows = self._tags[rows]
            match = tag_rows == line[:, None]
            is_hit = match.any(axis=1)
            way = np.where(
                is_hit,
                match.argmax(axis=1),  # first matching way
                np.argmin(self._ages[rows], axis=1),  # first oldest way
            )
            step_hits = int(is_hit.sum())
            hits += step_hits
            misses += group.size - step_hits
            victim_open = tag_rows[np.arange(group.size), way] != -1
            evictions += int((victim_open & ~is_hit).sum())
            self._ages[rows, way] = base_clock + positions + 1
            miss = ~is_hit
            self._tags[rows[miss], way[miss]] = line[miss]
        self._clock = base_clock + n
        self.stats.accesses += n
        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.evictions += evictions
        if self.obs.enabled:
            if hits:
                self.obs.metrics.counter("cache.hits").inc(hits, cache=self.name)
            if misses:
                self.obs.metrics.counter("cache.misses").inc(misses, cache=self.name)
        return hits

    def access_lines_reference(self, line_ids: np.ndarray) -> int:
        """Sequential normative spec: one :meth:`access_line` per element."""
        lines = np.asarray(line_ids, dtype=np.int64).ravel()
        return sum(self.access_line(int(line)) for line in lines.tolist())

    def access_addresses(self, addresses: np.ndarray) -> int:
        """Access byte addresses (converted to lines); returns hits."""
        shift = int(self.line_bytes).bit_length() - 1
        return self.access_lines(np.asarray(addresses, dtype=np.int64) >> shift)

    def access_coalesced(self, result) -> int:
        """Access a coalescer's transactions, converting sector ids to
        this cache's line granularity; returns hits.

        This is the granularity-safe entry point for feeding a
        :class:`~repro.mem.coalescer.CoalesceResult` (whose ``line_ids``
        are 32-byte sector ids) into a cache with wider lines.
        """
        return self.access_lines(result.cache_line_ids(self.line_bytes))

    def reset(self) -> None:
        self._tags.fill(-1)
        self._ages.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    @property
    def resident_lines(self) -> int:
        return int(np.count_nonzero(self._tags != -1))
