"""DRAM device models: 4 GB GDDR5 (GTX 980) and 4 GB LPDDR4 (Tegra X1).

Substitutes for DramSim2 (see DESIGN.md).  Graph workloads are
bandwidth-bound, so the model's first-order quantities are effective
bandwidth (peak derated by row-buffer behaviour) and energy per bit
(GPUWattch for GDDR5, the Micron power calculator for LPDDR4 — the same
sources the paper uses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..obs import NULL_OBS, Observability


@dataclass(frozen=True)
class DramConfig:
    """Parameters of one DRAM device."""

    name: str
    capacity_bytes: int
    peak_bandwidth_bps: float  # bytes/second
    access_latency_ns: float  # closed-row access latency
    row_hit_latency_ns: float  # open-row access latency
    energy_pj_per_bit: float  # dynamic transfer energy
    activation_energy_pj: float  # per row activation
    static_power_w: float  # background + refresh
    row_bytes: int = 2048

    def __post_init__(self) -> None:
        if self.peak_bandwidth_bps <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        if not 0 < self.row_hit_latency_ns <= self.access_latency_ns:
            raise ConfigError(f"{self.name}: implausible latencies")


#: GTX 980 board memory: 4 GB GDDR5 @ 224 GB/s (Table 3).
GDDR5 = DramConfig(
    name="GDDR5",
    capacity_bytes=4 << 30,
    peak_bandwidth_bps=224e9,
    access_latency_ns=60.0,
    row_hit_latency_ns=28.0,
    energy_pj_per_bit=14.0,
    activation_energy_pj=9000.0,
    static_power_w=6.0,
)

#: Tegra X1 memory: 4 GB LPDDR4 @ 25.6 GB/s (Table 4).
LPDDR4 = DramConfig(
    name="LPDDR4",
    capacity_bytes=4 << 30,
    peak_bandwidth_bps=25.6e9,
    access_latency_ns=75.0,
    row_hit_latency_ns=35.0,
    energy_pj_per_bit=4.5,
    activation_energy_pj=4500.0,
    static_power_w=0.35,
)


@dataclass(frozen=True)
class DramTraffic:
    """Aggregate DRAM traffic of one simulation phase."""

    accesses: int  # transactions reaching DRAM
    bytes_transferred: int
    row_hit_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.row_hit_fraction <= 1.0:
            raise ConfigError(f"row_hit_fraction out of range: {self.row_hit_fraction}")


class DramModel:
    """Time and energy for aggregate traffic on one DRAM device."""

    def __init__(self, config: DramConfig, *, obs: Observability = NULL_OBS):
        self.config = config
        self.obs = obs

    def effective_bandwidth(self, row_hit_fraction: float) -> float:
        """Peak bandwidth derated by row-buffer locality.

        Streaming (row_hit_fraction -> 1) sustains ~90 % of peak; fully
        random sector traffic (-> 0) sustains ~35 %, consistent with
        measured GDDR5/LPDDR4 behaviour under GUPS-like access patterns.
        """
        efficiency = 0.35 + 0.55 * row_hit_fraction
        return self.config.peak_bandwidth_bps * efficiency

    def transfer_time_s(self, traffic: DramTraffic) -> float:
        """Time to drain ``traffic``, bandwidth-bound with a latency floor."""
        if traffic.accesses == 0:
            return 0.0
        bandwidth_time = traffic.bytes_transferred / self.effective_bandwidth(
            traffic.row_hit_fraction
        )
        # A single access cannot beat the device latency.
        latency_floor = self.config.access_latency_ns * 1e-9
        time_s = max(bandwidth_time, latency_floor)
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("mem.dram.requests").inc(traffic.accesses, device=self.config.name)
            metrics.counter("mem.dram.time_s").inc(time_s, device=self.config.name)
            metrics.histogram("mem.dram.row_hit_fraction").observe(
                traffic.row_hit_fraction, device=self.config.name
            )
        return time_s

    def dynamic_energy_j(self, traffic: DramTraffic) -> float:
        """Transfer energy + activation energy for the row misses."""
        transfer = traffic.bytes_transferred * 8 * self.config.energy_pj_per_bit
        rows_activated = traffic.accesses * (1.0 - traffic.row_hit_fraction)
        activate = rows_activated * self.config.activation_energy_pj
        return (transfer + activate) * 1e-12

    def static_energy_j(self, elapsed_s: float) -> float:
        return self.config.static_power_w * elapsed_s
