"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets``                      — list the Table 5 dataset analogs with stats;
* ``run ALG DATASET``               — run one primitive on one dataset and
  print the per-system comparison (``--gpu``, ``--source``, ``--trace``);
* ``trace ALG DATASET``             — run once under the tracer and write a
  Chrome ``trace_event`` file for Perfetto (``--out``, ``--jsonl``,
  ``--mode``, ``--gpu``);
* ``profile ALG DATASET``           — run once and print wall-clock
  self-time, simulated-time attribution, and the metrics registry;
* ``experiment ID``                 — reproduce one paper artifact (``fig9`` ...);
* ``reproduce``                     — reproduce everything (``--quick`` subset);
* ``bench``                        — run the benchmark grid, write a
  schema-versioned ``BENCH_<tag>.json`` artifact with wall-clock stats,
  simulated metrics, a metrics snapshot and the paper-fidelity
  scoreboard; ``--compare BASELINE.json`` gates on regressions;
  ``--micro`` swaps the grid for the kernel-level microbenchmark
  suite (``BENCH_micro_<tag>.json``, same compare gating);
* ``serve``                         — long-lived HTTP simulation service
  (``POST /run``, ``GET /healthz``, ``GET /metrics``,
  ``GET /debug/requests``) with bounded admission, single-flight
  coalescing, run-cache reuse and per-request telemetry (``--port``,
  ``--workers``, ``--queue-depth``, ``--request-timeout``, ``--isolate``,
  ``--access-log``, ``--no-telemetry``); ``--store-dir`` adds the
  persistent L2 result store under the in-memory run cache;
* ``cluster``                       — N serve workers behind a
  consistent-hash front router: one simulation per unique request
  cluster-wide, a shared ``--store-dir`` L2 tier, health-checked
  workers and deterministic 503+retry on worker loss;
* ``loadtest``                      — reproducible closed/open-loop load
  generator against ``repro serve`` (in-process by default, ``--url``
  for a live one); writes ``BENCH_serve_<tag>.json`` with latency
  percentiles, throughput and coalesce/cache ratios; ``--compare``
  gates regressions (exit 2) and ``--slo`` gates absolute objectives
  (exit 3);
* ``synthesis``                     — per-component SCU area/power report;
* ``export DIR``                    — reproduce everything and write JSON+CSV;
* ``info``                          — show the simulated hardware configurations.
"""

from __future__ import annotations

import argparse
import sys
import time

from .algorithms import ALGORITHMS, SystemMode, run_algorithm
from .backends import IRU_CONFIGS, all_backends, available_modes
from .core.config import SCU_CONFIGS
from .errors import ReproError
from .gpu.config import GPU_SYSTEMS
from .graph.analysis import graph_stats
from .graph.datasets import DATASET_NAMES, DATASETS, load_dataset
from .core.area import render_synthesis_report
from .harness import (
    EXPERIMENTS,
    export_all,
    render_key_value,
    render_table,
    run_experiment,
)
from .obs import (
    make_observability,
    render_sim_profile,
    render_wall_profile,
    sim_profile,
    wall_profile,
)

QUICK_DATASETS = ("delaunay", "human", "kron")


def _cmd_datasets(_args) -> int:
    print(f"{'name':10s} {'description':34s} {'nodes':>8s} {'edges':>9s} {'avg deg':>8s}")
    for name in DATASET_NAMES:
        stats = graph_stats(load_dataset(name))
        print(
            f"{name:10s} {DATASETS[name].description:34s} "
            f"{stats.num_nodes:8d} {stats.num_edges:9d} {stats.average_degree:8.1f}"
        )
    return 0


def _selected_modes(args) -> list:
    """The system modes one ``repro run`` invocation simulates.

    The default sweeps every registered backend (in registry order);
    ``--mode NAME`` restricts the run to one of them.
    """
    if getattr(args, "mode", "all") == "all":
        return [SystemMode(name) for name in available_modes()]
    return [SystemMode(args.mode)]


def _run_modes_parallel(args, kwargs) -> list:
    """Shard the selected system modes across workers; reports in mode order."""
    from .harness.parallel import SweepCell, sweep_cells

    cells = [
        SweepCell(
            algorithm=args.algorithm,
            dataset=args.dataset,
            gpu=args.gpu,
            mode=mode,
            kwargs=tuple(sorted(kwargs.items())),
        )
        for mode in _selected_modes(args)
    ]
    outcomes = sweep_cells(cells, jobs=args.jobs)
    return [
        (outcome.cell.mode, outcome.payload.report, outcome.duration_s)
        for outcome in outcomes
    ]


def _cmd_run(args) -> int:
    graph = load_dataset(args.dataset)
    print(f"{args.algorithm} on {graph} ({args.gpu})")
    kwargs = {}
    if args.source is not None and args.algorithm != "pagerank":
        kwargs["source"] = args.source
    obs = make_observability() if args.trace else None
    if obs is None and args.jobs > 1:
        # Tracing needs one registry across all runs, so --trace
        # stays serial; otherwise the modes are independent simulations.
        runs = _run_modes_parallel(args, kwargs)
    else:
        runs = []
        for mode in _selected_modes(args):
            started = time.time()
            if obs is not None:
                with obs.tracer.span(f"run.{mode.value}", "cli", system=mode.value):
                    outcome = run_algorithm(
                        args.algorithm, graph, args.gpu, mode, obs=obs, **kwargs
                    )
            else:
                outcome = run_algorithm(
                    args.algorithm, graph, args.gpu, mode, **kwargs
                )
            runs.append((mode, outcome.report, time.time() - started))
    baseline = None
    for mode, report, elapsed in runs:
        if baseline is None:
            baseline = (report.time_s(), report.total_energy_j())
        print(
            f"  {mode.value:13s}: {report.time_s() * 1e3:9.3f} ms "
            f"({baseline[0] / report.time_s():5.2f}x)  "
            f"{report.total_energy_j() * 1e3:9.3f} mJ "
            f"({baseline[1] / report.total_energy_j():5.2f}x)  "
            f"[simulated in {elapsed:.1f}s]"
        )
    if obs is not None:
        obs.tracer.write_chrome(args.trace)
        print(f"trace written to {args.trace} (open in ui.perfetto.dev)")
    return 0


def _traced_single_run(args):
    """Shared by ``trace``/``profile``: one observed run, returns (obs, report)."""
    graph = load_dataset(args.dataset)
    mode = SystemMode(args.mode)
    obs = make_observability()
    with obs.tracer.span(
        args.algorithm, "cli",
        dataset=args.dataset, gpu=args.gpu, system=mode.value,
    ):
        outcome = run_algorithm(
            args.algorithm, graph, args.gpu, mode, obs=obs
        )
    return obs, outcome.report


def _cmd_trace_request(args) -> int:
    """One distributed, stitched trace of a simulated request.

    Mirrors what ``repro serve`` records per request, without a server:
    a client root span over ``sweep.cell`` spans (one per system mode),
    each bracketing the per-phase simulation spans its worker recorded.
    With ``--jobs`` the cells fork, so the stitched trace demonstrates
    the cross-process protocol: worker spans come back trace-less over
    the result pipe and are adopted under the originating cell span.
    """
    import json as json_mod

    from .harness.parallel import SweepCell, stitch_cell_spans, sweep_cells
    from .obs import (
        SpanRecord,
        count_sim_phase_spans,
        make_context,
        perf_to_epoch_us,
        spans_to_chrome,
    )

    context = make_context()
    started = time.perf_counter()
    cells = [
        SweepCell(
            algorithm=args.algorithm,
            dataset=args.dataset,
            gpu=args.gpu,
            mode=mode,
            collect_spans=True,
        )
        for mode in SystemMode
    ]
    outcomes = sweep_cells(cells, jobs=args.jobs)
    spans = stitch_cell_spans(
        outcomes, trace_id=context.trace_id, parent_id=context.span_id
    )
    client_span = SpanRecord(
        trace_id=context.trace_id,
        span_id=context.span_id,
        parent_id=None,
        name="client.request",
        category="client",
        process="client",
        start_us=perf_to_epoch_us(started),
        duration_us=(time.perf_counter() - started) * 1e6,
        attributes={
            "algorithm": args.algorithm,
            "dataset": args.dataset,
            "gpu": args.gpu,
            "jobs": args.jobs,
        },
    )
    stitched = [client_span] + spans
    with open(args.out, "w") as handle:
        json_mod.dump(spans_to_chrome(stitched), handle, indent=1)
    processes = sorted({span.process for span in stitched})
    print(
        f"trace {context.trace_id}: {len(stitched)} spans "
        f"({count_sim_phase_spans(stitched)} simulation phases) "
        f"across {len(processes)} processes: {', '.join(processes)}"
    )
    print(f"stitched trace written to {args.out} (open in ui.perfetto.dev)")
    return 0


def _cmd_trace(args) -> int:
    if args.request:
        return _cmd_trace_request(args)
    obs, report = _traced_single_run(args)
    obs.tracer.write_chrome(args.out)
    print(
        f"{args.algorithm}/{args.dataset} ({args.mode}, {args.gpu}): "
        f"simulated {report.time_s() * 1e3:.3f} ms across {len(report.phases)} phases"
    )
    print(f"trace written to {args.out} (open in ui.perfetto.dev)")
    if args.jsonl:
        obs.tracer.write_jsonl(args.jsonl)
        print(f"raw event log written to {args.jsonl}")
    return 0


def _cmd_profile(args) -> int:
    obs, report = _traced_single_run(args)
    print(f"wall-clock profile — {args.algorithm}/{args.dataset} ({args.mode}):")
    print(render_wall_profile(wall_profile(obs.tracer)))
    print()
    print("simulated-time attribution:")
    print(render_sim_profile(sim_profile(report)))
    print()
    print("metrics:")
    print(obs.metrics.render())
    return 0


def _cmd_experiment(args) -> int:
    kwargs = {}
    if args.quick and args.id in (
        "fig1", "fig9", "fig10", "fig11", "fig12", "fig13", "headline", "iru"
    ):
        kwargs["datasets"] = QUICK_DATASETS
    print(render_table(run_experiment(args.id, **kwargs)))
    return 0


def _cmd_reproduce(args) -> int:
    for experiment_id in EXPERIMENTS:
        namespace = argparse.Namespace(id=experiment_id, quick=args.quick)
        _cmd_experiment(namespace)
        print()
    return 0


#: Exit code of ``bench --compare`` when a regression is detected.
EXIT_REGRESSION = 2


def _cmd_bench_micro(args) -> int:
    from .bench import (
        MicroArtifact,
        compare_micro_artifacts,
        run_micro,
        short_git_sha,
    )

    tag = args.tag or short_git_sha()
    progress = None if args.no_progress else (lambda line: print(line))
    print(f"micro kernels ({'quick' if args.quick else 'full'}, reps={args.reps}):")
    artifact = run_micro(
        quick=args.quick, reps=args.reps, tag=tag, progress=progress
    )
    out_path = args.out or f"BENCH_micro_{tag}.json"
    artifact.save(out_path)
    print(f"artifact written to {out_path} ({len(artifact.records)} kernels)")
    if args.compare is None:
        return 0
    baseline = MicroArtifact.load(args.compare)
    report = compare_micro_artifacts(
        baseline,
        artifact,
        sim_rtol=args.sim_tolerance,
        wall_tolerance_pct=args.wall_tolerance,
    )
    print()
    print(render_table(report.table()))
    if not report.ok:
        print(
            f"REGRESSION against {args.compare}: "
            f"{len(report.regressions)} finding(s)",
            file=sys.stderr,
        )
        return EXIT_REGRESSION
    print(f"no regression against {args.compare}")
    return 0


def _cmd_bench(args) -> int:
    from .bench import (
        BenchArtifact,
        compare_artifacts,
        default_grid,
        run_bench,
        scoreboard_table,
        short_git_sha,
    )
    from .harness import clear_experiment_cache

    if args.micro:
        return _cmd_bench_micro(args)
    # Each bench run measures from a cold experiment cache so repeated
    # in-process invocations (--compare loops, tests) stay comparable.
    clear_experiment_cache()
    grid = default_grid(
        quick=args.quick,
        algorithms=args.algorithms,
        datasets=args.datasets,
        gpus=None if args.gpu == "both" else (args.gpu,),
        reps=args.reps,
    )
    tag = args.tag or short_git_sha()
    progress = None if args.no_progress else (lambda line: print(line))
    artifact = run_bench(
        grid,
        tag=tag,
        with_scoreboard=not args.no_scoreboard,
        progress=progress,
        jobs=args.jobs,
        cell_timeout_s=args.cell_timeout,
        retries=args.retries,
        batch_datasets=args.batch_datasets,
    )
    if artifact.scoreboard is not None:
        print()
        print(render_table(scoreboard_table(artifact.scoreboard)))
        print()
    out_path = args.out or f"BENCH_{tag}.json"
    artifact.save(out_path)
    print(f"artifact written to {out_path} ({len(artifact.records)} records)")
    if args.compare is None:
        return 0
    baseline = BenchArtifact.load(args.compare)
    report = compare_artifacts(
        baseline,
        artifact,
        sim_rtol=args.sim_tolerance,
        wall_tolerance_pct=args.wall_tolerance,
    )
    print()
    print(render_table(report.table()))
    if not report.ok:
        print(
            f"REGRESSION against {args.compare}: "
            f"{len(report.regressions)} finding(s)",
            file=sys.stderr,
        )
        return EXIT_REGRESSION
    print(f"no regression against {args.compare}")
    return 0


def _cmd_serve(args) -> int:
    from .serve import ServiceConfig, run_service

    if args.isolate and args.batch_window_ms > 0:
        print(
            "error: --batch-window-ms is incompatible with --isolate "
            "(a micro-batch runs in-process)",
            file=sys.stderr,
        )
        return 1
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        request_timeout_s=args.request_timeout,
        retry_after_s=args.retry_after,
        run_isolated=args.isolate,
        telemetry=not args.no_telemetry,
        access_log=args.access_log,
        journal_size=args.journal_size,
        tracing=not args.no_tracing,
        trace_capacity=args.trace_capacity,
        store_dir=args.store_dir,
        store_max_bytes=args.store_max_mb * 1024 * 1024,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
    )
    return run_service(config)


def _cmd_cluster(args) -> int:
    from .serve import ClusterConfig, run_cluster

    config = ClusterConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        worker_threads=args.worker_threads,
        queue_depth=args.queue_depth,
        request_timeout_s=args.request_timeout,
        store_dir=args.store_dir,
        store_max_bytes=args.store_max_mb * 1024 * 1024,
        retry_after_s=args.retry_after,
        health_interval_s=args.health_interval,
    )
    return run_cluster(config)


#: Exit code of ``loadtest --slo`` when an objective is violated.
EXIT_SLO = 3


def _cmd_loadtest(args) -> int:
    from .bench import (
        LoadtestConfig,
        ServeArtifact,
        compare_serve_artifacts,
        evaluate_slo,
        parse_slo,
        run_loadtest,
        short_git_sha,
    )

    slo = parse_slo(args.slo or [])
    config = LoadtestConfig(
        mode=args.mode,
        requests=args.requests,
        clients=args.clients,
        rate=args.rate,
        keys=args.keys,
        zipf_s=args.zipf,
        burst_datasets=args.burst_datasets,
        seed=args.seed,
        workers=args.workers,
        queue_depth=args.queue_depth,
        request_timeout_s=args.request_timeout,
        cluster_workers=args.cluster,
        store_dir=args.store_dir,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
    )
    tag = args.tag or short_git_sha()
    progress = None if args.no_progress else (lambda line: print(line))
    artifact = run_loadtest(
        config,
        url=args.url,
        tag=tag,
        progress=progress,
        trace_out=args.trace_out,
    )
    out_path = args.out or f"BENCH_serve_{tag}.json"
    artifact.save(out_path)
    print(f"artifact written to {out_path}")
    status = 0
    if args.compare is not None:
        baseline = ServeArtifact.load(args.compare)
        report = compare_serve_artifacts(
            baseline,
            artifact,
            latency_tolerance_pct=args.latency_tolerance,
            rate_tolerance=args.rate_tolerance,
        )
        print()
        print(render_table(report.table()))
        if not report.ok:
            print(
                f"REGRESSION against {args.compare}: "
                f"{len(report.regressions)} finding(s)",
                file=sys.stderr,
            )
            status = EXIT_REGRESSION
        else:
            print(f"no regression against {args.compare}")
    if slo:
        violations = evaluate_slo(artifact, slo)
        if violations:
            for violation in violations:
                print(
                    f"SLO VIOLATION: {violation.metric} = "
                    f"{violation.current} (limit {violation.baseline})",
                    file=sys.stderr,
                )
            status = status or EXIT_SLO
        else:
            print(f"all {len(slo)} SLO(s) met")
    return status


def _cmd_top(args) -> int:
    from .serve.console import run_top

    return run_top(
        args.url,
        interval_s=args.interval,
        once=args.once,
        plain=args.plain,
    )


def _cmd_synthesis(_args) -> int:
    for name in SCU_CONFIGS:
        print(render_synthesis_report(SCU_CONFIGS[name]))
        print()
    return 0


def _cmd_export(args) -> int:
    results = {}
    for experiment_id in EXPERIMENTS:
        kwargs = {}
        if args.quick and experiment_id in (
            "fig1", "fig9", "fig10", "fig11", "fig12", "fig13", "headline"
        ):
            kwargs["datasets"] = QUICK_DATASETS
        results[experiment_id] = run_experiment(experiment_id, **kwargs)
    written = export_all(results, args.directory)
    print(f"wrote {len(written)} files to {args.directory}")
    return 0


def _cmd_info(_args) -> int:
    rows = []
    for backend in all_backends():
        caps = backend.capabilities
        flags = ", ".join(
            name
            for name, on in (
                ("compaction-offload", caps.offloads_compaction),
                ("filtering", caps.filtering),
                ("grouping", caps.grouping),
                ("access-reorder", caps.reorders_accesses),
            )
            if on
        )
        rows.append((backend.name, backend.describe() + (f" [{flags}]" if flags else "")))
    print(render_key_value("Registered accelerator backends", rows))
    print()
    for name, config in GPU_SYSTEMS.items():
        print(render_key_value(f"GPU system: {name}", config.describe()))
        scu = SCU_CONFIGS[name]
        rows = scu.describe_table1() + scu.describe_table2()
        rows.append(("Synthesized Area", f"{scu.area_mm2:.2f} mm2"))
        print(render_key_value(f"SCU for {name}", rows))
        iru = IRU_CONFIGS[name]
        print(render_key_value(
            f"IRU for {name}",
            [
                ("Lanes", str(iru.lanes)),
                ("Clock", f"{iru.clock_hz / 1e9:.2f} GHz"),
                ("Reorder window", f"{iru.window_entries} entries"),
                ("Synthesized Area", f"{iru.area_mm2:.2f} mm2"),
            ],
        ))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SCU (ISCA 2019) reproduction — simulate, run, reproduce.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list dataset analogs").set_defaults(
        func=_cmd_datasets
    )

    run_parser = commands.add_parser("run", help="run one primitive")
    run_parser.add_argument("algorithm", choices=sorted(ALGORITHMS))
    run_parser.add_argument("dataset", choices=DATASET_NAMES)
    run_parser.add_argument("--gpu", choices=sorted(GPU_SYSTEMS), default="TX1")
    run_parser.add_argument("--source", type=int, default=None)
    run_parser.add_argument(
        "--mode",
        choices=["all", *available_modes()],
        default="all",
        help="restrict the run to one registered system mode "
        "(default: sweep them all)",
    )
    run_parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace of the selected system runs to PATH",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="simulate the selected system modes across N worker processes "
        "(ignored with --trace, which needs one shared trace registry)",
    )
    run_parser.set_defaults(func=_cmd_run)

    def add_traced_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("algorithm", choices=sorted(ALGORITHMS))
        sub.add_argument("dataset", choices=DATASET_NAMES)
        sub.add_argument("--gpu", choices=sorted(GPU_SYSTEMS), default="TX1")
        sub.add_argument(
            "--mode",
            choices=list(available_modes()),
            default=SystemMode.SCU_ENHANCED.value,
        )

    trace_parser = commands.add_parser(
        "trace", help="run once and write a Perfetto-loadable Chrome trace"
    )
    add_traced_arguments(trace_parser)
    trace_parser.add_argument("--out", default="trace.json")
    trace_parser.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help="also write the raw event stream as JSON lines",
    )
    trace_parser.add_argument(
        "--request", action="store_true",
        help="record a distributed, stitched trace instead: a client "
        "root span over one sweep cell per system mode, each carrying "
        "its per-phase simulation spans (--mode is ignored)",
    )
    trace_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="with --request: fork the cells across N workers, so the "
        "stitched trace shows real cross-process spans (default 1)",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    profile_parser = commands.add_parser(
        "profile", help="run once and print wall/simulated profiles + metrics"
    )
    add_traced_arguments(profile_parser)
    profile_parser.set_defaults(func=_cmd_profile)

    experiment_parser = commands.add_parser(
        "experiment", help="reproduce one paper artifact"
    )
    experiment_parser.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment_parser.add_argument("--quick", action="store_true")
    experiment_parser.set_defaults(func=_cmd_experiment)

    reproduce_parser = commands.add_parser(
        "reproduce", help="reproduce every table and figure"
    )
    reproduce_parser.add_argument("--quick", action="store_true")
    reproduce_parser.set_defaults(func=_cmd_reproduce)

    bench_parser = commands.add_parser(
        "bench",
        help="run the benchmark grid, write a BENCH_<tag>.json artifact",
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="sweep the three-dataset quick grid instead of all six "
        "(with --micro: smaller kernel inputs, DRAM trace stays 100k)",
    )
    bench_parser.add_argument(
        "--micro", action="store_true",
        help="run the kernel-level microbenchmark suite instead of the "
        "grid; writes BENCH_micro_<tag>.json and supports the same "
        "--compare regression gate",
    )
    bench_parser.add_argument(
        "--algorithms", nargs="+", choices=("bfs", "sssp", "pagerank"),
        default=None, help="restrict the swept primitives",
    )
    bench_parser.add_argument(
        "--datasets", nargs="+", choices=DATASET_NAMES, default=None,
        help="restrict the swept datasets (overrides --quick's subset)",
    )
    bench_parser.add_argument(
        "--gpu", choices=sorted(GPU_SYSTEMS) + ["both"], default="both",
    )
    bench_parser.add_argument(
        "--reps", type=int, default=3,
        help="wall-clock repetitions per grid cell (default 3)",
    )
    bench_parser.add_argument(
        "--tag", default=None,
        help="artifact tag (default: short git SHA)",
    )
    bench_parser.add_argument(
        "--out", default=None,
        help="artifact path (default BENCH_<tag>.json)",
    )
    bench_parser.add_argument(
        "--compare", metavar="BASELINE.json", default=None,
        help="diff this run against a baseline artifact; exit 2 on regression",
    )
    bench_parser.add_argument(
        "--wall-tolerance", type=float, default=50.0, metavar="PCT",
        help="relative wall-clock slowdown tolerated by --compare "
        "(percent; <= 0 disables wall gating, e.g. across machines)",
    )
    bench_parser.add_argument(
        "--sim-tolerance", type=float, default=0.0, metavar="RTOL",
        help="relative tolerance for simulated metrics in --compare "
        "(default 0: exact, the determinism contract)",
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard grid cells across N worker processes; results are "
        "merged in grid order, so simulated metrics and the scoreboard "
        "are identical for every N (default 1: in-process)",
    )
    bench_parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell deadline for parallel workers; a cell past the "
        "deadline is retried, then run in-process (default: none)",
    )
    bench_parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="extra worker attempts per failed/timed-out cell before "
        "the in-process fallback (default 1)",
    )
    bench_parser.add_argument(
        "--batch-datasets", action="store_true",
        help="group grid cells sharing a dataset into one sweep task so "
        "each worker generates the graph once per dataset; simulated "
        "metrics and the scoreboard stay byte-identical",
    )
    bench_parser.add_argument(
        "--no-scoreboard", action="store_true",
        help="skip the paper-fidelity scoreboard sweep",
    )
    bench_parser.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-cell progress lines",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    serve_parser = commands.add_parser(
        "serve", help="run the long-lived HTTP simulation service"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8765,
        help="TCP port to listen on (0 picks a free port; default 8765)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent simulation workers (default 2)",
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=8, metavar="N",
        help="admission-queue bound; requests beyond it get a 429 with "
        "a Retry-After hint (default 8)",
    )
    serve_parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline; a request past it gets a 504 "
        "(default: none)",
    )
    serve_parser.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="Retry-After hint attached to 429 rejections (default 1.0)",
    )
    serve_parser.add_argument(
        "--isolate", action="store_true",
        help="simulate each request in a killable child process so the "
        "request timeout is a hard deadline",
    )
    serve_parser.add_argument(
        "--no-telemetry", action="store_true",
        help="disable per-request telemetry (the /debug/requests journal "
        "and stage-latency histograms); responses are byte-identical "
        "either way",
    )
    serve_parser.add_argument(
        "--access-log", metavar="PATH", default=None,
        help="append one JSON line per served request to PATH "
        "('-' for stderr; default: no access log)",
    )
    serve_parser.add_argument(
        "--journal-size", type=int, default=256, metavar="N",
        help="ring-buffer capacity of the /debug/requests journal "
        "(default 256)",
    )
    serve_parser.add_argument(
        "--no-tracing", action="store_true",
        help="disable distributed tracing (traceparent propagation and "
        "the /debug/trace span store); responses are byte-identical "
        "either way",
    )
    serve_parser.add_argument(
        "--trace-capacity", type=int, default=128, metavar="N",
        help="how many recent traces the span store retains (default 128)",
    )
    serve_parser.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help="persistent L2 result-store directory; cold starts serve "
        "byte-identical responses from disk (default: memory only)",
    )
    serve_parser.add_argument(
        "--store-max-mb", type=int, default=256, metavar="MB",
        help="L2 store size bound; least-recently-used entries are "
        "evicted beyond it (default 256)",
    )
    serve_parser.add_argument(
        "--batch-window-ms", type=float, default=0.0, metavar="MS",
        help="micro-batching admission window: a cache-miss leader "
        "waits up to MS for compatible (same dataset x GPU) queued "
        "requests and simulates them in one fused batched pass "
        "(default 0: disabled; incompatible with --isolate)",
    )
    serve_parser.add_argument(
        "--batch-max", type=int, default=8, metavar="N",
        help="micro-batch size cap; a window seals early once N "
        "requests have joined (default 8)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    cluster_parser = commands.add_parser(
        "cluster",
        help="run N repro serve workers behind a consistent-hash front "
        "router (cluster-wide single-flight)",
    )
    cluster_parser.add_argument("--host", default="127.0.0.1")
    cluster_parser.add_argument(
        "--port", type=int, default=8788,
        help="front router port (0 picks a free port; default 8788)",
    )
    cluster_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker daemons to spawn (default 2)",
    )
    cluster_parser.add_argument(
        "--worker-threads", type=int, default=2, metavar="N",
        help="simulation worker pool inside each daemon (default 2)",
    )
    cluster_parser.add_argument(
        "--queue-depth", type=int, default=8, metavar="N",
        help="per-worker admission bound (default 8)",
    )
    cluster_parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline inside each worker (default: none)",
    )
    cluster_parser.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help="shared L2 result-store directory mounted by every worker; "
        "keys survive ring rebalances (default: memory only)",
    )
    cluster_parser.add_argument(
        "--store-max-mb", type=int, default=256, metavar="MB",
        help="shared store size bound (default 256)",
    )
    cluster_parser.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="Retry-After hint on routing 503s (default 1.0)",
    )
    cluster_parser.add_argument(
        "--health-interval", type=float, default=1.0, metavar="SECONDS",
        help="worker health sweep interval (default 1.0)",
    )
    cluster_parser.set_defaults(func=_cmd_cluster)

    loadtest_parser = commands.add_parser(
        "loadtest",
        help="drive a repro serve instance with a reproducible request "
        "mix; writes BENCH_serve_<tag>.json",
    )
    loadtest_parser.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed: N clients back-to-back; open: fixed arrival rate "
        "(default closed)",
    )
    loadtest_parser.add_argument(
        "--requests", type=int, default=120, metavar="N",
        help="total requests to issue (default 120)",
    )
    loadtest_parser.add_argument(
        "--clients", type=int, default=4, metavar="N",
        help="concurrent callers in closed-loop mode (default 4)",
    )
    loadtest_parser.add_argument(
        "--rate", type=float, default=20.0, metavar="RPS",
        help="arrivals per second in open-loop mode (default 20)",
    )
    loadtest_parser.add_argument(
        "--keys", type=int, default=12, metavar="N",
        help="distinct request keys in the population (default 12: the "
        "full default grid of one algorithm x three datasets x all "
        "registered modes)",
    )
    loadtest_parser.add_argument(
        "--zipf", type=float, default=1.1, metavar="S",
        help="zipf popularity exponent; 0 = uniform (default 1.1)",
    )
    loadtest_parser.add_argument(
        "--burst-datasets", type=int, default=0, metavar="LEN",
        help="emit the schedule in same-dataset bursts of LEN requests "
        "(a zipf-drawn leader followed by LEN-1 keys from its dataset) "
        "so the serve micro-batching window sees compatible neighbours "
        "(default 0: plain zipf)",
    )
    loadtest_parser.add_argument(
        "--seed", type=int, default=42,
        help="schedule seed; same seed = same request sequence (default 42)",
    )
    loadtest_parser.add_argument(
        "--url", default=None, metavar="URL",
        help="target a running service instead of starting one in-process",
    )
    loadtest_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="in-process server worker pool (ignored with --url; default 2)",
    )
    loadtest_parser.add_argument(
        "--queue-depth", type=int, default=8, metavar="N",
        help="in-process server admission bound (ignored with --url; "
        "default 8)",
    )
    loadtest_parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="in-process server per-request deadline (ignored with --url)",
    )
    loadtest_parser.add_argument(
        "--cluster", type=int, default=0, metavar="N",
        help="drive an in-process N-worker cluster behind the "
        "consistent-hash front instead of a single server "
        "(ignored with --url; default 0 = single server)",
    )
    loadtest_parser.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help="L2 result-store directory of the in-process "
        "server/cluster; a warm directory makes the run cold-start "
        "from disk (ignored with --url)",
    )
    loadtest_parser.add_argument(
        "--batch-window-ms", type=float, default=0.0, metavar="MS",
        help="micro-batching window of the in-process server/cluster "
        "workers (ignored with --url; default 0: disabled)",
    )
    loadtest_parser.add_argument(
        "--batch-max", type=int, default=8, metavar="N",
        help="micro-batch size cap of the in-process server/cluster "
        "workers (ignored with --url; default 8)",
    )
    loadtest_parser.add_argument(
        "--tag", default=None,
        help="artifact tag (default: short git SHA)",
    )
    loadtest_parser.add_argument(
        "--out", default=None,
        help="artifact path (default BENCH_serve_<tag>.json)",
    )
    loadtest_parser.add_argument(
        "--compare", metavar="BASELINE.json", default=None,
        help="diff this run against a baseline serve artifact; "
        "exit 2 on regression",
    )
    loadtest_parser.add_argument(
        "--latency-tolerance", type=float, default=300.0, metavar="PCT",
        help="relative latency slowdown tolerated by --compare "
        "(percent; <= 0 disables latency gating, e.g. across machines; "
        "default 300)",
    )
    loadtest_parser.add_argument(
        "--rate-tolerance", type=float, default=0.05, metavar="ABS",
        help="absolute increase in 429/504/error ratios tolerated by "
        "--compare (default 0.05)",
    )
    loadtest_parser.add_argument(
        "--slo", nargs="+", metavar="NAME=VALUE", default=None,
        help="absolute objectives (e.g. p99_ms=500 error_rate=0 "
        "throughput_rps=10); any violation exits 3",
    )
    loadtest_parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the slowest successful request's stitched Chrome "
        "trace (client span + server spans) to PATH",
    )
    loadtest_parser.add_argument(
        "--no-progress", action="store_true",
        help="suppress progress lines",
    )
    loadtest_parser.set_defaults(func=_cmd_loadtest)

    top_parser = commands.add_parser(
        "top",
        help="live ops console over a running repro serve (throughput, "
        "outcome mix, stage quantiles, slowest traces)",
    )
    top_parser.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="base URL of the service (default http://127.0.0.1:8765)",
    )
    top_parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="polling interval (default 2.0)",
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (non-interactive/CI form)",
    )
    top_parser.add_argument(
        "--plain", action="store_true",
        help="clear-and-reprint instead of the curses UI",
    )
    top_parser.set_defaults(func=_cmd_top)

    commands.add_parser(
        "synthesis", help="per-component SCU area/power report"
    ).set_defaults(func=_cmd_synthesis)

    export_parser = commands.add_parser(
        "export", help="reproduce everything and write JSON+CSV"
    )
    export_parser.add_argument("directory")
    export_parser.add_argument("--quick", action="store_true")
    export_parser.set_defaults(func=_cmd_export)

    commands.add_parser("info", help="show hardware configurations").set_defaults(
        func=_cmd_info
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:  # unwritable --out/--jsonl/export paths
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
