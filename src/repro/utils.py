"""Small shared helpers used across the package."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import ReproError


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a NumPy random generator from a seed or pass one through.

    ``None`` maps to a fixed default seed so that every artifact in this
    repository is deterministic unless the caller opts out explicitly.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0x5C0  # "SCU" in spirit: fixed default for deterministic artifacts
    return np.random.default_rng(seed)


def require(condition: bool, message: str, error: type[ReproError] = ReproError) -> None:
    """Raise ``error(message)`` unless ``condition`` holds."""
    if not condition:
        raise error(message)


def as_int_array(values: Iterable[int] | np.ndarray, name: str = "array") -> np.ndarray:
    """Convert ``values`` to a contiguous int64 array, validating dtype."""
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ReproError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def as_float_array(values: Iterable[float] | np.ndarray, name: str = "array") -> np.ndarray:
    """Convert ``values`` to a contiguous float64 array, validating shape."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ReproError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def chunked(seq: Sequence, size: int) -> Iterable[Sequence]:
    """Yield ``seq`` in chunks of at most ``size`` elements."""
    if size <= 0:
        raise ReproError(f"chunk size must be positive, got {size}")
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; the paper averages ratios this way."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ReproError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def format_si(value: float, unit: str = "") -> str:
    """Format ``value`` with an SI prefix (k, M, G) for human-readable tables."""
    for threshold, prefix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f} {prefix}{unit}".rstrip()
    return f"{value:.2f} {unit}".rstrip()
