"""The accelerator-backend protocol.

An :class:`AcceleratorBackend` is one pluggable accelerator model — the
GPU-only baseline, the paper's SCU (basic or enhanced), or the follow-on
IRU — described through one uniform surface:

* **identity** — ``name`` (the wire mode string, the registry key) and
  the matching :class:`~repro.backends.modes.SystemMode` member;
* **capabilities** — which optimisations the model provides (compaction
  offload, hash filtering, grouping, access reordering), consumed by
  docs, the CLI, and tests;
* **system-build hook** — :meth:`build_system` constructs the simulated
  system; backends declare their own device adjustments via
  :meth:`device_config` / :meth:`attach` instead of ``build_system``
  growing one boolean flag per accelerator;
* **per-phase intercept point** — :meth:`phase_mode` names the dispatch
  path the algorithm drivers take at each filtering / grouping /
  compaction phase.  Backends that intercept the memory path instead
  (the IRU) run the baseline phase structure and hook the coalescer's
  input stream inside the device model;
* **area / energy contribution** — :meth:`area_mm2` and
  :meth:`static_power_w`, so accounting needs no mode ``if``-ladders.

Registering an instance with
:func:`repro.backends.registry.register_backend` is the single
extension point: ``build_system``, :class:`~repro.request.RunRequest`
validation, the CLI, the serve protocol, and the bench/sweep grids all
resolve modes through the registry.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigError
from ..gpu.config import GPU_SYSTEMS, GpuConfig
from ..gpu.device import GpuDevice
from ..mem.address_space import DeviceContext
from ..obs import NULL_OBS, Observability
from .modes import SystemMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import ScuSystem
    from ..core.config import ScuConfig


@dataclass(frozen=True)
class BackendCapabilities:
    """What one accelerator model does to the simulated system."""

    #: compaction phases run on the accelerator instead of the SMs
    offloads_compaction: bool = False
    #: hash-based duplicate filtering passes are available (Section 4.2)
    filtering: bool = False
    #: grouping / reordering of compacted streams (Section 4.3)
    grouping: bool = False
    #: re-sequences the GPU coalescer's input address stream (IRU)
    reorders_accesses: bool = False


class AcceleratorBackend(ABC):
    """One registered accelerator model (see module docstring)."""

    #: canonical mode string — the registry key and the wire-form name.
    name: str
    #: one-line human description (CLI/docs).
    description: str
    #: capability flags of this model.
    capabilities: BackendCapabilities = BackendCapabilities()

    @property
    def system_mode(self) -> SystemMode:
        """The typed :class:`SystemMode` member this backend serves."""
        return SystemMode(self.name)

    # -- per-phase intercept point ----------------------------------------

    def phase_mode(self, algorithm: str) -> SystemMode:
        """Which per-phase dispatch path the algorithm drivers take.

        Backends that offload compaction return their own mode; backends
        that intercept the memory path (the IRU) return
        :attr:`SystemMode.GPU` so every filtering / grouping / compaction
        phase runs the baseline structure while the device-level hook
        does the work.
        """
        return self.system_mode

    # -- system-build hooks -------------------------------------------------

    def device_config(self, config: GpuConfig, *, memory_scale: float) -> GpuConfig:
        """Per-backend device adjustments, applied before construction.

        The default is the identity: existing backends model units
        *beside* an unmodified GPU.  A backend that needs a different
        device (altered L2 policy, extra queues) overrides this instead
        of ``build_system`` growing another boolean parameter.
        """
        return config

    def attach(
        self,
        system: "ScuSystem",
        *,
        gpu_name: str,
        scu_config: "ScuConfig | None",
        memory_scale: float,
    ) -> None:
        """Install this backend's accelerator units on a fresh system.

        Called exactly once per :meth:`build_system`, right after the
        GPU device and device context exist and before any graph data is
        placed — allocation order in the simulated address space is part
        of the byte-identity contract.  The baseline attaches nothing.
        """

    # -- area / energy contribution ----------------------------------------

    def area_mm2(self, gpu_name: str) -> float:
        """Extra die area this backend's unit adds (0 for the baseline)."""
        return 0.0

    def static_power_w(self, system: "ScuSystem") -> float:
        """Extra leakage the attached unit adds to the run's makespan."""
        return 0.0

    # -- the shared system constructor --------------------------------------

    def build_system(
        self,
        gpu_name: str,
        *,
        scu_config: "ScuConfig | None" = None,
        memory_scale: float = 1.0,
        obs: Observability | None = None,
    ) -> "ScuSystem":
        """Construct the simulated system this backend runs on.

        The construction order (GPU device, device context, accelerator
        attach) is fixed and shared by every backend so simulated
        address-space layout — and therefore every downstream number —
        is a pure function of (backend, gpu_name, config, scale).
        """
        from ..core.api import ScuSystem  # runtime import: api builds on us

        if gpu_name not in GPU_SYSTEMS:
            known = ", ".join(GPU_SYSTEMS)
            raise ConfigError(f"unknown GPU {gpu_name!r}; known systems: {known}")
        if memory_scale <= 0:
            raise ConfigError(f"memory_scale must be positive, got {memory_scale}")
        if obs is None:
            obs = NULL_OBS
        config = self.device_config(GPU_SYSTEMS[gpu_name], memory_scale=memory_scale)
        gpu = GpuDevice(config, obs=obs, memory_scale=memory_scale)
        ctx = DeviceContext()
        system = ScuSystem(gpu=gpu, ctx=ctx, obs=obs, backend=self)
        self.attach(
            system,
            gpu_name=gpu_name,
            scu_config=scu_config,
            memory_scale=memory_scale,
        )
        return system

    @abstractmethod
    def describe(self) -> str:
        """One-line summary used by ``repro info`` style surfaces."""

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} mode={self.name!r}>"
