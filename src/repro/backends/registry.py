"""The string-keyed accelerator-backend registry.

One canonical mode list, one extension point: ``build_system``,
:class:`~repro.request.RunRequest` validation, the CLI's argparse
choices, the serve protocol's 400s, and the bench/sweep/loadtest grids
all resolve mode names through this module instead of keeping their own
literals.

Registration order is presentation order — the built-in backends
register in the paper's order (gpu, scu-basic, scu-enhanced, iru), and
:func:`available_modes` reproduces it deterministically.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import ConfigError
from .base import AcceleratorBackend
from .modes import SystemMode

_REGISTRY: Dict[str, AcceleratorBackend] = {}


def register_backend(backend: AcceleratorBackend) -> AcceleratorBackend:
    """Register one backend under its canonical mode string.

    The mode must also be a :class:`SystemMode` member (the typed form
    requests and sweep cells carry); registering a name the enum does
    not know — or double-registering a name — is a configuration error,
    caught at import time for the built-ins.
    """
    name = backend.name
    try:
        SystemMode(name)
    except ValueError:
        known = ", ".join(m.value for m in SystemMode)
        raise ConfigError(
            f"backend mode {name!r} has no SystemMode member; known: {known}"
        ) from None
    if name in _REGISTRY:
        raise ConfigError(f"backend mode {name!r} is already registered")
    _REGISTRY[name] = backend
    return backend


def available_modes() -> Tuple[str, ...]:
    """Every registered mode string, in registration order.

    The single source of truth for mode names — consumed by request
    validation, the CLI, the serve protocol, and the load/bench grids.
    """
    return tuple(_REGISTRY)


def get_backend(mode: "SystemMode | str") -> AcceleratorBackend:
    """Resolve a mode (string or enum) to its registered backend.

    Raises a typed :class:`~repro.errors.ConfigError` for unknown modes;
    the service edge maps its own :class:`~repro.errors.ProtocolError`
    to a 400 before execution ever reaches this lookup.
    """
    name = mode.value if isinstance(mode, SystemMode) else mode
    backend = _REGISTRY.get(name)
    if backend is None:
        known = ", ".join(available_modes())
        raise ConfigError(f"unknown system mode {name!r}; known modes: {known}")
    return backend


def all_backends() -> Tuple[AcceleratorBackend, ...]:
    """Every registered backend, in registration order."""
    return tuple(_REGISTRY.values())
