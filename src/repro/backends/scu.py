"""The paper's Stream Compaction Unit as two registered backends.

``scu-basic`` offloads the compaction operations (Section 3);
``scu-enhanced`` additionally drives the filtering and grouping passes
(Section 4).  Both attach the *same* hardware unit — enhancement is a
property of how the algorithm drivers use it, expressed through
:meth:`phase_mode` — so the simulated system is identical and the
byte-identity A/B tests pin both paths against the pre-registry code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.config import SCU_CONFIGS
from ..core.energy import scu_static_power_w
from ..core.unit import StreamCompactionUnit
from .base import AcceleratorBackend, BackendCapabilities

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import ScuSystem
    from ..core.config import ScuConfig


class ScuBackend(AcceleratorBackend):
    """``scu-basic`` — compaction offloaded to the SCU (Section 3)."""

    name = "scu-basic"
    description = "SCU offload: compaction runs on the dedicated unit"
    capabilities = BackendCapabilities(offloads_compaction=True)

    def attach(
        self,
        system: "ScuSystem",
        *,
        gpu_name: str,
        scu_config: "ScuConfig | None",
        memory_scale: float,
    ) -> None:
        config = scu_config if scu_config is not None else SCU_CONFIGS[gpu_name]
        if memory_scale != 1.0:
            config = config.with_hash_scale(1.0 / memory_scale)
        system.scu = StreamCompactionUnit(
            config=config,
            hierarchy=system.gpu.hierarchy,
            ctx=system.ctx,
            l2_bandwidth_bps=system.gpu.config.l2_bandwidth_bps,
            obs=system.obs,
        )

    def area_mm2(self, gpu_name: str) -> float:
        return SCU_CONFIGS[gpu_name].area_mm2

    def static_power_w(self, system: "ScuSystem") -> float:
        if system.scu is None:
            return 0.0
        return scu_static_power_w(system.scu.config)

    def describe(self) -> str:
        return self.description


class ScuEnhancedBackend(ScuBackend):
    """``scu-enhanced`` — SCU plus filtering / grouping (Section 4)."""

    name = "scu-enhanced"
    description = "SCU offload plus hash filtering and grouping passes"
    capabilities = BackendCapabilities(
        offloads_compaction=True, filtering=True, grouping=True
    )
