"""The Irregular Accesses Reorder Unit (IRU) backend.

Analytical model of the same authors' follow-on proposal ("Irregular
Accesses Reorder Unit: Improving GPGPU Memory Coalescing for Graph-Based
Workloads", arXiv 2007.07131).  Where the SCU *offloads* stream
compaction, the IRU attacks the same memory-divergence problem in
place: a small buffer in the memory pipeline delays irregular accesses
and drains them grouped by cache line, so the warp coalescer downstream
sees runs of same-line addresses instead of a random interleaving.

Model:

* **functional** — :meth:`IrregularAccessReorderUnit.reorder`
  re-sequences the coalescer's input address stream within consecutive
  bounded windows of ``window_entries`` elements (a streamed sort — the
  idealised drain order of a line-grouping buffer).  Sequential streams
  are already sorted and pass through unchanged; divergent gathers are
  the ones that benefit.  The reordered stream then flows through the
  *existing* warp coalescer, L2 model, and DRAM model, so
  coalescing-efficiency gains and DRAM row-locality gains emerge from
  the same machinery every other backend is priced with.
* **overhead** — draining a window is pipelined with execution; the
  exposed (non-overlapped) cost per kernel is a setup latency plus an
  ``exposed_fraction`` of the streaming time at ``lanes x clock``
  elements per second.  Dynamic energy is a few pJ per reordered
  element plus the unit's (small) active power over its busy time;
  leakage and area follow the SCU's synthesis-analog style, an order of
  magnitude below the SCU's — the follow-on paper's selling point is
  precisely that reordering needs no megabyte-class hash storage.

The window is a fixed hardware buffer sized in *entries*, independent
of the dataset, so — unlike the SCU hash tables — it is **not** scaled
by ``memory_scale``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError
from .base import AcceleratorBackend, BackendCapabilities
from .modes import SystemMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import ScuSystem
    from ..core.config import ScuConfig


@dataclass(frozen=True)
class IruConfig:
    """Hardware parameters of one IRU variant (per target GPU)."""

    name: str
    clock_hz: float  # matched to the host GPU, like the SCU
    lanes: int  # addresses accepted/drained per cycle
    window_entries: int  # reorder-buffer capacity, in addresses
    #: per-kernel exposed latency of configuring/flushing the unit
    op_setup_s: float = 1e-7
    #: fraction of the streaming time not hidden under execution
    exposed_fraction: float = 0.05
    #: buffer insert + tag match + drain, per reordered address
    energy_per_element_pj: float = 1.6
    #: active power while the unit streams (4-lane reference scale)
    active_power_w: float = 0.18
    #: leakage at the 4-lane reference scale (area-scaled like the SCU)
    static_power_w: float = 0.06

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ConfigError(f"{self.name}: lanes must be positive")
        if self.clock_hz <= 0:
            raise ConfigError(f"{self.name}: clock must be positive")
        if self.window_entries <= 1:
            raise ConfigError(f"{self.name}: window must hold at least 2 entries")
        if not 0.0 <= self.exposed_fraction <= 1.0:
            raise ConfigError(f"{self.name}: exposed fraction must be in [0, 1]")

    @property
    def elements_per_second(self) -> float:
        return self.lanes * self.clock_hz

    # -- area model (synthesis substitute, cf. ScuConfig) -------------------
    # A control base plus a per-lane datapath term; the buffer itself is
    # a few KB of CAM/SRAM, far from the SCU's megabyte-class hashes.

    AREA_BASE_MM2 = 0.11
    AREA_PER_LANE_MM2 = 0.36

    @property
    def area_mm2(self) -> float:
        return self.AREA_BASE_MM2 + self.AREA_PER_LANE_MM2 * self.lanes

    def area_overhead_fraction(self, gpu_die_area_mm2: float) -> float:
        if gpu_die_area_mm2 <= 0:
            raise ConfigError("GPU die area must be positive")
        return self.area_mm2 / (gpu_die_area_mm2 + self.area_mm2)

    def with_window(self, window_entries: int) -> "IruConfig":
        """Design-space variant with a different reorder window."""
        return replace(self, window_entries=window_entries)


#: Per-GPU variants, mirroring the SCU's Table 2 scaling: wide unit next
#: to the desktop GPU, single-lane next to the low-power one.
IRU_GTX980 = IruConfig(
    name="IRU-GTX980", clock_hz=1.27e9, lanes=4, window_entries=1024
)
IRU_TX1 = IruConfig(name="IRU-TX1", clock_hz=1.0e9, lanes=1, window_entries=256)

IRU_CONFIGS = {"GTX980": IRU_GTX980, "TX1": IRU_TX1}

#: 4-lane reference area the power figures are quoted at.
_REFERENCE_AREA_MM2 = IruConfig.AREA_BASE_MM2 + 4 * IruConfig.AREA_PER_LANE_MM2


@dataclass
class IrregularAccessReorderUnit:
    """The attached unit: functional reorder plus its cost accounting."""

    config: IruConfig

    def reorder(self, addresses: np.ndarray) -> np.ndarray:
        """Re-sequence an address stream within bounded windows.

        Deterministic and exact: consecutive ``window_entries``-sized
        windows are each drained in sorted address order (same-line
        accesses leave back-to-back); the trailing partial window drains
        the same way.  Order across windows is preserved — the buffer
        cannot reorder further than its capacity.
        """
        a = np.ascontiguousarray(np.asarray(addresses, dtype=np.int64))
        n = a.size
        window = self.config.window_entries
        if n <= 1:
            return a
        full = (n // window) * window
        out = np.empty(n, dtype=np.int64)
        if full:
            out[:full] = np.sort(a[:full].reshape(-1, window), axis=1).ravel()
        if n > full:
            out[full:] = np.sort(a[full:])
        return out

    def intercept(
        self, addresses: np.ndarray, active_mask: np.ndarray | None = None
    ) -> "tuple[np.ndarray, int] | None":
        """Device-side hook: reorder one access stream, or bypass it.

        Regular (already-ordered) streams bypass the buffer — the
        compiler only routes marked irregular accesses through the IRU —
        so they pay no reorder cost and flow to the coalescer untouched
        (``None``).  Irregular streams come back re-sequenced with their
        active mask pre-applied (masked-off lanes never enter the
        buffer), plus the element count the overhead model charges for.
        """
        a = np.asarray(addresses, dtype=np.int64)
        if active_mask is not None:
            a = a[np.asarray(active_mask, dtype=bool)]
        if a.size <= 1 or bool(np.all(np.diff(a) >= 0)):
            return None
        return self.reorder(a), int(a.size)

    # -- cost accounting ----------------------------------------------------

    def exposed_time_s(self, elements: int) -> float:
        """Non-overlapped latency the unit adds to one kernel launch."""
        if elements <= 0:
            return 0.0
        streaming = elements / self.config.elements_per_second
        return self.config.op_setup_s + self.config.exposed_fraction * streaming

    def dynamic_energy_j(self, elements: int) -> float:
        """Energy of pushing ``elements`` addresses through the buffer."""
        if elements <= 0:
            return 0.0
        switching = elements * self.config.energy_per_element_pj * 1e-12
        busy_s = elements / self.config.elements_per_second
        scale = self.config.area_mm2 / _REFERENCE_AREA_MM2
        return switching + self.config.active_power_w * scale * busy_s

    @property
    def static_power_w(self) -> float:
        """Leakage, scaled by synthesized area like the SCU's."""
        scale = self.config.area_mm2 / _REFERENCE_AREA_MM2
        return self.config.static_power_w * scale


class IruBackend(AcceleratorBackend):
    """``iru`` — baseline phase structure, reordered memory path."""

    name = "iru"
    description = "IRU: bounded-window reordering of irregular accesses"
    capabilities = BackendCapabilities(reorders_accesses=True)

    def phase_mode(self, algorithm: str) -> SystemMode:
        # Compaction stays on the SMs; the intercept lives in the
        # device's memory path, not in the phase drivers.
        return SystemMode.GPU

    def attach(
        self,
        system: "ScuSystem",
        *,
        gpu_name: str,
        scu_config: "ScuConfig | None",
        memory_scale: float,
    ) -> None:
        unit = IrregularAccessReorderUnit(config=IRU_CONFIGS[gpu_name])
        system.iru = unit
        # The backend's device adjustment: hook the coalescer input.
        system.gpu.attach_reorderer(unit)

    def area_mm2(self, gpu_name: str) -> float:
        return IRU_CONFIGS[gpu_name].area_mm2

    def static_power_w(self, system: "ScuSystem") -> float:
        if system.iru is None:
            return 0.0
        return system.iru.static_power_w

    def describe(self) -> str:
        return self.description
