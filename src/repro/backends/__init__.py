"""Pluggable accelerator backends.

This package is the single extension point for system modes: the
:class:`~repro.backends.base.AcceleratorBackend` protocol, the
string-keyed registry, and the four built-in backends (``gpu``,
``scu-basic``, ``scu-enhanced``, ``iru``).  ``build_system``, request
validation, the CLI, the serve protocol, and the bench/sweep/loadtest
grids all resolve mode names through :func:`available_modes` /
:func:`get_backend` instead of keeping their own literals.
"""

from __future__ import annotations

from .base import AcceleratorBackend, BackendCapabilities
from .baseline import BaselineBackend
from .iru import (
    IRU_CONFIGS,
    IRU_GTX980,
    IRU_TX1,
    IrregularAccessReorderUnit,
    IruBackend,
    IruConfig,
)
from .modes import SystemMode
from .registry import all_backends, available_modes, get_backend, register_backend
from .scu import ScuBackend, ScuEnhancedBackend

# Built-ins register at import time, in the paper's presentation order;
# available_modes() reproduces this order everywhere modes are listed.
register_backend(BaselineBackend())
register_backend(ScuBackend())
register_backend(ScuEnhancedBackend())
register_backend(IruBackend())

__all__ = [
    "AcceleratorBackend",
    "BackendCapabilities",
    "BaselineBackend",
    "ScuBackend",
    "ScuEnhancedBackend",
    "IruBackend",
    "IruConfig",
    "IrregularAccessReorderUnit",
    "IRU_CONFIGS",
    "IRU_GTX980",
    "IRU_TX1",
    "SystemMode",
    "available_modes",
    "get_backend",
    "all_backends",
    "register_backend",
]
