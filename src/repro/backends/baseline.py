"""The GPU-only baseline backend.

No accelerator is attached: every compaction phase runs as scan-based
kernels on the SMs, exactly the system the paper's Figure 1 profiles.
All other backends are measured against this one.
"""

from __future__ import annotations

from .base import AcceleratorBackend, BackendCapabilities


class BaselineBackend(AcceleratorBackend):
    """``gpu`` — the unmodified GPU, compaction on the SMs."""

    name = "gpu"
    description = "GPU-only baseline (scan-based compaction on the SMs)"
    capabilities = BackendCapabilities()

    def describe(self) -> str:
        return self.description
