"""The canonical system-mode enumeration.

Historically :class:`SystemMode` lived in ``repro.algorithms.common``
and named the three systems the paper compares.  With the accelerator
registry it moved here — a leaf module with no model imports — so both
the algorithm drivers and the backend registry can reference it without
a cycle.  ``repro.algorithms.common`` re-exports it, so existing
imports keep working.

A mode is the *wire name* of an accelerator backend; the authoritative
list of usable modes is :func:`repro.backends.available_modes`, which
reflects the registry (one registered backend per enum member — pinned
by a test so the two can never drift).
"""

from __future__ import annotations

import enum


class SystemMode(enum.Enum):
    """The simulated system variants (one per registered backend)."""

    GPU = "gpu"  # baseline: compaction runs on the SMs
    SCU_BASIC = "scu-basic"  # Section 3: compaction offloaded
    SCU_ENHANCED = "scu-enhanced"  # Section 4: + filtering / grouping
    IRU = "iru"  # follow-on paper (arXiv 2007.07131): access reordering
