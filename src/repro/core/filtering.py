"""Duplicate filtering with the in-memory hash table (Section 4.2).

Two schemes, as in the paper:

* **unique-element** (BFS): an element is kept unless the hash entry it
  maps to currently holds the same element id (a duplicate was seen and
  not yet evicted).  Collisions overwrite, so filtering is *lossy* —
  some duplicates survive — but never drops a first occurrence.

* **unique-best-cost** (SSSP): the entry additionally stores a cost; a
  duplicate is kept only when it improves on the best cost seen while
  its id owned the entry.

Both are implemented twice: a dict-based sequential reference (the
hardware's literal algorithm) and a vectorized version used by the
experiments.  Property tests assert they are identical; the vectorized
form makes million-element frontiers tractable in Python.

The vectorization relies on an observation about the overwrite
discipline: the table state seen by element *i* at its slot is fully
determined by the *previous element mapping to the same slot*.  Sorting
(stably) by slot therefore turns the table walk into run-boundary
comparisons.
"""

from __future__ import annotations

import numpy as np

from ..errors import OperationError
from ..obs import NULL_OBS, Observability
from .config import HashTableConfig
from .hashtable import hash_slots


def _segmented_prev_cummin(costs: np.ndarray, segment_start: np.ndarray) -> np.ndarray:
    """For each position, the min of *earlier* values in its segment.

    ``segment_start`` marks the first element of each segment.  The first
    element of a segment gets ``+inf`` (no predecessor).
    """
    if costs.size == 0:
        return costs.copy()
    # Offset each segment so earlier segments cannot contaminate the
    # running minimum (they are strictly larger after the shift).
    seg_id = np.cumsum(segment_start) - 1
    num_segments = int(seg_id[-1]) + 1
    span = float(np.max(costs) - np.min(costs)) + 1.0
    shifted = costs + (num_segments - seg_id) * span
    cummin = np.minimum.accumulate(shifted)
    prev = np.empty_like(cummin)
    prev[0] = np.inf
    prev[1:] = cummin[:-1]
    prev_in_segment = prev - (num_segments - seg_id) * span
    prev_in_segment[segment_start] = np.inf
    return prev_in_segment


def filter_unique(
    ids: np.ndarray, table: HashTableConfig, *, obs: Observability = NULL_OBS
) -> np.ndarray:
    """Unique-element filtering; returns the keep bitmask (vectorized)."""
    ids = np.asarray(ids, dtype=np.int64)
    if ids.ndim != 1:
        raise OperationError("ids must be one-dimensional")
    if ids.size == 0:
        return np.zeros(0, dtype=bool)
    slots = hash_slots(ids, table.num_entries)
    order = np.argsort(slots, kind="stable")
    slots_sorted = slots[order]
    ids_sorted = ids[order]
    new_slot = np.ones(ids.size, dtype=bool)
    new_slot[1:] = slots_sorted[1:] != slots_sorted[:-1]
    same_as_prev = np.zeros(ids.size, dtype=bool)
    same_as_prev[1:] = ids_sorted[1:] == ids_sorted[:-1]
    keep_sorted = new_slot | ~same_as_prev
    keep = np.empty(ids.size, dtype=bool)
    keep[order] = keep_sorted
    _record_filter_metrics(obs, "unique", table, slots, keep)
    return keep


def _record_filter_metrics(
    obs: Observability,
    scheme: str,
    table: HashTableConfig,
    slots: np.ndarray,
    keep: np.ndarray,
) -> None:
    """Keep rate and hash-table pressure of one filtering pass."""
    if not obs.enabled:
        return
    metrics = obs.metrics
    metrics.histogram("scu.filter.keep_rate").observe(
        float(keep.mean()), scheme=scheme
    )
    metrics.counter("scu.filter.elements").inc(keep.size, scheme=scheme)
    metrics.counter("scu.filter.dropped").inc(int(keep.size - keep.sum()), scheme=scheme)
    # Occupancy: distinct entries this pass touched vs table capacity —
    # the pressure regime the Table 2 sizes were chosen for.
    metrics.histogram("scu.hash.occupancy").observe(
        np.unique(slots).size / table.num_entries, table=table.name
    )


def filter_unique_reference(ids: np.ndarray, table: HashTableConfig) -> np.ndarray:
    """Sequential dict-based reference of :func:`filter_unique`."""
    ids = np.asarray(ids, dtype=np.int64)
    slots = hash_slots(ids, table.num_entries)
    entries: dict[int, int] = {}
    keep = np.zeros(ids.size, dtype=bool)
    for i, (slot, element) in enumerate(zip(slots.tolist(), ids.tolist())):
        if entries.get(slot) == element:
            continue  # duplicate detected: discard
        entries[slot] = element  # store or overwrite-on-collision
        keep[i] = True
    return keep


def filter_best_cost(
    ids: np.ndarray,
    costs: np.ndarray,
    table: HashTableConfig,
    *,
    obs: Observability = NULL_OBS,
) -> np.ndarray:
    """Unique-best-cost filtering; returns the keep bitmask (vectorized)."""
    ids = np.asarray(ids, dtype=np.int64)
    costs = np.asarray(costs, dtype=np.float64)
    if ids.shape != costs.shape:
        raise OperationError("ids and costs must be parallel arrays")
    if ids.size == 0:
        return np.zeros(0, dtype=bool)
    slots = hash_slots(ids, table.num_entries)
    order = np.argsort(slots, kind="stable")
    slots_sorted = slots[order]
    ids_sorted = ids[order]
    costs_sorted = costs[order]
    # A "segment" is a maximal run where the entry continuously holds the
    # same id: it breaks when the slot changes or a different id evicts.
    segment_start = np.ones(ids.size, dtype=bool)
    segment_start[1:] = (slots_sorted[1:] != slots_sorted[:-1]) | (
        ids_sorted[1:] != ids_sorted[:-1]
    )
    prev_best = _segmented_prev_cummin(costs_sorted, segment_start)
    keep_sorted = costs_sorted < prev_best
    keep = np.empty(ids.size, dtype=bool)
    keep[order] = keep_sorted
    _record_filter_metrics(obs, "best_cost", table, slots, keep)
    return keep


def filter_best_cost_reference(
    ids: np.ndarray, costs: np.ndarray, table: HashTableConfig
) -> np.ndarray:
    """Sequential dict-based reference of :func:`filter_best_cost`."""
    ids = np.asarray(ids, dtype=np.int64)
    costs = np.asarray(costs, dtype=np.float64)
    slots = hash_slots(ids, table.num_entries)
    entries: dict[int, tuple[int, float]] = {}
    keep = np.zeros(ids.size, dtype=bool)
    for i, (slot, element, cost) in enumerate(
        zip(slots.tolist(), ids.tolist(), costs.tolist())
    ):
        held = entries.get(slot)
        if held is not None and held[0] == element:
            if cost < held[1]:
                entries[slot] = (element, cost)
                keep[i] = True
            continue
        entries[slot] = (element, cost)
        keep[i] = True
    return keep


def duplicates_removed_fraction(keep: np.ndarray) -> float:
    """Fraction of the stream the filter discarded."""
    if keep.size == 0:
        return 0.0
    return float(1.0 - keep.sum() / keep.size)
