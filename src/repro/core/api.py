"""The "simple API" through which applications use the accelerators.

:class:`ScuSystem` bundles a GPU device model, its memory hierarchy, a
device context (address space), and — when present — the attached
accelerator unit(s).  ``build_system("TX1")`` gives the paper's
low-power system with the SCU; ``build_system("GTX980", mode="gpu")``
gives the GPU-only baseline; ``build_system("TX1", mode="iru")`` swaps
the SCU for the follow-on reorder unit.

Which unit gets attached — and any device adjustments it needs — is
decided by the resolved :class:`~repro.backends.base.AcceleratorBackend`,
not by boolean flags here; see :mod:`repro.backends`.

The method names mirror the pseudo-code of Algorithms 1-5
(``accessExpansionCompactionSCU`` et al.) so the algorithm
implementations read like the paper.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ConfigError
from ..gpu.config import GpuConfig
from ..gpu.device import GpuDevice
from ..mem.address_space import DeviceContext
from ..obs import NULL_OBS, Observability
from .config import ScuConfig
from .unit import StreamCompactionUnit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.base import AcceleratorBackend
    from ..backends.iru import IrregularAccessReorderUnit
    from ..backends.modes import SystemMode


@dataclass
class ScuSystem:
    """A GPU system, optionally extended with an accelerator unit."""

    gpu: GpuDevice
    ctx: DeviceContext
    scu: StreamCompactionUnit | None = None
    #: the tracer/metrics bundle every layer of this system reports to;
    #: NULL_OBS (all no-ops) unless one was injected via ``build_system``.
    obs: Observability = NULL_OBS
    #: the reorder unit, when built with ``mode="iru"``.
    iru: "IrregularAccessReorderUnit | None" = None
    #: the backend that built this system (None for hand-assembled ones).
    backend: "AcceleratorBackend | None" = field(default=None, repr=False)

    @property
    def has_scu(self) -> bool:
        return self.scu is not None

    @property
    def has_iru(self) -> bool:
        return self.iru is not None

    @property
    def config(self) -> GpuConfig:
        return self.gpu.config

    def require_scu(self) -> StreamCompactionUnit:
        if self.scu is None:
            raise ConfigError(
                f"system {self.gpu.config.name} was built without an SCU"
            )
        return self.scu


#: Ratio between the paper's dataset sizes and this reproduction's
#: generated analogs (e.g. ca: 710 k vs 36 k nodes).  Experiments build
#: systems with ``memory_scale`` set to this value so that working-set
#: to cache-capacity ratios — which decide whether divergent node-state
#: lookups hit L2 or DRAM, the paper's central inefficiency — match the
#: paper's regime.  Both the L2 (for hit estimation) and the SCU hash
#: tables (Table 2 sizes were chosen against the real graphs) scale
#: together.  Unit tests use 1.0 (true hardware sizes).
PAPER_SCALE = 16.0


def build_system(
    gpu_name: str,
    *,
    mode: "SystemMode | str | None" = None,
    with_scu: bool | None = None,
    scu_config: ScuConfig | None = None,
    memory_scale: float = 1.0,
    obs: Observability | None = None,
) -> ScuSystem:
    """Construct one of the paper's systems by GPU name ("GTX980" / "TX1").

    ``mode`` names the accelerator backend to attach (any string from
    :func:`repro.backends.available_modes`, or a
    :class:`~repro.backends.modes.SystemMode` member).  The default,
    ``"scu-enhanced"``, preserves this function's historical behaviour
    of building the paper's full system.

    ``with_scu`` is the deprecated boolean this signature grew up with;
    it maps ``True`` to ``mode="scu-enhanced"`` and ``False`` to
    ``mode="gpu"`` with a :class:`DeprecationWarning` and will be
    removed in a future release — pass ``mode`` instead.

    ``memory_scale`` divides the modeled L2 capacity and the SCU hash
    sizes to match scaled-down datasets (see :data:`PAPER_SCALE`).
    ``obs`` injects a tracer/metrics bundle into every layer (GPU device,
    memory hierarchy, accelerator); observation is purely passive and
    never changes a simulated number.
    """
    from ..backends import get_backend  # runtime import: backends build on core

    if with_scu is not None:
        if mode is not None:
            raise ConfigError(
                "build_system: pass either mode= or the deprecated with_scu=, "
                "not both"
            )
        warnings.warn(
            "build_system(with_scu=...) is deprecated and will be removed; "
            'pass mode="scu-enhanced" (with_scu=True) or mode="gpu" '
            "(with_scu=False) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        mode = "scu-enhanced" if with_scu else "gpu"
    if mode is None:
        mode = "scu-enhanced"
    return get_backend(mode).build_system(
        gpu_name,
        scu_config=scu_config,
        memory_scale=memory_scale,
        obs=obs,
    )
