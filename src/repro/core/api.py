"""The "simple API" through which applications use the SCU (Section 3).

:class:`ScuSystem` bundles a GPU device model, its memory hierarchy, a
device context (address space), and — when present — the attached SCU.
``build_system("TX1")`` gives the paper's low-power system with the SCU;
``build_system("GTX980", with_scu=False)`` gives the GPU-only baseline.

The method names mirror the pseudo-code of Algorithms 1-5
(``accessExpansionCompactionSCU`` et al.) so the algorithm
implementations read like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..gpu.config import GPU_SYSTEMS, GpuConfig
from ..gpu.device import GpuDevice
from ..mem.address_space import DeviceContext
from ..obs import NULL_OBS, Observability
from .config import SCU_CONFIGS, ScuConfig
from .unit import StreamCompactionUnit


@dataclass
class ScuSystem:
    """A GPU system, optionally extended with the SCU."""

    gpu: GpuDevice
    ctx: DeviceContext
    scu: StreamCompactionUnit | None = None
    #: the tracer/metrics bundle every layer of this system reports to;
    #: NULL_OBS (all no-ops) unless one was injected via ``build_system``.
    obs: Observability = NULL_OBS

    @property
    def has_scu(self) -> bool:
        return self.scu is not None

    @property
    def config(self) -> GpuConfig:
        return self.gpu.config

    def require_scu(self) -> StreamCompactionUnit:
        if self.scu is None:
            raise ConfigError(
                f"system {self.gpu.config.name} was built without an SCU"
            )
        return self.scu


#: Ratio between the paper's dataset sizes and this reproduction's
#: generated analogs (e.g. ca: 710 k vs 36 k nodes).  Experiments build
#: systems with ``memory_scale`` set to this value so that working-set
#: to cache-capacity ratios — which decide whether divergent node-state
#: lookups hit L2 or DRAM, the paper's central inefficiency — match the
#: paper's regime.  Both the L2 (for hit estimation) and the SCU hash
#: tables (Table 2 sizes were chosen against the real graphs) scale
#: together.  Unit tests use 1.0 (true hardware sizes).
PAPER_SCALE = 16.0


def build_system(
    gpu_name: str,
    *,
    with_scu: bool = True,
    scu_config: ScuConfig | None = None,
    memory_scale: float = 1.0,
    obs: Observability | None = None,
) -> ScuSystem:
    """Construct one of the paper's systems by GPU name ("GTX980" / "TX1").

    ``memory_scale`` divides the modeled L2 capacity and the SCU hash
    sizes to match scaled-down datasets (see :data:`PAPER_SCALE`).
    ``obs`` injects a tracer/metrics bundle into every layer (GPU device,
    memory hierarchy, SCU); observation is purely passive and never
    changes a simulated number.
    """
    if gpu_name not in GPU_SYSTEMS:
        known = ", ".join(GPU_SYSTEMS)
        raise ConfigError(f"unknown GPU {gpu_name!r}; known systems: {known}")
    if memory_scale <= 0:
        raise ConfigError(f"memory_scale must be positive, got {memory_scale}")
    if obs is None:
        obs = NULL_OBS
    gpu = GpuDevice(GPU_SYSTEMS[gpu_name], obs=obs, memory_scale=memory_scale)
    ctx = DeviceContext()
    scu = None
    if with_scu:
        config = scu_config if scu_config is not None else SCU_CONFIGS[gpu_name]
        if memory_scale != 1.0:
            config = config.with_hash_scale(1.0 / memory_scale)
        scu = StreamCompactionUnit(
            config=config,
            hierarchy=gpu.hierarchy,
            ctx=ctx,
            l2_bandwidth_bps=gpu.config.l2_bandwidth_bps,
            obs=obs,
        )
    return ScuSystem(gpu=gpu, ctx=ctx, scu=scu, obs=obs)
