"""SCU hardware configuration — Tables 1 and 2 of the paper.

Table 1 fixes the common hardware parameters (buffers, coalescing unit,
32 nm technology); Table 2 scales the unit per target GPU: pipeline
width 4 and megabyte-class hash tables for the GTX 980, width 1 and
~150 KB hashes for the TX1.  The area model reproduces the paper's
synthesis results: 13.27 mm2 (GTX980 variant) and 3.65 mm2 (TX1
variant), i.e. 3.3 % and 4.1 % of the respective die areas.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError


@dataclass(frozen=True)
class HashTableConfig:
    """Geometry of one reconfigurable in-memory hash table (Table 2)."""

    name: str
    capacity_bytes: int
    ways: int
    bytes_per_entry: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bytes_per_entry <= 0 or self.ways <= 0:
            raise ConfigError(f"hash table {self.name}: parameters must be positive")
        if self.capacity_bytes % self.bytes_per_entry:
            raise ConfigError(
                f"hash table {self.name}: capacity not a multiple of entry size"
            )

    @property
    def num_entries(self) -> int:
        return self.capacity_bytes // self.bytes_per_entry

    def describe(self) -> str:
        if self.capacity_bytes >= 1024 * 1024:
            size = f"{self.capacity_bytes / (1024 * 1024):.3g} MB"
        else:
            size = f"{self.capacity_bytes // 1024} KB"
        return f"{size}, {self.ways}-way, {self.bytes_per_entry} bytes/line"


@dataclass(frozen=True)
class ScuConfig:
    """Full SCU configuration for one target GPU."""

    name: str
    clock_hz: float  # matched to the host GPU (Section 5)
    pipeline_width: int  # elements processed per cycle (Table 2)
    # Table 1 buffers
    vector_buffer_bytes: int = 5 * 1024
    fifo_request_buffer_bytes: int = 38 * 1024
    hash_request_buffer_bytes: int = 18 * 1024
    coalescer_inflight: int = 32
    coalescer_merge_window: int = 4
    # Table 2 hash tables
    filter_bfs_hash: HashTableConfig = None
    filter_sssp_hash: HashTableConfig = None
    grouping_hash: HashTableConfig = None
    # grouping builds groups of at most this many elements (Section 4.3)
    group_size: int = 8
    # operation setup cost: configuring the Address Generator
    op_setup_s: float = 2e-7
    # -- energy coefficients (32 nm synthesis analog) --
    energy_per_element_pj: float = 3.0  # pipeline slot: addr gen + fetch + store
    energy_per_hash_probe_pj: float = 6.0  # hash lookup logic (table traffic is L2)
    energy_per_l2_access_pj: float = 120.0
    #: pipeline active power while an operation streams (width-4 scale;
    #: scaled by synthesized area like leakage)
    active_power_w: float = 0.9
    static_power_w: float = 0.25

    def __post_init__(self) -> None:
        if self.pipeline_width <= 0:
            raise ConfigError(f"{self.name}: pipeline width must be positive")
        if self.clock_hz <= 0:
            raise ConfigError(f"{self.name}: clock must be positive")
        if self.group_size <= 0:
            raise ConfigError(f"{self.name}: group size must be positive")

    @property
    def elements_per_second(self) -> float:
        return self.pipeline_width * self.clock_hz

    # -- area model -----------------------------------------------------------
    # Synthesis substitute: a fixed control/buffer base plus a per-lane
    # datapath term, calibrated to the paper's two synthesized points
    # (width 1 -> 3.65 mm2, width 4 -> 13.27 mm2 at 32 nm).

    AREA_BASE_MM2 = 0.4433
    AREA_PER_LANE_MM2 = 3.2067

    @property
    def area_mm2(self) -> float:
        return self.AREA_BASE_MM2 + self.AREA_PER_LANE_MM2 * self.pipeline_width

    def area_overhead_fraction(self, gpu_die_area_mm2: float) -> float:
        if gpu_die_area_mm2 <= 0:
            raise ConfigError("GPU die area must be positive")
        return self.area_mm2 / (gpu_die_area_mm2 + self.area_mm2)

    # -- table rendering --------------------------------------------------------

    def describe_table1(self) -> list[tuple[str, str]]:
        ghz = self.clock_hz / 1e9
        return [
            ("Technology, Frequency", f"32 nm, {ghz:g}GHz"),
            ("Vector Buffering", f"{self.vector_buffer_bytes // 1024} KB"),
            ("FIFO Requests Buffer", f"{self.fifo_request_buffer_bytes // 1024} KB"),
            ("Hash Request Buffer", f"{self.hash_request_buffer_bytes // 1024} KB"),
            (
                "Coalescing Unit",
                f"{self.coalescer_inflight} in-flight requests, "
                f"{self.coalescer_merge_window}-merge",
            ),
        ]

    def describe_table2(self) -> list[tuple[str, str]]:
        return [
            ("Pipeline Width", f"{self.pipeline_width} elements/cycle"),
            ("Filtering BFS Hash", self.filter_bfs_hash.describe()),
            ("Filtering SSSP Hash", self.filter_sssp_hash.describe()),
            ("Grouping SSSP Hash", self.grouping_hash.describe()),
        ]

    def with_pipeline_width(self, width: int) -> "ScuConfig":
        """Design-space variant with a different pipeline width."""
        return replace(self, pipeline_width=width)

    def with_hash_scale(self, factor: float) -> "ScuConfig":
        """Design-space variant scaling every hash table by ``factor``."""

        def scale(table: HashTableConfig) -> HashTableConfig:
            raw = int(table.capacity_bytes * factor)
            capacity = max(
                table.bytes_per_entry,
                (raw // table.bytes_per_entry) * table.bytes_per_entry,
            )
            return replace(table, capacity_bytes=capacity)

        return replace(
            self,
            filter_bfs_hash=scale(self.filter_bfs_hash),
            filter_sssp_hash=scale(self.filter_sssp_hash),
            grouping_hash=scale(self.grouping_hash),
        )


#: Table 2, GTX980 column.
SCU_GTX980 = ScuConfig(
    name="SCU-GTX980",
    clock_hz=1.27e9,
    pipeline_width=4,
    filter_bfs_hash=HashTableConfig("filter-bfs", 1024 * 1024, 16, 4),
    filter_sssp_hash=HashTableConfig("filter-sssp", 1536 * 1024, 16, 8),
    grouping_hash=HashTableConfig("grouping", 1228 * 1024, 16, 32),
)

#: Table 2, TX1 column.
SCU_TX1 = ScuConfig(
    name="SCU-TX1",
    clock_hz=1.0e9,
    pipeline_width=1,
    filter_bfs_hash=HashTableConfig("filter-bfs", 132 * 1024, 16, 4),
    filter_sssp_hash=HashTableConfig("filter-sssp", 192 * 1024, 16, 8),
    grouping_hash=HashTableConfig("grouping", 144 * 1024, 16, 32),
)

SCU_CONFIGS = {"GTX980": SCU_GTX980, "TX1": SCU_TX1}
