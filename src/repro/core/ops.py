"""Functional semantics of the five SCU compaction operations.

These are the operations of Figure 6 of the paper, implemented exactly
as the hardware performs them (sequential semantics, vectorized
execution).  The :class:`~repro.core.unit.StreamCompactionUnit` wraps
them with the cost model; this module is pure data transformation and is
independently property-tested.

Comparison operators for the Bitmask Constructor are the six integer
comparisons the hardware comparator implements.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..errors import OperationError

#: Comparison operators available to the Bitmask Constructor.
COMPARISONS: Mapping[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "eq": lambda data, ref: data == ref,
    "ne": lambda data, ref: data != ref,
    "lt": lambda data, ref: data < ref,
    "le": lambda data, ref: data <= ref,
    "gt": lambda data, ref: data > ref,
    "ge": lambda data, ref: data >= ref,
}


def _as_1d(values: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise OperationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def _check_mask(bitmask: np.ndarray, length: int, name: str = "bitmask") -> np.ndarray:
    mask = _as_1d(bitmask, name)
    if mask.dtype != np.bool_:
        raise OperationError(f"{name} must be boolean, got dtype {mask.dtype}")
    if mask.size != length:
        raise OperationError(f"{name} length {mask.size} != data length {length}")
    return mask


def bitmask_constructor(data: np.ndarray, comparison: str, reference: float) -> np.ndarray:
    """Generate a bitmask: True where ``data <comparison> reference`` holds."""
    arr = _as_1d(data, "data")
    if comparison not in COMPARISONS:
        known = ", ".join(COMPARISONS)
        raise OperationError(f"unknown comparison {comparison!r}; supported: {known}")
    return COMPARISONS[comparison](arr, reference)


def exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``, ``out[0] = 0``.

    The scatter-address generator of every compaction below.  Integer
    inputs scan in int64 so addresses never overflow or round.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise OperationError(f"values must be one-dimensional, got shape {arr.shape}")
    out = np.zeros(arr.size, dtype=np.int64)
    np.cumsum(arr[:-1], out=out[1:])
    return out


def compaction_addresses(bitmask: np.ndarray) -> np.ndarray:
    """Output address of each *kept* element: the exclusive scan of the mask.

    ``addresses[i]`` is only meaningful where ``bitmask[i]`` is set; the
    scatter ``out[addresses[mask]] = data[mask]`` is order-preserving
    because the scan is monotone over kept positions.
    """
    mask = _as_1d(bitmask, "bitmask")
    if mask.dtype != np.bool_:
        raise OperationError(f"bitmask must be boolean, got dtype {mask.dtype}")
    return exclusive_scan(mask.astype(np.int64))


def data_compaction(data: np.ndarray, bitmask: np.ndarray) -> np.ndarray:
    """Keep the elements whose bitmask bit is set, preserving order.

    Implemented in the hardware's explicit exclusive-scan + scatter form
    (Figure 6): the scan of the bitmask yields each kept element's output
    address, then a single scatter writes the compacted stream.
    """
    arr = _as_1d(data, "data")
    mask = _check_mask(bitmask, arr.size)
    addresses = compaction_addresses(mask)
    kept = int(np.count_nonzero(mask))
    out = np.empty(kept, dtype=arr.dtype)
    out[addresses[mask]] = arr[mask]
    return out


def access_compaction(
    data: np.ndarray, indexes: np.ndarray, bitmask: np.ndarray
) -> np.ndarray:
    """Gather ``data[indexes]`` for the index entries whose bit is set."""
    arr = _as_1d(data, "data")
    idx = _as_1d(indexes, "indexes").astype(np.int64)
    mask = _check_mask(bitmask, idx.size)
    # Scan + scatter over the index stream, then one gather through it.
    valid = data_compaction(idx, mask)
    if valid.size and (valid.min() < 0 or valid.max() >= arr.size):
        raise OperationError("index out of range in access compaction")
    return arr[valid]


def replication_compaction(
    data: np.ndarray, count: np.ndarray, bitmask: np.ndarray | None = None
) -> np.ndarray:
    """Replicate each valid element ``count[i]`` times, preserving order."""
    arr = _as_1d(data, "data")
    cnt = _as_1d(count, "count").astype(np.int64)
    if cnt.size != arr.size:
        raise OperationError(f"count length {cnt.size} != data length {arr.size}")
    if cnt.size and cnt.min() < 0:
        raise OperationError("replication counts must be non-negative")
    if bitmask is not None:
        mask = _check_mask(bitmask, arr.size)
        arr, cnt = arr[mask], cnt[mask]
    return np.repeat(arr, cnt)


def access_expansion_compaction(
    data: np.ndarray,
    indexes: np.ndarray,
    count: np.ndarray,
    bitmask: np.ndarray | None = None,
) -> np.ndarray:
    """Gather ``count[i]`` consecutive elements starting at ``indexes[i]``.

    This is the CSR adjacency gather: with ``indexes`` the adjacency
    offsets of frontier nodes and ``count`` their degrees, the output is
    the edge frontier.
    """
    arr = _as_1d(data, "data")
    idx = _as_1d(indexes, "indexes").astype(np.int64)
    cnt = _as_1d(count, "count").astype(np.int64)
    if idx.size != cnt.size:
        raise OperationError(f"indexes length {idx.size} != count length {cnt.size}")
    if cnt.size and cnt.min() < 0:
        raise OperationError("expansion counts must be non-negative")
    if bitmask is not None:
        mask = _check_mask(bitmask, idx.size)
        idx, cnt = idx[mask], cnt[mask]
    if idx.size == 0:
        return arr[:0]
    ends = idx + cnt
    if idx.min() < 0 or (cnt.size and ends.max() > arr.size):
        raise OperationError("expansion range out of bounds")
    return arr[expanded_indices(idx, cnt)]


def expanded_indices(indexes: np.ndarray, count: np.ndarray) -> np.ndarray:
    """Element indices an Access Expansion gathers (vectorized ragged range).

    For ``indexes=[5, 0]``, ``count=[2, 3]`` the result is
    ``[5, 6, 0, 1, 2]``.  Exposed separately because the cost model needs
    the gather's *addresses*, not just its values.
    """
    idx = np.asarray(indexes, dtype=np.int64)
    cnt = np.asarray(count, dtype=np.int64)
    total = int(cnt.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Standard ragged-range construction: exclusive-scan offsets + base.
    starts = exclusive_scan(cnt)
    flat = np.arange(total, dtype=np.int64)
    slot = np.repeat(np.arange(cnt.size, dtype=np.int64), cnt)
    return idx[slot] + (flat - starts[slot])
