"""Cycle-level simulation of the SCU pipeline (Figure 7).

The experiments use the analytic throughput model of
:mod:`repro.core.timing` (``elements / width`` cycles, memory-bounded).
This module provides the detailed counterpart the paper built in RTL: a
cycle-driven five-unit pipeline —

``Address Generator -> Data Fetch -> [memory] -> Bitmask Constructor /
Data Store``

— with finite queues sized from Table 1 (the 5 KB vector buffer in
front of the Address Generator, the 38 KB FIFO request buffer inside
Data Fetch) and a fixed memory service latency/bandwidth.  Tests
validate that the analytic model's operation times track this simulator
across pipeline-bound and memory-bound regimes, which is exactly the
role the authors' cycle-accurate simulator played for their results.

The simulation is intentionally structural: it does not recompute
values (the functional layer does that); it moves abstract element
tokens through stages and counts cycles and stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError, SimulationError
from .config import ScuConfig

#: Bytes of buffering one in-flight element consumes in each queue.
ELEMENT_BYTES = 4


@dataclass
class StageQueue:
    """A bounded FIFO between two pipeline stages (element counts)."""

    capacity: int
    occupancy: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError("queue capacity must be positive")

    @property
    def full(self) -> bool:
        return self.occupancy >= self.capacity

    @property
    def empty(self) -> bool:
        return self.occupancy == 0

    def push(self, count: int = 1) -> None:
        if self.occupancy + count > self.capacity:
            raise SimulationError("queue overflow")
        self.occupancy += count

    def pop(self, count: int = 1) -> None:
        if self.occupancy < count:
            raise SimulationError("queue underflow")
        self.occupancy -= count


@dataclass(frozen=True)
class CycleSimResult:
    """Outcome of streaming one operation through the pipeline."""

    elements: int
    cycles: int
    stall_cycles: int
    peak_fetch_queue: int

    @property
    def elements_per_cycle(self) -> float:
        return self.elements / self.cycles if self.cycles else 0.0

    @property
    def stall_fraction(self) -> float:
        return self.stall_cycles / self.cycles if self.cycles else 0.0


@dataclass
class ScuPipelineSim:
    """Cycle-driven model of the Figure 7 pipeline.

    Args:
        config: the SCU configuration (width, Table 1 buffer sizes).
        memory_latency_cycles: cycles between a fetch issuing and its
            data returning.
        memory_bandwidth_elems: elements of data the memory system can
            deliver per cycle (derived from DRAM bandwidth / clock in
            the validation tests).
    """

    config: ScuConfig
    memory_latency_cycles: int = 80
    memory_bandwidth_elems: float = 8.0
    _fetch_queue: StageQueue = field(init=False)
    _input_queue: StageQueue = field(init=False)

    def __post_init__(self) -> None:
        if self.memory_latency_cycles < 1:
            raise ConfigError("memory latency must be at least one cycle")
        if self.memory_bandwidth_elems <= 0:
            raise ConfigError("memory bandwidth must be positive")
        self._input_queue = StageQueue(
            capacity=max(1, self.config.vector_buffer_bytes // ELEMENT_BYTES)
        )
        self._fetch_queue = StageQueue(
            capacity=max(1, self.config.fifo_request_buffer_bytes // ELEMENT_BYTES)
        )

    def run(self, elements: int) -> CycleSimResult:
        """Stream ``elements`` through the pipeline; returns cycle counts."""
        if elements < 0:
            raise SimulationError("cannot stream a negative element count")
        if elements == 0:
            return CycleSimResult(0, 0, 0, 0)

        width = self.config.pipeline_width
        to_generate = elements  # waiting in the Address Generator
        in_flight: list[tuple[int, int]] = []  # (ready_cycle, count)
        returned = 0.0  # fractional element credit delivered by memory
        stored = 0  # elements retired by Data Store
        cycle = 0
        stalls = 0
        peak_fetch = 0

        while stored < elements:
            cycle += 1
            # 1. memory returns data for requests whose latency elapsed,
            #    at the configured bandwidth.
            deliverable = self.memory_bandwidth_elems
            while in_flight and in_flight[0][0] <= cycle and deliverable > 0:
                ready, count = in_flight[0]
                take = min(count, int(deliverable)) if deliverable >= 1 else 0
                if take == 0:
                    break
                deliverable -= take
                returned += take
                if take == count:
                    in_flight.pop(0)
                else:
                    in_flight[0] = (ready, count - take)

            # 2. Data Store retires up to `width` returned elements.  A
            #    cycle that cannot retire a full width is (partially)
            #    stalled on memory.
            wanted = min(width, elements - stored)
            retire = min(wanted, int(returned))
            if retire > 0:
                stored += retire
                returned -= retire
                self._fetch_queue.pop(retire)
            if retire < wanted:
                stalls += 1

            # 3. Address Generator issues up to `width` new requests if
            #    the fetch FIFO has room (back-pressure otherwise).
            issue = min(width, to_generate)
            room = self._fetch_queue.capacity - self._fetch_queue.occupancy
            issue = min(issue, room)
            if issue > 0:
                to_generate -= issue
                self._fetch_queue.push(issue)
                in_flight.append((cycle + self.memory_latency_cycles, issue))
            peak_fetch = max(peak_fetch, self._fetch_queue.occupancy)

            if cycle > 100 * self.memory_latency_cycles + 20 * elements:
                raise SimulationError("pipeline simulation failed to drain")

        return CycleSimResult(
            elements=elements,
            cycles=cycle,
            stall_cycles=stalls,
            peak_fetch_queue=peak_fetch,
        )

    def reset(self) -> None:
        self._fetch_queue.occupancy = 0
        self._input_queue.occupancy = 0
