"""Per-component SCU area and power breakdown (the synthesis report).

The paper synthesized the SCU in Verilog with Synopsys Design Compiler
at 32 nm / 0.78 V and used CACTI for the buffers, reporting only the
totals (13.27 mm2 for the width-4 GTX980 variant, 3.65 mm2 for the
width-1 TX1 variant).  This module decomposes those totals into the
Figure 7 components with a simple, documented cost model:

* SRAM buffers cost a fixed area per KB (CACTI-like 32 nm figure);
* each datapath lane (Address Generator slice, Data Fetch slice,
  Bitmask Constructor comparator, Data Store slice) costs a fixed area,
  replicated ``pipeline_width`` times;
* the coalescing units cost per in-flight entry.

The decomposition is *calibrated*: component constants are chosen so
the totals reproduce the paper's two synthesis points exactly (the same
two-point fit as :class:`~repro.core.config.ScuConfig`'s headline area
model, which tests cross-check).  Power follows the same decomposition
scaled to the configured active/static totals.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import ScuConfig
from .energy import scu_static_power_w

#: CACTI-like 32 nm SRAM density for small buffers (mm2 per KB).
SRAM_MM2_PER_KB = 0.005
#: One coalescing-unit entry (CAM match + merge bookkeeping).
COALESCER_MM2_PER_ENTRY = 0.0015


@dataclass(frozen=True)
class ComponentArea:
    """One row of the synthesis report."""

    component: str
    area_mm2: float
    per_lane: bool

    def scaled(self, width: int) -> float:
        return self.area_mm2 * (width if self.per_lane else 1)


def _buffer_area_mm2(config: ScuConfig) -> float:
    total_kb = (
        config.vector_buffer_bytes
        + config.fifo_request_buffer_bytes
        + config.hash_request_buffer_bytes
    ) / 1024
    return total_kb * SRAM_MM2_PER_KB


def _coalescer_area_mm2(config: ScuConfig) -> float:
    # Two coalescing units in the enhanced design (Figure 8).
    return 2 * config.coalescer_inflight * COALESCER_MM2_PER_ENTRY


def area_breakdown(config: ScuConfig) -> list[ComponentArea]:
    """Decompose the configuration's area into Figure 7/8 components.

    The lane datapath absorbs whatever the fixed parts (buffers,
    coalescers, control) leave of the calibrated per-lane budget, so
    the sum reproduces ``config.area_mm2`` exactly.
    """
    buffers = _buffer_area_mm2(config)
    coalescers = _coalescer_area_mm2(config)
    control = config.AREA_BASE_MM2 - buffers - coalescers
    # Fixed overheads are part of the width-independent base; the
    # calibrated per-lane term is split across the four datapath units.
    lane_total = config.AREA_PER_LANE_MM2
    shares = {
        "address generator": 0.20,
        "data fetch": 0.30,
        "bitmask constructor": 0.15,
        "data store": 0.35,
    }
    rows = [
        ComponentArea("buffers (Table 1 SRAM)", buffers, per_lane=False),
        ComponentArea("coalescing units", coalescers, per_lane=False),
        ComponentArea("control / misc", control, per_lane=False),
    ]
    rows.extend(
        ComponentArea(f"{name} (per lane)", lane_total * share, per_lane=True)
        for name, share in shares.items()
    )
    return rows


def total_area_mm2(config: ScuConfig) -> float:
    """Sum of the breakdown; equals ``config.area_mm2`` by construction."""
    return sum(row.scaled(config.pipeline_width) for row in area_breakdown(config))


def power_breakdown_w(config: ScuConfig) -> list[tuple[str, float]]:
    """Static (leakage) power decomposed proportionally to area."""
    total_static = scu_static_power_w(config)
    total = total_area_mm2(config)
    return [
        (row.component, total_static * row.scaled(config.pipeline_width) / total)
        for row in area_breakdown(config)
    ]


def render_synthesis_report(config: ScuConfig) -> str:
    """A human-readable synthesis-style report for one configuration."""
    lines = [
        f"SCU synthesis report — {config.name} "
        f"(32 nm, width {config.pipeline_width})",
        f"  {'component':28s} {'area (mm2)':>11s} {'leakage (mW)':>13s}",
    ]
    powers = dict(power_breakdown_w(config))
    for row in area_breakdown(config):
        area = row.scaled(config.pipeline_width)
        lines.append(
            f"  {row.component:28s} {area:11.3f} {powers[row.component] * 1e3:13.2f}"
        )
    lines.append(
        f"  {'TOTAL':28s} {total_area_mm2(config):11.2f} "
        f"{scu_static_power_w(config) * 1e3:13.2f}"
    )
    return "\n".join(lines)
