"""Structural model of the SCU hardware pipeline (Figure 7).

The pipeline's five functional units are:

* **Address Generator** — configured per operation; walks the input
  vectors (data / bitmask / indexes / count) in order;
* **Data Fetch** — issues the read requests the Address Generator
  produced, in FIFO order;
* **Coalescing Unit** — merges reads to the same sector within a small
  window (Table 1: 32 in-flight, 4-merge);
* **Bitmask Constructor** — the comparator datapath;
* **Data Store** — writes results to consecutive addresses, with its own
  trivial write coalescing.

For the cost model the pipeline is a throughput machine: it moves
``pipeline_width`` elements per cycle when memory keeps up.  What this
module contributes is the *memory traffic shape* of each operation —
which vectors are walked sequentially, which are gathered sparsely —
expressed as address streams the shared memory hierarchy then prices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mem.address_space import DeviceArray
from ..mem.coalescer import CoalesceResult, coalesce_stream, coalesce_warp
from ..mem.hierarchy import MemoryHierarchy, MemoryStats
from ..obs import NULL_OBS, Observability
from .config import ScuConfig


@dataclass(frozen=True)
class ScuStream:
    """One address stream an SCU operation issues."""

    role: str  # "data", "bitmask", "indexes", "count", "hash", "output"
    addresses: np.ndarray
    is_write: bool = False
    #: hash-table traffic is random by construction; everything else the
    #: SCU touches is either sequential or a gather the coalescer sees.
    random_access: bool = False


def coalesce_scu_stream(stream: ScuStream, config: ScuConfig) -> CoalesceResult:
    """Run one stream through the SCU coalescing unit.

    The merge window of Table 1 counts pending *requests*; the Data
    Fetch unit issues 8-byte beats, so with 4-byte stream elements one
    window position covers two elements — an effective window of
    ``2 x merge_window`` elements.  A sequential walk therefore merges
    into exactly one transaction per 32-byte sector, which is what the
    Address Generator's stride knowledge achieves in the hardware.
    Hash-table probes are scattered and almost never merge; they go
    through the same window and pay full price.
    """
    window = 1 if stream.random_access else 2 * config.coalescer_merge_window
    return coalesce_stream(stream.addresses, merge_window=window)


def streams_memory_stats(
    streams: list[ScuStream],
    config: ScuConfig,
    hierarchy: MemoryHierarchy,
    *,
    obs: Observability = NULL_OBS,
) -> tuple[MemoryStats, float]:
    """Coalesce and price every stream of one operation.

    Returns the merged statistics plus the serialized-drain DRAM time
    (per-stream sum — the same interleaving argument as the GPU device:
    random hash probes break the sequential walks' row locality).
    ``obs`` records each stream's coalescing behaviour by role, which is
    how hash-probe scatter shows up next to sequential walks.
    """
    total = MemoryStats()
    dram_s = 0.0
    for stream in streams:
        result = coalesce_scu_stream(stream, config)
        stats = hierarchy.process(result)
        dram_s += hierarchy.dram_time_s(stats)
        total = total.merged(stats)
        if obs.enabled and stats.transactions:
            metrics = obs.metrics
            metrics.counter("scu.stream.transactions").inc(
                stats.transactions, role=stream.role
            )
            metrics.histogram("scu.stream.coalesce_factor").observe(
                stats.coalescing_factor, role=stream.role
            )
    return total, dram_s


# -- stream builders, one vocabulary shared by all operations ---------------


def sequential_read(array: DeviceArray, role: str = "data") -> ScuStream:
    return ScuStream(role=role, addresses=array.addresses())


def bitmask_read(mask_array: DeviceArray) -> ScuStream:
    """The packed bitmask walk: one 4-byte word per 32 elements."""
    return ScuStream(role="bitmask", addresses=mask_array.addresses())


def gather_read(array: DeviceArray, indices: np.ndarray, role: str = "data") -> ScuStream:
    return ScuStream(role=role, addresses=array.addresses(indices))


def sequential_write(base_addresses: np.ndarray) -> ScuStream:
    return ScuStream(role="output", addresses=base_addresses, is_write=True)


def hash_probe(addresses: np.ndarray) -> ScuStream:
    return ScuStream(role="hash", addresses=addresses, random_access=True)
