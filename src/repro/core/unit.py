"""The Stream Compaction Unit — functional behaviour plus cost model.

``StreamCompactionUnit`` is the paper's contribution as an executable
object.  Every method:

1. computes the operation's *result* with the exact functional
   semantics of :mod:`repro.core.ops` (or the hash-table algorithms of
   :mod:`repro.core.filtering` / :mod:`repro.core.grouping`);
2. constructs the operation's *address streams* (which vectors were
   walked, which were gathered) via :mod:`repro.core.pipeline`;
3. prices them with the shared memory hierarchy and the SCU timing and
   energy models, returning the result together with a
   :class:`~repro.phases.PhaseReport`.

The enhanced SCU's two-step filtering/grouping protocol (Section 4.1)
maps onto: a ``*_pass`` method that produces the bitmask / reorder
vector (step one), and a compaction method taking ``bitmask=`` /
``reorder=`` operands (step two).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np

from ..errors import OperationError
from ..mem.address_space import DeviceArray, DeviceContext
from ..mem.coalescer import LINE_BYTES
from ..mem.hierarchy import MemoryHierarchy, MemoryStats
from ..obs import NULL_OBS, Observability
from ..phases import Engine, PhaseKind, PhaseReport
from . import ops
from .config import HashTableConfig, ScuConfig
from .energy import scu_op_dynamic_energy_j
from .filtering import filter_best_cost, filter_unique
from .grouping import group_order
from .hashtable import hash_slots, table_addresses
from .pipeline import (
    ScuStream,
    bitmask_read,
    gather_read,
    hash_probe,
    sequential_read,
    sequential_write,
    streams_memory_stats,
)
from .timing import scu_op_timing


def _traced(method):
    """Wrap an SCU operation in a tracer span named after it."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        tracer = self.obs.tracer
        if not tracer.enabled:
            return method(self, *args, **kwargs)
        with tracer.span(f"scu.{method.__name__}", "scu"):
            return method(self, *args, **kwargs)

    return wrapper


@dataclass
class StreamCompactionUnit:
    """One SCU instance attached to a GPU's memory hierarchy."""

    config: ScuConfig
    hierarchy: MemoryHierarchy
    ctx: DeviceContext
    l2_bandwidth_bps: float
    obs: Observability = NULL_OBS
    #: hash tables live in main memory; give each a stable base address.
    _hash_bases: dict = field(default_factory=dict)

    # -- internals -------------------------------------------------------------

    def _hash_base(self, table: HashTableConfig) -> int:
        if table.name not in self._hash_bases:
            alloc = self.ctx.space.alloc(
                f"scu.hash.{table.name}", table.num_entries, table.bytes_per_entry
            )
            self._hash_bases[table.name] = alloc.base
        return self._hash_bases[table.name]

    def _report(
        self,
        name: str,
        *,
        elements: int,
        streams: list[ScuStream],
        hash_probes: int = 0,
    ) -> PhaseReport:
        memory, dram_s = streams_memory_stats(
            streams, self.config, self.hierarchy, obs=self.obs
        )
        timing = scu_op_timing(
            self.config,
            self.hierarchy,
            elements=elements,
            memory=memory,
            l2_bandwidth_bps=self.l2_bandwidth_bps,
            dram_s_override=dram_s,
        )
        energy = scu_op_dynamic_energy_j(
            self.config,
            self.hierarchy,
            elements=elements,
            memory=memory,
            hash_probes=hash_probes,
            busy_time_s=timing.total_s,
        )
        if self.obs.enabled:
            op = name.split("(", 1)[0]
            metrics = self.obs.metrics
            metrics.counter("scu.op.count").inc(op=op)
            metrics.counter("scu.op.elements").inc(elements, op=op)
            metrics.counter("scu.op.sim_time_s").inc(timing.total_s, op=op)
            metrics.counter("scu.op.bottleneck").inc(term=timing.bottleneck)
            if hash_probes:
                metrics.counter("scu.hash.probes").inc(hash_probes)
            self.obs.tracer.instant(
                "scu.phase",
                "scu",
                phase=name,
                elements=elements,
                sim_time_s=timing.total_s,
                sim_energy_j=energy,
                bottleneck=timing.bottleneck,
                dram_bytes=memory.dram_bytes,
            )
        return PhaseReport(
            name=name,
            engine=Engine.SCU,
            kind=PhaseKind.COMPACTION,
            elements=elements,
            instructions=elements,  # one pipeline slot per element
            time_s=timing.total_s,
            dynamic_energy_j=energy,
            memory=memory,
        )

    def _output(self, name: str, values: np.ndarray, elem_bytes: int = 4) -> DeviceArray:
        return self.ctx.array(name, values, elem_bytes=elem_bytes)

    @staticmethod
    def _apply_reorder(values: np.ndarray, reorder: DeviceArray | None) -> np.ndarray:
        if reorder is None:
            return values
        perm = np.asarray(reorder.values, dtype=np.int64)
        if perm.size != values.size:
            raise OperationError(
                f"reorder vector length {perm.size} != compacted length {values.size}"
            )
        return values[perm]

    def _reorder_streams(
        self, reorder: DeviceArray | None
    ) -> list[ScuStream]:
        if reorder is None:
            return []
        return [sequential_read(reorder, role="indexes")]

    # -- the five operations (Figure 6) -----------------------------------------

    @_traced
    def bitmask_constructor(
        self,
        data: DeviceArray,
        comparison: str,
        reference: float,
        *,
        out: str = "bitmask",
    ) -> tuple[DeviceArray, PhaseReport]:
        """Compare every element against ``reference``; emit a bitmask."""
        mask = ops.bitmask_constructor(data.values, comparison, reference)
        out_array = self.ctx.bitmask(out, mask)
        streams = [
            sequential_read(data),
            sequential_write(out_array.addresses()),
        ]
        report = self._report(
            f"scu.bitmask({data.name})", elements=data.size, streams=streams
        )
        return out_array, report

    @_traced
    def data_compaction(
        self,
        data: DeviceArray,
        bitmask: DeviceArray,
        *,
        out: str = "compacted",
        reorder: DeviceArray | None = None,
    ) -> tuple[DeviceArray, PhaseReport]:
        """Figure 6 Data Compaction, optionally applying a grouping order."""
        compacted = ops.data_compaction(data.values, bitmask.values)
        compacted = self._apply_reorder(compacted, reorder)
        out_array = self._output(out, compacted)
        streams = [
            sequential_read(data),
            bitmask_read(bitmask),
            *self._reorder_streams(reorder),
            sequential_write(out_array.addresses()),
        ]
        report = self._report(
            f"scu.data_compaction({data.name})", elements=data.size, streams=streams
        )
        return out_array, report

    @_traced
    def access_compaction(
        self,
        data: DeviceArray,
        indexes: DeviceArray,
        bitmask: DeviceArray,
        *,
        out: str = "compacted",
    ) -> tuple[DeviceArray, PhaseReport]:
        """Figure 6 Access Compaction: filtered gather through an index vector."""
        gathered = ops.access_compaction(data.values, indexes.values, bitmask.values)
        out_array = self._output(out, gathered)
        valid_indices = np.asarray(indexes.values, dtype=np.int64)[bitmask.values]
        streams = [
            sequential_read(indexes, role="indexes"),
            bitmask_read(bitmask),
            gather_read(data, valid_indices),
            sequential_write(out_array.addresses()),
        ]
        report = self._report(
            f"scu.access_compaction({data.name})",
            elements=indexes.size,
            streams=streams,
        )
        return out_array, report

    @_traced
    def replication_compaction(
        self,
        data: DeviceArray,
        count: DeviceArray,
        bitmask: DeviceArray | None = None,
        *,
        out: str = "replicated",
    ) -> tuple[DeviceArray, PhaseReport]:
        """Figure 6 Replication Compaction: replicate each element count[i] times."""
        mask_values = None if bitmask is None else bitmask.values
        replicated = ops.replication_compaction(data.values, count.values, mask_values)
        out_array = self._output(out, replicated)
        streams = [
            sequential_read(data),
            sequential_read(count, role="count"),
            *([] if bitmask is None else [bitmask_read(bitmask)]),
            sequential_write(out_array.addresses()),
        ]
        # The pipeline occupies a slot per *output* element while replaying.
        elements = max(data.size, out_array.size)
        report = self._report(
            f"scu.replication({data.name})", elements=elements, streams=streams
        )
        return out_array, report

    @_traced
    def access_expansion_compaction(
        self,
        data: DeviceArray,
        indexes: DeviceArray,
        count: DeviceArray,
        bitmask: DeviceArray | None = None,
        *,
        out: str = "expanded",
        element_bitmask: DeviceArray | None = None,
        reorder: DeviceArray | None = None,
    ) -> tuple[DeviceArray, PhaseReport]:
        """Figure 6 Access Expansion Compaction: ranged gather (CSR expansion).

        ``bitmask`` filters *index entries* (whole nodes); in the
        enhanced two-step protocol ``element_bitmask`` filters the
        *expanded stream* element-wise using the vector a prior
        filtering pass produced, and ``reorder`` applies a grouping
        order.  The Address Generator skips filtered elements, so only
        surviving elements are fetched.
        """
        mask_values = None if bitmask is None else bitmask.values
        expanded = ops.access_expansion_compaction(
            data.values, indexes.values, count.values, mask_values
        )
        idx = np.asarray(indexes.values, dtype=np.int64)
        cnt = np.asarray(count.values, dtype=np.int64)
        if mask_values is not None:
            idx, cnt = idx[mask_values], cnt[mask_values]
        gather_indices = ops.expanded_indices(idx, cnt)
        if element_bitmask is not None:
            element_mask = np.asarray(element_bitmask.values, dtype=bool)
            if element_mask.size != expanded.size:
                raise OperationError(
                    f"element bitmask length {element_mask.size} != "
                    f"expanded length {expanded.size}"
                )
            expanded = expanded[element_mask]
            gather_indices = gather_indices[element_mask]
        expanded = self._apply_reorder(expanded, reorder)
        out_array = self._output(out, expanded)
        streams = [
            sequential_read(indexes, role="indexes"),
            sequential_read(count, role="count"),
            *([] if bitmask is None else [bitmask_read(bitmask)]),
            *([] if element_bitmask is None else [bitmask_read(element_bitmask)]),
            *self._reorder_streams(reorder),
            gather_read(data, gather_indices),
            sequential_write(out_array.addresses()),
        ]
        # Pipeline occupancy: with an element bitmask the unit still
        # streams (and mask-checks) every input element; only the fetch
        # and the write shrink.  Without one, occupancy follows the
        # expanded output.
        elements = (
            element_bitmask.values.size
            if element_bitmask is not None
            else out_array.size
        )
        report = self._report(
            f"scu.expansion({data.name})", elements=elements, streams=streams
        )
        return out_array, report

    # -- enhanced SCU: filtering and grouping passes (Section 4) ---------------

    @_traced
    def filter_unique_pass(
        self,
        ids: DeviceArray,
        *,
        out: str = "filter_mask",
        input_streams: list[ScuStream] | None = None,
    ) -> tuple[DeviceArray, PhaseReport]:
        """Step one of filtering for BFS: build the keep bitmask.

        ``input_streams`` overrides how the id stream reaches the unit —
        the expansion-time filtering pass of Algorithm 4 re-runs the
        ranged gather rather than reading a materialized array.
        """
        table = self.config.filter_bfs_hash
        keep = filter_unique(
            np.asarray(ids.values, dtype=np.int64), table, obs=self.obs
        )
        out_array = self.ctx.bitmask(out, keep)
        slots = hash_slots(np.asarray(ids.values, dtype=np.int64), table.num_entries)
        streams = [
            *(input_streams if input_streams is not None else [sequential_read(ids)]),
            hash_probe(
                table_addresses(
                    slots, base=self._hash_base(table), bytes_per_entry=table.bytes_per_entry
                )
            ),
            sequential_write(out_array.addresses()),
        ]
        report = self._report(
            f"scu.filter_unique({ids.name})",
            elements=ids.size,
            streams=streams,
            hash_probes=ids.size,
        )
        return out_array, report

    @_traced
    def filter_best_cost_pass(
        self,
        ids: DeviceArray,
        costs: DeviceArray,
        *,
        out: str = "filter_mask",
        input_streams: list[ScuStream] | None = None,
    ) -> tuple[DeviceArray, PhaseReport]:
        """Step one of filtering for SSSP: unique-best-cost bitmask."""
        table = self.config.filter_sssp_hash
        keep = filter_best_cost(
            np.asarray(ids.values, dtype=np.int64),
            np.asarray(costs.values, dtype=np.float64),
            table,
            obs=self.obs,
        )
        out_array = self.ctx.bitmask(out, keep)
        slots = hash_slots(np.asarray(ids.values, dtype=np.int64), table.num_entries)
        default_streams = [
            sequential_read(ids),
            sequential_read(costs, role="count"),
        ]
        streams = [
            *(input_streams if input_streams is not None else default_streams),
            hash_probe(
                table_addresses(
                    slots, base=self._hash_base(table), bytes_per_entry=table.bytes_per_entry
                )
            ),
            sequential_write(out_array.addresses()),
        ]
        report = self._report(
            f"scu.filter_best_cost({ids.name})",
            elements=ids.size,
            streams=streams,
            hash_probes=ids.size,
        )
        return out_array, report

    @_traced
    def grouping_pass(
        self,
        destinations: DeviceArray,
        *,
        node_data_base: int = 0,
        elem_bytes: int = 4,
        out: str = "group_order",
        input_streams: list[ScuStream] | None = None,
    ) -> tuple[DeviceArray, PhaseReport]:
        """Step one of grouping: reorder vector clustering same-line destinations.

        ``destinations`` holds the destination *node ids* of the stream's
        edges; the memory block of an edge is the cache line its node's
        data occupies.
        """
        table = self.config.grouping_hash
        dest_ids = np.asarray(destinations.values, dtype=np.int64)
        blocks = (node_data_base + dest_ids * elem_bytes) // LINE_BYTES
        perm = group_order(
            blocks, table, group_size=self.config.group_size, obs=self.obs
        )
        out_array = self._output(out, perm)
        slots = hash_slots(blocks, table.num_entries)
        streams = [
            *(
                input_streams
                if input_streams is not None
                else [sequential_read(destinations)]
            ),
            hash_probe(
                table_addresses(
                    slots, base=self._hash_base(table), bytes_per_entry=table.bytes_per_entry
                )
            ),
            sequential_write(out_array.addresses()),
        ]
        report = self._report(
            f"scu.grouping({destinations.name})",
            elements=destinations.size,
            streams=streams,
            hash_probes=destinations.size,
        )
        return out_array, report
