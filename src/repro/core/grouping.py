"""Cache-line grouping with the in-memory hash table (Section 4.3).

Grouping reorders the compacted stream so that edges whose *destination
nodes* live in the same cache line end up adjacent in the output array;
the GPU threads that later process consecutive elements then coalesce
their accesses.  The hardware:

* hashes each element's destination memory block to a table entry;
* appends the element when the entry already collects that block;
* on a block conflict, *evicts* the old group — its elements are written
  out together at that point — and starts collecting the new block;
* bounds groups to ``group_size`` (8) elements: a full group is flushed
  and a fresh one started;
* on stream end, flushes surviving groups in table order.

The result is not a full sort (the paper is explicit about this): it is
a best-effort clustering whose quality degrades gracefully with table
pressure.  As with filtering, a sequential dict-based reference and a
vectorized implementation are provided and property-tested against each
other; both produce the *exact* output order of the hardware algorithm.
"""

from __future__ import annotations

import numpy as np

from ..errors import OperationError
from ..obs import NULL_OBS, Observability
from .config import HashTableConfig
from .hashtable import hash_slots


def group_order(
    blocks: np.ndarray,
    table: HashTableConfig,
    *,
    group_size: int = 8,
    obs: Observability = NULL_OBS,
) -> np.ndarray:
    """Compute the grouped output order (vectorized).

    Args:
        blocks: destination memory-block id of each stream element.
        table: grouping hash-table geometry.
        group_size: maximum elements per group (Section 4.3 uses 8).

    Returns:
        Permutation ``perm`` such that ``output[k] = input[perm[k]]``.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    if blocks.ndim != 1:
        raise OperationError("blocks must be one-dimensional")
    if group_size <= 0:
        raise OperationError(f"group_size must be positive, got {group_size}")
    n = blocks.size
    if n == 0:
        return np.empty(0, dtype=np.int64)

    slots = hash_slots(blocks, table.num_entries)
    order = np.argsort(slots, kind="stable")
    slots_sorted = slots[order]
    blocks_sorted = blocks[order]

    indices = np.arange(n, dtype=np.int64)
    new_slot = np.ones(n, dtype=bool)
    new_slot[1:] = slots_sorted[1:] != slots_sorted[:-1]
    new_block = new_slot.copy()
    new_block[1:] |= blocks_sorted[1:] != blocks_sorted[:-1]

    # Position within the current same-block run; every group_size-th
    # element starts a fresh group (full-group flush).
    run_start_index = np.maximum.accumulate(np.where(new_block, indices, 0))
    position_in_run = indices - run_start_index
    group_boundary = new_block | (position_in_run % group_size == 0)
    group_id = np.cumsum(group_boundary) - 1

    first_of_group = np.nonzero(group_boundary)[0]
    next_first = np.append(first_of_group[1:], n)
    # A group is evicted when the next group in the table walk shares its
    # slot (conflict or full-group flush) -- at the *stream time* of that
    # group's first element.  Survivors flush at the end, in slot order.
    has_successor = next_first < n
    same_slot = np.zeros(first_of_group.size, dtype=bool)
    same_slot[has_successor] = (
        slots_sorted[next_first[has_successor]] == slots_sorted[first_of_group[has_successor]]
    )
    eviction_key = np.where(
        same_slot,
        order[np.minimum(next_first, n - 1)],
        n + slots_sorted[first_of_group],
    )

    # Eviction keys are distinct (stream positions for evicted groups,
    # n + slot for the one survivor per slot) and elements of a group are
    # a contiguous run of the slot-sorted array already in stream order,
    # so sorting the *groups* and gathering their ragged segments is
    # equivalent to a full lexsort over all n elements.
    group_rank = np.argsort(eviction_key, kind="stable")
    sizes = next_first - first_of_group
    sorted_sizes = sizes[group_rank]
    segment_id = np.repeat(np.arange(group_rank.size, dtype=np.int64), sorted_sizes)
    out_start = np.cumsum(sorted_sizes) - sorted_sizes
    within = indices - out_start[segment_id]
    perm = order[first_of_group[group_rank][segment_id] + within]
    if obs.enabled:
        sizes = np.diff(np.append(first_of_group, n))
        obs.metrics.histogram("scu.group.size").observe_many(sizes, table=table.name)
        obs.metrics.histogram("scu.group.quality").observe(
            grouping_quality(blocks, perm), table=table.name
        )
        obs.metrics.histogram("scu.hash.occupancy").observe(
            np.unique(slots).size / table.num_entries, table=table.name
        )
    return perm


def group_order_reference(
    blocks: np.ndarray, table: HashTableConfig, *, group_size: int = 8
) -> np.ndarray:
    """Sequential dict-based reference of :func:`group_order`."""
    blocks = np.asarray(blocks, dtype=np.int64)
    slots = hash_slots(blocks, table.num_entries)
    # slot -> (block id, [element indices])
    entries: dict[int, tuple[int, list[int]]] = {}
    output: list[int] = []
    for i, (slot, block) in enumerate(zip(slots.tolist(), blocks.tolist())):
        held = entries.get(slot)
        if held is not None and held[0] == block and len(held[1]) < group_size:
            held[1].append(i)
            continue
        if held is not None:
            output.extend(held[1])  # evict (conflict or full group)
        entries[slot] = (block, [i])
    for slot in sorted(entries):
        output.extend(entries[slot][1])
    return np.asarray(output, dtype=np.int64)


def grouping_quality(blocks: np.ndarray, perm: np.ndarray, *, window: int = 32) -> float:
    """Fraction of adjacent output pairs (within warps) sharing a block.

    A cheap scalar diagnostic of how much locality the grouping created;
    the real evaluation runs the reordered stream through the warp
    coalescer (Figure 12).
    """
    if perm.size < 2:
        return 0.0
    reordered = np.asarray(blocks, dtype=np.int64)[perm]
    same = reordered[1:] == reordered[:-1]
    # Ignore pairs straddling a warp boundary; they never coalesce anyway.
    not_boundary = (np.arange(1, perm.size) % window) != 0
    considered = same[not_boundary]
    if considered.size == 0:
        return 0.0
    return float(considered.mean())
