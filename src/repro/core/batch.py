"""Batched (leading batch axis) forms of the SCU compaction kernels.

A *batch* is a ragged stack of per-request streams stored as one
concatenated ``values`` array plus an int64 ``offsets`` array of length
``B + 1`` (row ``r`` is ``values[offsets[r]:offsets[r + 1]]``).  Every
kernel here processes all rows in **one** NumPy pass — one argsort, one
scan, one scatter for the whole batch — and is pinned byte-identical,
row by row, to the scalar kernels in :mod:`repro.core.filtering`,
:mod:`repro.core.grouping`, and :mod:`repro.core.ops`.

The fusion trick is the composite sort key ``row * K + local_key`` with
``K`` an upper bound on the local key: a single stable argsort over the
composite key yields, inside each row, exactly the stable slot-sort the
scalar kernels perform, while keeping rows contiguous.  Row boundaries
always coincide with composite-key changes, so the run-boundary logic
(``new_slot`` / ``segment_start`` / ``new_block``) needs no extra
boundary handling.

One deliberate divergence: the scalar best-cost filter offsets float
costs by per-call multiples of a float span, a round-trip that is only
exact for "tame" costs (the integer-valued distances the drivers
produce).  Exactness here must not depend on batch composition — the
same request has to produce the same bits whether it is batched with 0
or 31 neighbours — so the batched filter compares *integer ranks* of
the costs (``np.unique`` inverse indices): strict ``<`` on ranks is
strict ``<`` on costs, and the segment-offset arithmetic stays in exact
int64.  This is precisely the dict reference's semantics.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import OperationError
from .config import HashTableConfig
from .hashtable import hash_slots
from .ops import exclusive_scan

__all__ = [
    "batch_offsets",
    "concat_batch",
    "split_batch",
    "data_compaction_batch",
    "filter_unique_batch",
    "filter_best_cost_batch",
    "group_order_batch",
]


def batch_offsets(sizes: Sequence[int]) -> np.ndarray:
    """Offsets array (length ``B + 1``) for rows of the given sizes."""
    cnt = np.asarray(sizes, dtype=np.int64)
    if cnt.ndim != 1:
        raise OperationError(f"sizes must be one-dimensional, got shape {cnt.shape}")
    if cnt.size and cnt.min() < 0:
        raise OperationError("batch row sizes must be non-negative")
    out = np.zeros(cnt.size + 1, dtype=np.int64)
    np.cumsum(cnt, out=out[1:])
    return out


def concat_batch(rows: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Stack per-request streams into the ``(values, offsets)`` ragged form."""
    arrays = [np.asarray(row) for row in rows]
    for row in arrays:
        if row.ndim != 1:
            raise OperationError("every batch row must be one-dimensional")
    offsets = batch_offsets([row.size for row in arrays])
    if not arrays:
        return np.empty(0, dtype=np.int64), offsets
    return np.concatenate(arrays) if len(arrays) > 1 else arrays[0].copy(), offsets


def split_batch(values: np.ndarray, offsets: np.ndarray) -> List[np.ndarray]:
    """Split a batched result back into per-request arrays (views)."""
    values, offsets = _check_batch(values, offsets)
    return [values[offsets[r] : offsets[r + 1]] for r in range(offsets.size - 1)]


def _check_batch(values: np.ndarray, offsets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    if values.ndim != 1:
        raise OperationError(f"batch values must be one-dimensional, got {values.shape}")
    if offsets.ndim != 1 or offsets.size < 1:
        raise OperationError("offsets must be a one-dimensional array of length B + 1")
    if offsets[0] != 0 or offsets[-1] != values.size:
        raise OperationError(
            f"offsets must span the values array: got [{offsets[0]}, {offsets[-1]}] "
            f"for {values.size} values"
        )
    if offsets.size > 1 and np.any(np.diff(offsets) < 0):
        raise OperationError("offsets must be non-decreasing")
    return values, offsets


def _row_ids(offsets: np.ndarray) -> np.ndarray:
    """Row id of each element: ``repeat(arange(B), sizes)``."""
    sizes = np.diff(offsets)
    return np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)


def data_compaction_batch(
    values: np.ndarray, offsets: np.ndarray, bitmask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched scan + scatter compaction; returns ``(out, out_offsets)``.

    Rows are contiguous, so one *global* exclusive scan of the bitmask
    already yields row-major output addresses; each output row equals
    the scalar :func:`~repro.core.ops.data_compaction` of its input row.
    """
    values, offsets = _check_batch(values, offsets)
    mask = np.asarray(bitmask)
    if mask.shape != values.shape or mask.dtype != np.bool_:
        raise OperationError("bitmask must be a boolean array parallel to values")
    addresses = exclusive_scan(mask.astype(np.int64))
    out = np.empty(int(np.count_nonzero(mask)), dtype=values.dtype)
    out[addresses[mask]] = values[mask]
    num_rows = offsets.size - 1
    kept_per_row = np.bincount(_row_ids(offsets)[mask], minlength=num_rows)
    out_offsets = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(kept_per_row, out=out_offsets[1:])
    return out, out_offsets


def filter_unique_batch(
    ids: np.ndarray, offsets: np.ndarray, table: HashTableConfig
) -> np.ndarray:
    """Batched unique-element filtering; one keep bitmask over all rows.

    Row ``r`` of the result is byte-identical to
    ``filter_unique(ids[offsets[r]:offsets[r+1]], table)``.
    """
    ids, offsets = _check_batch(np.asarray(ids, dtype=np.int64), offsets)
    if ids.size == 0:
        return np.zeros(0, dtype=bool)
    entries = np.int64(table.num_entries)
    slots = hash_slots(ids, table.num_entries)
    key = _row_ids(offsets) * entries + slots
    order = np.argsort(key, kind="stable")
    key_sorted = key[order]
    ids_sorted = ids[order]
    # A row boundary always changes the composite key, so new_slot is
    # forced True there and rows cannot contaminate each other.
    new_slot = np.ones(ids.size, dtype=bool)
    new_slot[1:] = key_sorted[1:] != key_sorted[:-1]
    same_as_prev = np.zeros(ids.size, dtype=bool)
    same_as_prev[1:] = ids_sorted[1:] == ids_sorted[:-1]
    keep_sorted = new_slot | ~same_as_prev
    keep = np.empty(ids.size, dtype=bool)
    keep[order] = keep_sorted
    return keep


def filter_best_cost_batch(
    ids: np.ndarray,
    costs: np.ndarray,
    offsets: np.ndarray,
    table: HashTableConfig,
) -> np.ndarray:
    """Batched unique-best-cost filtering; one keep bitmask over all rows.

    Strict-improvement comparisons run on integer *ranks* of the costs,
    so the result is exact (the dict reference's semantics) regardless
    of how rows are batched together — see the module docstring.
    """
    ids, offsets = _check_batch(np.asarray(ids, dtype=np.int64), offsets)
    costs = np.asarray(costs, dtype=np.float64)
    if ids.shape != costs.shape:
        raise OperationError("ids and costs must be parallel arrays")
    if ids.size == 0:
        return np.zeros(0, dtype=bool)
    entries = np.int64(table.num_entries)
    slots = hash_slots(ids, table.num_entries)
    key = _row_ids(offsets) * entries + slots
    order = np.argsort(key, kind="stable")
    key_sorted = key[order]
    ids_sorted = ids[order]
    # Segments: maximal runs where one id continuously owns one entry of
    # one row's table.  Row boundaries change the key, breaking segments.
    segment_start = np.ones(ids.size, dtype=bool)
    segment_start[1:] = (key_sorted[1:] != key_sorted[:-1]) | (
        ids_sorted[1:] != ids_sorted[:-1]
    )
    ranks = np.unique(costs[order], return_inverse=True)[1].astype(np.int64)
    keep_sorted = ranks < _segmented_prev_cummin_ranks(ranks, segment_start)
    keep = np.empty(ids.size, dtype=bool)
    keep[order] = keep_sorted
    return keep


def _segmented_prev_cummin_ranks(
    ranks: np.ndarray, segment_start: np.ndarray
) -> np.ndarray:
    """Exact segmented prefix-min of integer ranks (min of *earlier* values).

    The same offset-then-cummin trick as the scalar filter, but in int64
    where the shift round-trip is exact.  Segment firsts get ``num_ranks``
    (one past the largest rank — the integer stand-in for ``+inf``).
    """
    num_ranks = np.int64(ranks.max()) + 1 if ranks.size else np.int64(0)
    seg_id = np.cumsum(segment_start) - 1
    num_segments = np.int64(seg_id[-1]) + 1
    span = num_ranks + 1
    shift = (num_segments - seg_id) * span
    cummin = np.minimum.accumulate(ranks + shift)
    prev = np.empty_like(cummin)
    prev[0] = 0  # overwritten below: position 0 is always a segment start
    prev[1:] = cummin[:-1]
    prev_rank = prev - shift
    prev_rank[segment_start] = num_ranks
    return prev_rank


def group_order_batch(
    blocks: np.ndarray,
    offsets: np.ndarray,
    table: HashTableConfig,
    *,
    group_size: int = 8,
) -> np.ndarray:
    """Batched cache-line grouping; one permutation over the whole batch.

    Returns global flat indices such that ``output = values[perm]`` and
    every row stays in place: ``perm[offsets[r]:offsets[r+1]]`` is row
    ``r``'s scalar :func:`~repro.core.grouping.group_order` permutation
    plus ``offsets[r]``.  The same ``offsets`` therefore describe the
    output batch.
    """
    blocks, offsets = _check_batch(np.asarray(blocks, dtype=np.int64), offsets)
    if group_size <= 0:
        raise OperationError(f"group_size must be positive, got {group_size}")
    n = blocks.size
    if n == 0:
        return np.empty(0, dtype=np.int64)

    sizes = np.diff(offsets)
    row = _row_ids(offsets)
    # Row-local stream position of each element, in original order: the
    # scalar algorithm's eviction keys are exactly these.
    local = np.arange(n, dtype=np.int64) - offsets[row]
    entries = np.int64(table.num_entries)
    slots = hash_slots(blocks, table.num_entries)
    key = row * entries + slots
    order = np.argsort(key, kind="stable")
    key_sorted = key[order]
    blocks_sorted = blocks[order]

    indices = np.arange(n, dtype=np.int64)
    new_slot = np.ones(n, dtype=bool)
    new_slot[1:] = key_sorted[1:] != key_sorted[:-1]
    new_block = new_slot.copy()
    new_block[1:] |= blocks_sorted[1:] != blocks_sorted[:-1]

    run_start_index = np.maximum.accumulate(np.where(new_block, indices, 0))
    position_in_run = indices - run_start_index
    group_boundary = new_block | (position_in_run % group_size == 0)

    first_of_group = np.nonzero(group_boundary)[0]
    next_first = np.append(first_of_group[1:], n)
    has_successor = next_first < n
    # Same composite key == same row *and* same slot: a group whose
    # successor lives in the next row correctly counts as a survivor.
    same_slot = np.zeros(first_of_group.size, dtype=bool)
    same_slot[has_successor] = (
        key_sorted[next_first[has_successor]] == key_sorted[first_of_group[has_successor]]
    )

    local_sorted = local[order]
    row_of_group = row[order][first_of_group]
    slot_of_group = key_sorted[first_of_group] - row_of_group * entries
    # Scalar per-row keys: evicting element's stream position (< n_r) for
    # evicted groups, n_r + slot for survivors.  ``base`` bounds both, so
    # row-composited keys sort rows contiguously with the scalar order
    # inside each row.
    local_key = np.where(
        same_slot,
        local_sorted[np.minimum(next_first, n - 1)],
        sizes[row_of_group] + slot_of_group,
    )
    base = np.int64(sizes.max()) + entries
    group_rank = np.argsort(row_of_group * base + local_key, kind="stable")

    group_sizes = next_first - first_of_group
    sorted_sizes = group_sizes[group_rank]
    segment_id = np.repeat(np.arange(group_rank.size, dtype=np.int64), sorted_sizes)
    out_start = np.cumsum(sorted_sizes) - sorted_sizes
    within = indices - out_start[segment_id]
    return order[first_of_group[group_rank][segment_id] + within]
