"""The paper's contribution: the Stream Compaction Unit."""

from .api import PAPER_SCALE, ScuSystem, build_system
from .batch import (
    batch_offsets,
    concat_batch,
    data_compaction_batch,
    filter_best_cost_batch,
    filter_unique_batch,
    group_order_batch,
    split_batch,
)
from .area import (
    area_breakdown,
    power_breakdown_w,
    render_synthesis_report,
    total_area_mm2,
)
from .cyclesim import CycleSimResult, ScuPipelineSim
from .config import (
    SCU_CONFIGS,
    SCU_GTX980,
    SCU_TX1,
    HashTableConfig,
    ScuConfig,
)
from .energy import scu_op_dynamic_energy_j, scu_static_power_w
from .filtering import (
    duplicates_removed_fraction,
    filter_best_cost,
    filter_best_cost_reference,
    filter_unique,
    filter_unique_reference,
)
from .grouping import group_order, group_order_reference, grouping_quality
from .hashtable import hash_slots, table_addresses
from .program import (
    OPERATION_SIGNATURES,
    ScuProgram,
    ScuStep,
    bfs_contraction_program,
    bfs_expansion_program,
    enhanced_bfs_contraction_program,
    pr_expansion_program,
    sssp_expansion_program,
)
from .ops import (
    COMPARISONS,
    access_compaction,
    access_expansion_compaction,
    bitmask_constructor,
    compaction_addresses,
    data_compaction,
    exclusive_scan,
    expanded_indices,
    replication_compaction,
)
from .timing import ScuTiming, scu_op_timing
from .unit import StreamCompactionUnit

__all__ = [
    "ScuSystem",
    "build_system",
    "PAPER_SCALE",
    "area_breakdown",
    "total_area_mm2",
    "power_breakdown_w",
    "render_synthesis_report",
    "ScuPipelineSim",
    "CycleSimResult",
    "ScuConfig",
    "HashTableConfig",
    "SCU_GTX980",
    "SCU_TX1",
    "SCU_CONFIGS",
    "StreamCompactionUnit",
    "ScuTiming",
    "scu_op_timing",
    "scu_op_dynamic_energy_j",
    "scu_static_power_w",
    "hash_slots",
    "table_addresses",
    "filter_unique",
    "filter_unique_reference",
    "filter_best_cost",
    "filter_best_cost_reference",
    "duplicates_removed_fraction",
    "group_order",
    "group_order_reference",
    "grouping_quality",
    "ScuProgram",
    "ScuStep",
    "OPERATION_SIGNATURES",
    "bfs_expansion_program",
    "bfs_contraction_program",
    "sssp_expansion_program",
    "pr_expansion_program",
    "enhanced_bfs_contraction_program",
    "COMPARISONS",
    "bitmask_constructor",
    "exclusive_scan",
    "compaction_addresses",
    "data_compaction",
    "access_compaction",
    "replication_compaction",
    "access_expansion_compaction",
    "expanded_indices",
    "batch_offsets",
    "concat_batch",
    "split_batch",
    "data_compaction_batch",
    "filter_unique_batch",
    "filter_best_cost_batch",
    "group_order_batch",
]
