"""The SCU's reconfigurable in-memory hash table (Section 4.1).

The hardware stores the table in main memory, cached by the GPU L2, and
reconfigures entry size per operation (Table 2): 4-byte entries for BFS
filtering, 8-byte for SSSP unique-best-cost filtering, 32-byte group
entries for grouping.  Collisions *overwrite* — the paper accepts false
negatives in exchange for trivial hardware.

Modeling note: Table 2 describes the tables as 16-way.  We model the
table as direct-mapped at the same entry count.  With the multiplicative
hash below, conflict (and thus duplicate-escape) rates differ only
marginally from a low-associativity victim arrangement, while the
direct-mapped discipline is what the paper's "entry is overwritten"
eviction text actually describes; the associativity field is retained in
the config for the area model and table rendering.
"""

from __future__ import annotations

import numpy as np

from ..errors import OperationError
from .config import HashTableConfig

#: Knuth's multiplicative hashing constant (golden ratio of 2^64).
_MULTIPLIER = np.int64(-7046029254386353131)  # 0x9E3779B97F4A7C15 as signed


def hash_slots(keys: np.ndarray, num_entries: int) -> np.ndarray:
    """Map int64 keys to table slots with multiplicative hashing.

    Deterministic and shared by the vectorized and reference filter and
    grouping implementations, so their results are bit-identical.
    """
    if num_entries <= 0:
        raise OperationError(f"hash table needs at least one entry, got {num_entries}")
    keys = np.asarray(keys, dtype=np.int64)
    mixed = (keys * _MULTIPLIER).astype(np.uint64) >> np.uint64(33)
    return (mixed % np.uint64(num_entries)).astype(np.int64)


def table_addresses(
    slots: np.ndarray, *, base: int, bytes_per_entry: int
) -> np.ndarray:
    """Byte addresses of the hash-table entries touched by ``slots``.

    The filtering/grouping cost model feeds these through the memory
    hierarchy: a table that fits in L2 stays cheap, an oversized one
    spills to DRAM — exactly the trade-off Table 2's sizing is about.
    """
    return base + np.asarray(slots, dtype=np.int64) * bytes_per_entry


def entries_for(config: HashTableConfig) -> int:
    """Number of addressable entries of a table configuration."""
    return config.num_entries
