"""SCU operation programs — the "programmable unit" surface.

Section 3 stresses that the SCU is *programmable*: applications compose
the five generic operations through a simple API.  This module gives
that composition an explicit representation: an :class:`ScuProgram` is
a list of operation steps over named buffers, which can be validated,
printed, and executed against a :class:`~repro.core.unit.
StreamCompactionUnit`.  The BFS/SSSP/PR offload sequences of
Algorithms 1-3 are provided as pre-written programs, and tests execute
them against the hand-rolled implementations.

Buffers are an environment mapping names to
:class:`~repro.mem.address_space.DeviceArray` objects; each step reads
its operands from and writes its result back into that environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from ..errors import OperationError
from ..mem.address_space import DeviceArray
from ..phases import PhaseReport
from .unit import StreamCompactionUnit

#: Operation mnemonics and their required operand buffer names.
OPERATION_SIGNATURES = {
    "bitmask": ("data",),
    "data_compaction": ("data", "bitmask"),
    "access_compaction": ("data", "indexes", "bitmask"),
    "replication": ("data", "count"),
    "expansion": ("data", "indexes", "count"),
    "filter_unique": ("ids",),
    "filter_best_cost": ("ids", "costs"),
    "grouping": ("destinations",),
}


@dataclass(frozen=True)
class ScuStep:
    """One program step: an operation, operand buffer names, an output name."""

    operation: str
    operands: Dict[str, str]
    output: str
    #: extra keyword parameters (e.g. comparison/reference for bitmask)
    parameters: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.operation not in OPERATION_SIGNATURES:
            known = ", ".join(OPERATION_SIGNATURES)
            raise OperationError(
                f"unknown SCU operation {self.operation!r}; known: {known}"
            )
        required = OPERATION_SIGNATURES[self.operation]
        missing = [name for name in required if name not in self.operands]
        if missing:
            raise OperationError(
                f"step {self.operation!r} missing operands: {', '.join(missing)}"
            )

    def describe(self) -> str:
        operand_list = ", ".join(f"{k}={v}" for k, v in self.operands.items())
        return f"{self.output} <- {self.operation}({operand_list})"


@dataclass
class ScuProgram:
    """An ordered sequence of SCU operations over named buffers."""

    name: str
    steps: list = field(default_factory=list)

    def add(self, operation: str, output: str, **operands_and_params) -> "ScuProgram":
        """Append a step; unknown keywords become operation parameters."""
        required = OPERATION_SIGNATURES.get(operation, ())
        optional = {"reorder", "element_bitmask", "bitmask"}
        operands = {
            k: v
            for k, v in operands_and_params.items()
            if k in required or k in optional
        }
        parameters = {
            k: v for k, v in operands_and_params.items() if k not in operands
        }
        self.steps.append(
            ScuStep(
                operation=operation,
                operands=operands,
                output=output,
                parameters=parameters,
            )
        )
        return self

    def validate(self, inputs: Sequence[str]) -> None:
        """Check that every operand is defined before it is used."""
        defined = set(inputs)
        for step in self.steps:
            for role, buffer_name in step.operands.items():
                if buffer_name not in defined:
                    raise OperationError(
                        f"program {self.name!r}: step {step.describe()} uses "
                        f"undefined buffer {buffer_name!r}"
                    )
            defined.add(step.output)

    def run(
        self,
        scu: StreamCompactionUnit,
        buffers: Dict[str, DeviceArray],
    ) -> tuple[Dict[str, DeviceArray], list[PhaseReport]]:
        """Execute the program; returns (final environment, phase reports)."""
        self.validate(list(buffers))
        env = dict(buffers)
        reports: list[PhaseReport] = []
        for step in self.steps:
            resolved = {role: env[name] for role, name in step.operands.items()}
            result, report = self._dispatch(scu, step, resolved)
            env[step.output] = result
            reports.append(report)
        return env, reports

    @staticmethod
    def _dispatch(scu: StreamCompactionUnit, step: ScuStep, ops: Dict[str, DeviceArray]):
        params = dict(step.parameters)
        out = step.output
        if step.operation == "bitmask":
            return scu.bitmask_constructor(
                ops["data"],
                params.pop("comparison"),
                params.pop("reference"),
                out=out,
            )
        if step.operation == "data_compaction":
            return scu.data_compaction(
                ops["data"], ops["bitmask"], out=out, reorder=ops.get("reorder")
            )
        if step.operation == "access_compaction":
            return scu.access_compaction(
                ops["data"], ops["indexes"], ops["bitmask"], out=out
            )
        if step.operation == "replication":
            return scu.replication_compaction(
                ops["data"], ops["count"], ops.get("bitmask"), out=out
            )
        if step.operation == "expansion":
            return scu.access_expansion_compaction(
                ops["data"],
                ops["indexes"],
                ops["count"],
                ops.get("bitmask"),
                out=out,
                element_bitmask=ops.get("element_bitmask"),
                reorder=ops.get("reorder"),
            )
        if step.operation == "filter_unique":
            return scu.filter_unique_pass(ops["ids"], out=out)
        if step.operation == "filter_best_cost":
            return scu.filter_best_cost_pass(ops["ids"], ops["costs"], out=out)
        if step.operation == "grouping":
            return scu.grouping_pass(ops["destinations"], out=out, **params)
        raise OperationError(f"unhandled operation {step.operation!r}")

    def describe(self) -> str:
        lines = [f"program {self.name}:"]
        lines.extend(f"  {i}: {step.describe()}" for i, step in enumerate(self.steps))
        return "\n".join(lines)


# -- the paper's offload sequences as programs -------------------------------


def bfs_expansion_program() -> ScuProgram:
    """Algorithm 1's expansion offload: edge-frontier gather."""
    return ScuProgram("bfs.expansion").add(
        "expansion", "ef", data="edges", indexes="indexes", count="count"
    )


def bfs_contraction_program() -> ScuProgram:
    """Algorithm 1's contraction offload: node-frontier compaction."""
    return ScuProgram("bfs.contraction").add(
        "data_compaction", "nf", data="ef", bitmask="mask"
    )


def sssp_expansion_program() -> ScuProgram:
    """Algorithm 2's expansion offload: edge + weight frontiers."""
    return (
        ScuProgram("sssp.expansion")
        .add("expansion", "ef", data="edges", indexes="indexes", count="count")
        .add("expansion", "ew", data="weights", indexes="indexes", count="count")
        .add("replication", "wf", data="costs", count="count")
    )


def pr_expansion_program() -> ScuProgram:
    """Algorithm 3's expansion offload: edge frontier + rank replication."""
    return (
        ScuProgram("pr.expansion")
        .add("expansion", "ef", data="edges", indexes="indexes", count="count")
        .add("replication", "wf", data="contrib", count="count")
    )


def enhanced_bfs_contraction_program() -> ScuProgram:
    """Algorithm 4's contraction: filter pass + filtered compaction."""
    return (
        ScuProgram("bfs.contraction.enhanced")
        .add("filter_unique", "filter_mask", ids="ef")
        .add("data_compaction", "nf", data="ef", bitmask="filter_mask")
    )
