"""SCU energy model (32 nm synthesis analog).

The SCU's headline property is that moving an element through its
pipeline costs a few picojoules of control and datapath energy, versus
the tens of picojoules a GPU thread spends per instruction across fetch,
decode, register file and functional units.  Dynamic energy is:

``E = elements * e_elem + probes * e_probe + trans * e_l2 + E_dram``

Static power (0.25 W at width 4 scale, scaled by area) is charged by the
runner over the run's makespan, like the GPU's.
"""

from __future__ import annotations

from ..mem.hierarchy import MemoryHierarchy, MemoryStats
from .config import ScuConfig


def scu_op_dynamic_energy_j(
    config: ScuConfig,
    hierarchy: MemoryHierarchy,
    *,
    elements: int,
    memory: MemoryStats,
    hash_probes: int = 0,
    busy_time_s: float = 0.0,
) -> float:
    """Dynamic energy of one SCU operation, in joules.

    Mirrors the GPU model: per-event energies plus the (small) pipeline
    active power over the operation's duration.  The SCU's active power
    is two orders of magnitude below the SM array's — the source of the
    offload energy win.
    """
    pipeline = elements * config.energy_per_element_pj
    probes = hash_probes * config.energy_per_hash_probe_pj
    l2 = memory.transactions * config.energy_per_l2_access_pj
    dram = hierarchy.dram_dynamic_energy_j(memory)
    reference_area = config.AREA_BASE_MM2 + 4 * config.AREA_PER_LANE_MM2
    active = config.active_power_w * (config.area_mm2 / reference_area) * busy_time_s
    return (pipeline + probes + l2) * 1e-12 + dram + active


def scu_static_power_w(config: ScuConfig) -> float:
    """Leakage scales with the synthesized area (lane count dominated)."""
    reference_area = config.AREA_BASE_MM2 + 4 * config.AREA_PER_LANE_MM2
    return config.static_power_w * (config.area_mm2 / reference_area)
