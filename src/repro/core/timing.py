"""SCU operation latency model.

An SCU operation is a streaming pass: the pipeline retires
``pipeline_width`` elements per cycle unless memory stalls it.  Its
duration is therefore

``max(elements / (width x clock), dram_time, l2_service_time) + setup``

where the memory terms come from the shared hierarchy pricing the
operation's real address streams.  Unlike a GPU kernel there is no
launch/occupancy ramp — the unit is dedicated — only the small Address
Generator configuration cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.coalescer import SECTOR_BYTES
from ..mem.hierarchy import MemoryHierarchy, MemoryStats
from .config import ScuConfig

#: L2 bandwidth available to the SCU's port on the interconnect. The SCU
#: is one client of the existing NoC; it cannot out-stream the L2.
SCU_L2_BANDWIDTH_FRACTION = 0.5


@dataclass(frozen=True)
class ScuTiming:
    """Breakdown of one SCU operation's modeled duration."""

    pipeline_s: float
    l2_s: float
    dram_s: float
    setup_s: float

    @property
    def total_s(self) -> float:
        return max(self.pipeline_s, self.l2_s, self.dram_s) + self.setup_s

    @property
    def bottleneck(self) -> str:
        terms = {"pipeline": self.pipeline_s, "l2": self.l2_s, "dram": self.dram_s}
        return max(terms, key=terms.get)


def scu_op_timing(
    config: ScuConfig,
    hierarchy: MemoryHierarchy,
    *,
    elements: int,
    memory: MemoryStats,
    l2_bandwidth_bps: float,
    dram_s_override: float | None = None,
) -> ScuTiming:
    """Model the duration of one SCU operation."""
    pipeline_s = elements / config.elements_per_second if elements else 0.0
    l2_s = (
        memory.transactions
        * SECTOR_BYTES
        / (l2_bandwidth_bps * SCU_L2_BANDWIDTH_FRACTION)
    )
    dram_s = (
        dram_s_override if dram_s_override is not None else hierarchy.dram_time_s(memory)
    )
    return ScuTiming(
        pipeline_s=pipeline_s, l2_s=l2_s, dram_s=dram_s, setup_s=config.op_setup_s
    )
