"""The GPU device model: executes :class:`KernelSpec` cost descriptions.

``GpuDevice.run`` is the single entry point the algorithms use for GPU
work: it coalesces every access stream warp-by-warp, pushes the
transactions through the shared memory hierarchy, applies the timing and
energy models, and returns a :class:`~repro.phases.PhaseReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..mem.coalescer import coalesce_warp
from ..mem.hierarchy import MemoryHierarchy, MemoryStats
from ..obs import NULL_OBS, Observability
from ..phases import Engine, PhaseReport
from .config import GpuConfig
from .energy import kernel_dynamic_energy_j
from .kernel import KernelSpec
from .timing import kernel_timing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.iru import IrregularAccessReorderUnit


@dataclass
class GpuDevice:
    """One GPU system (config + memory hierarchy).

    ``memory_scale`` divides the modeled L2 capacity at construction
    time (see :data:`~repro.core.api.PAPER_SCALE`), so the hierarchy is
    never resized after it exists — every component observes one
    consistent capacity for the device's whole lifetime.
    """

    config: GpuConfig
    obs: Observability = NULL_OBS
    memory_scale: float = 1.0
    #: optional IRU hook on the coalescer's input (see repro.backends.iru);
    #: None for every backend except ``iru``.
    reorderer: "IrregularAccessReorderUnit | None" = None
    hierarchy: MemoryHierarchy = field(init=False)

    def __post_init__(self) -> None:
        l2_bytes = self.config.l2_bytes
        if self.memory_scale != 1.0:
            l2_bytes = int(self.config.l2_bytes / self.memory_scale)
        self.hierarchy = MemoryHierarchy(
            l2_capacity_bytes=l2_bytes, dram=self.config.dram,
            obs=self.obs,
        )

    def attach_obs(self, obs: Observability) -> None:
        """Point this device (and its memory hierarchy) at an observer."""
        self.obs = obs
        self.hierarchy.attach_obs(obs)

    def attach_reorderer(self, unit: "IrregularAccessReorderUnit") -> None:
        """Install an IRU on the coalescer input path (backend hook)."""
        self.reorderer = unit

    def run(self, spec: KernelSpec) -> PhaseReport:
        """Execute (cost-model) one kernel launch.

        DRAM time is summed per access stream rather than computed on
        the merged aggregate: interleaving a random gather with a
        sequential stream destroys the latter's row locality, so the
        streams effectively serialize at the DRAM — a divergent gather
        cannot hide under a streaming store's bandwidth.
        """
        tracer = self.obs.tracer
        with tracer.span(
            spec.name, "gpu-kernel", **(spec.trace_args() if tracer.enabled else {})
        ) as span:
            memory = MemoryStats()
            dram_s = 0.0
            iru_elements = 0
            for stream in spec.accesses:
                addresses = stream.addresses
                active_mask = stream.active_mask
                if self.reorderer is not None and not stream.is_atomic:
                    # The unit bypasses regular (already-ordered) streams;
                    # only irregular ones enter the buffer and pay its cost.
                    intercepted = self.reorderer.intercept(
                        addresses, active_mask=active_mask
                    )
                    if intercepted is not None:
                        addresses, count = intercepted
                        active_mask = None  # mask pre-applied by the unit
                        iru_elements += count
                result = coalesce_warp(addresses, active_mask=active_mask)
                stats = self.hierarchy.process(result, l2_bypass=stream.l2_bypass)
                dram_s += self.hierarchy.dram_time_s(stats)
                memory = memory.merged(stats)
            iru_overhead_s = 0.0
            iru_energy_j = 0.0
            if iru_elements:
                iru_overhead_s = self.reorderer.exposed_time_s(iru_elements)
                iru_energy_j = self.reorderer.dynamic_energy_j(iru_elements)
            atomics = spec.atomic_count
            timing = kernel_timing(
                self.config,
                self.hierarchy,
                instructions=spec.total_instructions,
                memory=memory,
                atomics=atomics,
                memory_efficiency=spec.memory_efficiency,
                dram_s_override=dram_s,
                obs=self.obs,
            )
            energy = kernel_dynamic_energy_j(
                self.config,
                self.hierarchy,
                instructions=spec.total_instructions,
                memory=memory,
                atomics=atomics,
                busy_time_s=timing.total_s + spec.extra_overhead_s,
            )
            time_s = timing.total_s + spec.extra_overhead_s + iru_overhead_s
            energy += iru_energy_j
            if self.obs.enabled:
                metrics = self.obs.metrics
                metrics.counter("gpu.kernel.launches").inc(kernel=spec.name)
                metrics.counter("gpu.kernel.transactions").inc(memory.transactions)
                if memory.transactions:
                    metrics.histogram("gpu.warp.coalesce_factor").observe(
                        memory.coalescing_factor, kernel=spec.name
                    )
                if iru_elements:
                    metrics.counter("iru.kernel.elements").inc(
                        iru_elements, kernel=spec.name
                    )
                    metrics.counter("iru.kernel.exposed_s").inc(iru_overhead_s)
                span.annotate(
                    sim_time_s=time_s,
                    sim_energy_j=energy,
                    bottleneck=timing.bottleneck,
                    transactions=memory.transactions,
                    dram_bytes=memory.dram_bytes,
                )
            return PhaseReport(
                name=spec.name,
                engine=Engine.GPU,
                kind=spec.kind,
                elements=spec.threads,
                instructions=spec.total_instructions,
                time_s=time_s,
                dynamic_energy_j=energy,
                memory=memory,
            )
