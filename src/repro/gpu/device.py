"""The GPU device model: executes :class:`KernelSpec` cost descriptions.

``GpuDevice.run`` is the single entry point the algorithms use for GPU
work: it coalesces every access stream warp-by-warp, pushes the
transactions through the shared memory hierarchy, applies the timing and
energy models, and returns a :class:`~repro.phases.PhaseReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mem.coalescer import coalesce_warp
from ..mem.hierarchy import MemoryHierarchy, MemoryStats
from ..phases import Engine, PhaseReport
from .config import GpuConfig
from .energy import kernel_dynamic_energy_j
from .kernel import KernelSpec
from .timing import kernel_timing


@dataclass
class GpuDevice:
    """One GPU system (config + memory hierarchy)."""

    config: GpuConfig
    hierarchy: MemoryHierarchy = field(init=False)

    def __post_init__(self) -> None:
        self.hierarchy = MemoryHierarchy(
            l2_capacity_bytes=self.config.l2_bytes, dram=self.config.dram
        )

    def run(self, spec: KernelSpec) -> PhaseReport:
        """Execute (cost-model) one kernel launch.

        DRAM time is summed per access stream rather than computed on
        the merged aggregate: interleaving a random gather with a
        sequential stream destroys the latter's row locality, so the
        streams effectively serialize at the DRAM — a divergent gather
        cannot hide under a streaming store's bandwidth.
        """
        memory = MemoryStats()
        dram_s = 0.0
        for stream in spec.accesses:
            result = coalesce_warp(stream.addresses, active_mask=stream.active_mask)
            stats = self.hierarchy.process(result, l2_bypass=stream.l2_bypass)
            dram_s += self.hierarchy.dram_time_s(stats)
            memory = memory.merged(stats)
        atomics = spec.atomic_count
        timing = kernel_timing(
            self.config,
            self.hierarchy,
            instructions=spec.total_instructions,
            memory=memory,
            atomics=atomics,
            memory_efficiency=spec.memory_efficiency,
            dram_s_override=dram_s,
        )
        energy = kernel_dynamic_energy_j(
            self.config,
            self.hierarchy,
            instructions=spec.total_instructions,
            memory=memory,
            atomics=atomics,
            busy_time_s=timing.total_s + spec.extra_overhead_s,
        )
        return PhaseReport(
            name=spec.name,
            engine=Engine.GPU,
            kind=spec.kind,
            elements=spec.threads,
            instructions=spec.total_instructions,
            time_s=timing.total_s + spec.extra_overhead_s,
            dynamic_energy_j=energy,
            memory=memory,
        )
