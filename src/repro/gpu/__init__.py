"""GPU model: configurations, kernel accounting, timing, energy, device."""

from .config import GPU_SYSTEMS, GTX980, TX1, GpuConfig
from .device import GpuDevice
from .energy import kernel_dynamic_energy_j, system_static_power_w
from .kernel import AccessStream, KernelSpec
from .timing import ATOMICS_PER_CLOCK, MSHRS_PER_SM, KernelTiming, kernel_timing

__all__ = [
    "GpuConfig",
    "GTX980",
    "TX1",
    "GPU_SYSTEMS",
    "GpuDevice",
    "KernelSpec",
    "AccessStream",
    "KernelTiming",
    "kernel_timing",
    "kernel_dynamic_energy_j",
    "system_static_power_w",
    "MSHRS_PER_SM",
    "ATOMICS_PER_CLOCK",
]
