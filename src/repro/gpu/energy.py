"""GPU dynamic-energy model (the GPUWattch substitute).

Dynamic energy is a linear combination of event counts with per-config
coefficients (Table 3/4 analogs in :mod:`repro.gpu.config`):

``E = instr * e_inst + trans * (e_l1 + e_l2) + atomics * e_atomic + E_dram``

Every coalesced transaction performs an L1 lookup and an L2 access in
this model; DRAM dynamic energy comes from the DRAM model.  Static
energy is accounted once per run (power x makespan) by the runner, not
per kernel, because the GPU and SCU never run concurrently in the
paper's offload scheme.
"""

from __future__ import annotations

from ..mem.hierarchy import MemoryHierarchy, MemoryStats
from .config import GpuConfig


def kernel_dynamic_energy_j(
    config: GpuConfig,
    hierarchy: MemoryHierarchy,
    *,
    instructions: int,
    memory: MemoryStats,
    atomics: int = 0,
    busy_time_s: float = 0.0,
) -> float:
    """Dynamic energy of one kernel launch, in joules.

    Two components: per-event energies (instructions, cache accesses,
    atomics, DRAM transfers) and the SM-array active power integrated
    over the kernel's duration — stalled SMs are not free, which is why
    offloading work to a small unit saves energy even when it does not
    save time.
    """
    core = instructions * config.energy_per_instruction_pj
    l1 = memory.transactions * config.energy_per_l1_access_pj
    l2 = memory.transactions * config.energy_per_l2_access_pj
    atomic = atomics * config.energy_per_atomic_pj
    dram = hierarchy.dram_dynamic_energy_j(memory)
    active = config.active_power_w * busy_time_s
    return (core + l1 + l2 + atomic) * 1e-12 + dram + active


def system_static_power_w(config: GpuConfig) -> float:
    """Static power of GPU cores plus DRAM background/refresh."""
    return config.static_power_w + config.dram.static_power_w
