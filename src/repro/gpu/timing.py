"""GPU kernel latency model.

A kernel's duration is the maximum of four bottleneck terms plus the
launch overhead — the classic bottleneck (roofline-style) abstraction of
a throughput processor:

* **compute**: thread-instructions over sustained issue throughput;
* **L2**: transaction bytes over L2 bandwidth;
* **DRAM**: miss bytes over effective DRAM bandwidth (row-locality
  derated, from the DRAM model);
* **latency**: transactions over the maximum the SMs can keep in flight
  (MSHRs), times the device access latency — this is what makes small,
  divergent frontiers slow even though bandwidth is idle, and it is why
  road networks behave so differently from Kronecker graphs;
* **atomics**: serialized atomic throughput at the L2.

Memory divergence enters through the transaction count itself: the same
1024 loads cost 32 transactions when coalesced and 1024 when divergent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.coalescer import SECTOR_BYTES
from ..mem.hierarchy import MemoryHierarchy, MemoryStats
from ..obs import NULL_OBS, Observability
from .config import GpuConfig

#: Fallback effective-MLP figure for configs predating the per-GPU
#: field (see GpuConfig.effective_mshrs_per_sm); kept for the tests'
#: sensitivity sweeps.
MSHRS_PER_SM = 8
#: Atomic operations retired per clock across the L2 (Maxwell-era figure).
ATOMICS_PER_CLOCK = 4.0


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one kernel's modeled duration."""

    compute_s: float
    l2_s: float
    dram_s: float
    latency_s: float
    atomic_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        bottleneck = max(
            self.compute_s, self.l2_s, self.dram_s, self.latency_s, self.atomic_s
        )
        return bottleneck + self.overhead_s

    @property
    def bottleneck(self) -> str:
        terms = {
            "compute": self.compute_s,
            "l2": self.l2_s,
            "dram": self.dram_s,
            "latency": self.latency_s,
            "atomic": self.atomic_s,
        }
        return max(terms, key=terms.get)


def kernel_timing(
    config: GpuConfig,
    hierarchy: MemoryHierarchy,
    *,
    instructions: int,
    memory: MemoryStats,
    atomics: int = 0,
    memory_efficiency: float = 1.0,
    dram_s_override: float | None = None,
    obs: Observability = NULL_OBS,
) -> KernelTiming:
    """Model the duration of one kernel launch.

    ``memory_efficiency`` derates the memory-side terms for kernels that
    cannot keep the memory system busy (scan-based compaction's
    synchronization and multi-phase structure).  ``dram_s_override``
    lets the device pass a per-stream (serialized-drain) DRAM time
    instead of the merged-aggregate estimate.  ``obs`` records which
    bottleneck term won and by how much.
    """
    compute_s = instructions / (config.peak_ops_per_s * config.issue_efficiency)
    l2_s = (
        memory.transactions * SECTOR_BYTES / config.l2_bandwidth_bps
    ) / memory_efficiency
    base_dram_s = (
        dram_s_override if dram_s_override is not None else hierarchy.dram_time_s(memory)
    )
    dram_s = base_dram_s / memory_efficiency

    inflight = config.num_sms * getattr(
        config, "effective_mshrs_per_sm", MSHRS_PER_SM
    )
    if memory.transactions:
        waves = memory.transactions / inflight
        latency_s = waves * config.dram.access_latency_ns * 1e-9
    else:
        latency_s = 0.0

    atomic_s = atomics / (ATOMICS_PER_CLOCK * config.clock_hz) if atomics else 0.0

    timing = KernelTiming(
        compute_s=compute_s,
        l2_s=l2_s,
        dram_s=dram_s,
        latency_s=latency_s,
        atomic_s=atomic_s,
        overhead_s=config.kernel_launch_overhead_s,
    )
    if obs.enabled:
        metrics = obs.metrics
        metrics.counter("gpu.kernel.bottleneck").inc(term=timing.bottleneck)
        metrics.counter("gpu.kernel.sim_time_s").inc(timing.total_s, gpu=config.name)
    return timing
