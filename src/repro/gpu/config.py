"""GPU hardware configurations (Tables 3 and 4 of the paper).

Each :class:`GpuConfig` bundles the microarchitectural parameters the
timing model needs, the event-energy coefficients the energy model needs
(the GPUWattch substitute; see DESIGN.md), and the die area used for the
paper's SCU-area-overhead percentages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..mem.dram import GDDR5, LPDDR4, DramConfig


@dataclass(frozen=True)
class GpuConfig:
    """A GPU system the SCU attaches to."""

    name: str
    num_sms: int
    cores_per_sm: int
    clock_hz: float
    max_threads_per_sm: int
    l1_bytes: int
    l2_bytes: int
    shared_bytes_per_sm: int
    dram: DramConfig
    l2_bandwidth_bps: float
    kernel_launch_overhead_s: float
    #: sustained fraction of peak issue rate graph kernels reach when
    #: compute-bound (they never do in practice; memory wins).
    issue_efficiency: float
    #: memory transactions one SM keeps in flight on irregular
    #: workloads (effective MLP, not raw MSHR count): dependent loads,
    #: replays and bank conflicts pin it well below the hardware limit,
    #: and the slower LPDDR4 path sustains less than the GDDR5 one.
    effective_mshrs_per_sm: int
    # -- energy coefficients (GPUWattch analog) --
    energy_per_instruction_pj: float
    energy_per_l1_access_pj: float
    energy_per_l2_access_pj: float
    energy_per_atomic_pj: float
    #: power the SM array + uncore burns while kernels are resident:
    #: even stalled-on-memory SMs keep their clocks, schedulers and
    #: register files active, so this scales with GPU busy-time — the
    #: dominant energy term for graph workloads (GPUWattch analog).
    active_power_w: float
    static_power_w: float  # leakage while idle, excluding DRAM
    die_area_mm2: float

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise ConfigError(f"{self.name}: SM geometry must be positive")
        if self.clock_hz <= 0:
            raise ConfigError(f"{self.name}: clock must be positive")
        if not 0 < self.issue_efficiency <= 1:
            raise ConfigError(f"{self.name}: issue_efficiency must be in (0, 1]")

    @property
    def peak_ops_per_s(self) -> float:
        """Peak scalar-op throughput across all SMs."""
        return self.num_sms * self.cores_per_sm * self.clock_hz

    @property
    def max_threads(self) -> int:
        return self.num_sms * self.max_threads_per_sm

    @property
    def resident_threads(self) -> int:
        """Threads concurrently resident across the SMs (2048/SM on Maxwell).

        This bounds how quickly a non-atomic status-bit update becomes
        visible to later threads of the same grid; the BFS baseline's
        best-effort duplicate filter races within this window.
        """
        return self.num_sms * 2048

    def describe(self) -> list[tuple[str, str]]:
        """Rows for the Table 3/4 renderer."""
        return [
            ("GPU, Frequency", f"{self.name}, {self.clock_hz / 1e9:.2f}GHz"),
            (
                "Streaming Multiprocessors",
                f"{self.num_sms} ({self.max_threads} threads), Maxwell",
            ),
            ("L1, L2 caches", f"{self.l1_bytes // 1024} KB, {self.l2_bytes // 1024} KB"),
            ("Shared Memory", f"{self.shared_bytes_per_sm // 1024} KB"),
            (
                "Main Memory",
                f"{self.dram.capacity_bytes >> 30} GB {self.dram.name}, "
                f"{self.dram.peak_bandwidth_bps / 1e9:.1f} GB/s",
            ),
        ]


#: Table 3 — high-performance system: NVIDIA GTX 980 (Maxwell, GM204).
GTX980 = GpuConfig(
    name="GTX980",
    num_sms=16,
    cores_per_sm=128,
    clock_hz=1.27e9,
    max_threads_per_sm=2048,
    l1_bytes=32 * 1024,
    l2_bytes=2 * 1024 * 1024,
    shared_bytes_per_sm=64 * 1024,
    dram=GDDR5,
    l2_bandwidth_bps=1.0e12,
    kernel_launch_overhead_s=4e-6,
    issue_efficiency=0.55,
    effective_mshrs_per_sm=12,
    energy_per_instruction_pj=16.0,
    energy_per_l1_access_pj=30.0,
    energy_per_l2_access_pj=160.0,
    energy_per_atomic_pj=400.0,
    active_power_w=110.0,
    static_power_w=8.0,
    die_area_mm2=398.0,
)

#: Table 4 — low-power system: NVIDIA Tegra X1 (Maxwell, GM20B).
TX1 = GpuConfig(
    name="TX1",
    num_sms=2,
    cores_per_sm=128,
    clock_hz=1.0e9,
    max_threads_per_sm=128,  # Table 4 lists 2 SMs (256 threads)
    l1_bytes=32 * 1024,
    l2_bytes=256 * 1024,
    shared_bytes_per_sm=64 * 1024,
    dram=LPDDR4,
    l2_bandwidth_bps=120e9,
    kernel_launch_overhead_s=6e-6,
    issue_efficiency=0.55,
    effective_mshrs_per_sm=4,
    energy_per_instruction_pj=7.0,
    energy_per_l1_access_pj=14.0,
    energy_per_l2_access_pj=75.0,
    energy_per_atomic_pj=190.0,
    active_power_w=6.0,
    static_power_w=0.9,
    die_area_mm2=89.0,  # GPU complex share of the X1 SoC (paper: SCU = 4.1 %)
)

GPU_SYSTEMS = {"GTX980": GTX980, "TX1": TX1}
