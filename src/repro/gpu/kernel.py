"""Kernel cost specification.

Algorithms describe each kernel launch as a :class:`KernelSpec`: how
many threads ran, how many instructions each executed, and — crucially —
the *actual byte addresses* every global access stream touched.  The GPU
device model turns those into coalesced transactions, cache traffic,
time and energy.  This is the contract that lets a functional NumPy
simulation drive a hardware cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..phases import PhaseKind


@dataclass(frozen=True)
class AccessStream:
    """One global-memory access pattern issued by a kernel."""

    addresses: np.ndarray  # byte address per thread/element, thread order
    is_store: bool = False
    is_atomic: bool = False
    l2_bypass: bool = False  # streaming data not worth caching
    active_mask: np.ndarray | None = None


@dataclass
class KernelSpec:
    """Cost description of one kernel launch."""

    name: str
    kind: PhaseKind
    threads: int
    instructions_per_thread: float = 0.0
    extra_instructions: int = 0  # e.g. scan/reduction tree overhead
    #: Fraction of peak memory throughput this kernel sustains.  Scan-
    #: based stream compaction on GPUs reaches well under peak because
    #: of work-distribution synchronization and multi-phase passes
    #: (Billeter et al. HPG'09; Merrill's reported traversal rates);
    #: algorithms set this below 1.0 for their compaction kernels.
    memory_efficiency: float = 1.0
    #: additional fixed overhead (extra launches, host synchronization)
    extra_overhead_s: float = 0.0
    accesses: list[AccessStream] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.threads < 0:
            raise SimulationError(f"kernel {self.name}: negative thread count")
        if self.instructions_per_thread < 0 or self.extra_instructions < 0:
            raise SimulationError(f"kernel {self.name}: negative instruction count")
        if not 0.0 < self.memory_efficiency <= 1.0:
            raise SimulationError(
                f"kernel {self.name}: memory_efficiency must be in (0, 1]"
            )

    # -- builders ------------------------------------------------------------

    def load(
        self,
        addresses: np.ndarray,
        *,
        l2_bypass: bool = False,
        active_mask: np.ndarray | None = None,
    ) -> "KernelSpec":
        self.accesses.append(
            AccessStream(
                addresses=np.asarray(addresses, dtype=np.int64),
                l2_bypass=l2_bypass,
                active_mask=active_mask,
            )
        )
        return self

    def store(
        self,
        addresses: np.ndarray,
        *,
        l2_bypass: bool = False,
        active_mask: np.ndarray | None = None,
    ) -> "KernelSpec":
        self.accesses.append(
            AccessStream(
                addresses=np.asarray(addresses, dtype=np.int64),
                is_store=True,
                l2_bypass=l2_bypass,
                active_mask=active_mask,
            )
        )
        return self

    def atomic(self, addresses: np.ndarray) -> "KernelSpec":
        """Atomic read-modify-write on the given addresses."""
        self.accesses.append(
            AccessStream(
                addresses=np.asarray(addresses, dtype=np.int64),
                is_store=True,
                is_atomic=True,
            )
        )
        return self

    # -- observability --------------------------------------------------------

    def trace_args(self) -> dict:
        """Launch-shape summary attached to this kernel's trace span."""
        return {
            "threads": self.threads,
            "instructions": self.total_instructions,
            "streams": len(self.accesses),
            "loads": sum(1 for s in self.accesses if not s.is_store),
            "stores": sum(1 for s in self.accesses if s.is_store),
            "atomics": self.atomic_count,
            "kind": self.kind.value,
        }

    # -- totals ---------------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        return int(round(self.threads * self.instructions_per_thread)) + self.extra_instructions

    @property
    def atomic_count(self) -> int:
        return sum(
            stream.addresses.size for stream in self.accesses if stream.is_atomic
        )
