"""Persisting experiment results — JSON and CSV export / import.

Downstream users plot the reproduced figures with their own tooling;
this module writes each :class:`~repro.harness.results.ExperimentResult`
to a machine-readable file and reads it back losslessly (for numeric
cell types).  ``export_all`` dumps a whole reproduction run into a
directory, one file per artifact.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict

from ..errors import ExperimentError
from .results import ExperimentResult

#: fig9 -> "fig9.json"; "table3/4" -> "table3_4.json"
def _slug(experiment_id: str) -> str:
    return experiment_id.replace("/", "_")


def save_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write one result as JSON; returns the path written."""
    path = Path(path)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_json(path: str | Path) -> ExperimentResult:
    """Read a result written by :func:`save_json`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ExperimentError(f"{path}: not a valid result file: {error}") from error
    for key in ("experiment_id", "title", "columns", "rows"):
        if key not in payload:
            raise ExperimentError(f"{path}: missing field {key!r}")
    columns = tuple(payload["columns"])
    result = ExperimentResult(payload["experiment_id"], payload["title"], columns)
    for index, row in enumerate(payload["rows"]):
        if not isinstance(row, list) or len(row) != len(columns):
            got = len(row) if isinstance(row, list) else type(row).__name__
            raise ExperimentError(
                f"{path}: row {index} has {got} values, "
                f"expected {len(columns)} ({', '.join(columns)})"
            )
        result.add_row(*row)
    for note in payload.get("notes", []):
        result.add_note(note)
    return result


def save_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write one result as CSV (header + rows; notes as # comments)."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        for note in result.notes:
            handle.write(f"# {note}\n")
        writer = csv.writer(handle)
        writer.writerow(result.columns)
        writer.writerows(result.rows)
    return path


def export_all(
    results: Dict[str, ExperimentResult],
    directory: str | Path,
    *,
    formats: tuple[str, ...] = ("json", "csv"),
) -> list[Path]:
    """Dump every result into ``directory``; returns the files written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for experiment_id, result in results.items():
        stem = directory / _slug(experiment_id)
        if "json" in formats:
            written.append(save_json(result, stem.with_suffix(".json")))
        if "csv" in formats:
            written.append(save_csv(result, stem.with_suffix(".csv")))
    return written
