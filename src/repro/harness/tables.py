"""ASCII rendering of experiment results, matching the paper's layout."""

from __future__ import annotations

from typing import Sequence

from .results import ExperimentResult


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render one experiment as a boxed ASCII table with its notes."""
    header = [str(c) for c in result.columns]
    body = [[_format_cell(v) for v in row] for row in result.rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(char: str = "-") -> str:
        return "+" + "+".join(char * (w + 2) for w in widths) + "+"

    def fmt(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    out = [f"== {result.experiment_id}: {result.title} ==", line("="), fmt(header), line()]
    out.extend(fmt(row) for row in body)
    out.append(line("="))
    for note in result.notes:
        out.append(f"  note: {note}")
    return "\n".join(out)


def render_key_value(title: str, rows: list[tuple[str, str]]) -> str:
    """Render a two-column parameter table (Tables 1-4 style)."""
    width = max(len(k) for k, _ in rows)
    out = [f"== {title} =="]
    out.extend(f"  {k.ljust(width)} : {v}" for k, v in rows)
    return "\n".join(out)
