"""Experiment harness: drivers for every table and figure of the paper."""

from .experiments import (
    GPU_NAMES,
    clear_experiment_cache,
    fig1_compaction_breakdown,
    fig9_normalized_energy,
    fig10_normalized_time,
    fig11_basic_vs_enhanced,
    fig12_grouping_coalescing,
    fig13_bandwidth_utilization,
    headline_summary,
    table1_scu_parameters,
    table2_scu_scalability,
    table3_table4_gpu_parameters,
    table5_datasets,
)
from .expectations import (
    EXPECTATIONS,
    Expectation,
    expectations_for,
    get_expectation,
    headline_value,
    parse_measurement,
    scoreboard_experiments,
)
from .export import export_all, load_json, save_csv, save_json
from .registry import EXPERIMENTS, run_all, run_experiment
from .results import ExperimentResult, normalized, speedup
from .tables import render_key_value, render_table

__all__ = [
    "GPU_NAMES",
    "ExperimentResult",
    "normalized",
    "speedup",
    "render_table",
    "render_key_value",
    "EXPERIMENTS",
    "EXPECTATIONS",
    "Expectation",
    "expectations_for",
    "get_expectation",
    "headline_value",
    "parse_measurement",
    "scoreboard_experiments",
    "run_experiment",
    "run_all",
    "clear_experiment_cache",
    "export_all",
    "save_json",
    "save_csv",
    "load_json",
    "fig1_compaction_breakdown",
    "fig9_normalized_energy",
    "fig10_normalized_time",
    "fig11_basic_vs_enhanced",
    "fig12_grouping_coalescing",
    "fig13_bandwidth_utilization",
    "table1_scu_parameters",
    "table2_scu_scalability",
    "table3_table4_gpu_parameters",
    "table5_datasets",
    "headline_summary",
]
