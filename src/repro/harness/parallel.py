"""Parallel sweep engine for the experiment grid.

Every cell of the paper's (algorithm x dataset x GPU x system-mode)
grid is an independent simulation — the embarrassingly parallel shape
the bench runner and figure drivers used to walk strictly serially.
This module shards cells across worker processes while keeping the
serial path's exact semantics:

* **Deterministic merging** — results are re-assembled in grid order by
  cell index, regardless of completion order, so ``--jobs N`` produces
  byte-identical simulated metrics and scoreboard rows for every N.
* **Per-cell timeout and bounded retry** — a worker that hangs past the
  deadline is terminated and the cell retried; a worker that dies (OOM
  kill, hard crash) is detected via its exit without a result.  When
  the retry budget is exhausted the cell falls back to in-process
  execution, so one pathological cell degrades to the serial behaviour
  instead of sinking the sweep.
* **Merged observability** — each worker runs its cell under a fresh
  :class:`~repro.obs.metrics.MetricsRegistry`; callers merge the
  returned ``flat_snapshot`` payloads with
  :func:`~repro.obs.metrics.merge_flat_snapshots`.

The engine itself (:func:`run_sweep`) is generic over a picklable task
list and a module-level worker callable, which is what the crash/timeout
tests drive; :func:`sweep_cells` instantiates it for simulation cells
and primes the shared experiment cache with the reports that come back.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..algorithms.common import SystemMode
from ..algorithms.runner import execute_request
from ..errors import ExperimentError
from ..graph.datasets import load_dataset
from ..obs import global_metrics, make_observability
from ..obs.propagation import new_span_id
from ..obs.spans import (
    SpanRecord,
    perf_to_epoch_us,
    reparent_spans,
    spans_from_tracer,
)
from ..phases import RunReport
from ..request import RunRequest
from .experiments import prime_experiment_cache

#: How long the scheduler sleeps waiting for worker results (seconds).
_POLL_TICK_S = 0.05

#: Grace period for terminating a timed-out worker before SIGKILL.
_TERMINATE_GRACE_S = 2.0


# ---------------------------------------------------------------------------
# The generic process-pool scheduler
# ---------------------------------------------------------------------------


class SweepFailure(ExperimentError):
    """A task failed in workers and the in-process fallback was disabled.

    Raised by :func:`run_sweep` with ``fallback=False`` once a task's
    retry budget is exhausted.  ``reason`` is one of ``"timeout"``,
    ``"crashed"``, or ``"error"``; ``detail`` carries the worker's
    formatted exception when one was reported.  Long-lived callers (the
    ``repro serve`` service) use this to turn a killed or deadlined
    worker into a deterministic error response instead of re-running
    the task in-process.
    """

    def __init__(
        self,
        *,
        index: int,
        attempts: int,
        reason: str,
        detail: Optional[str] = None,
    ):
        message = f"task {index} {reason} after {attempts} attempt(s)"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.index = index
        self.attempts = attempts
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class SweepOutcome:
    """One task's result plus how it was obtained."""

    index: int
    value: Any
    attempts: int  # total executions, including the successful one
    worker_pid: int  # pid that produced the value (parent pid on fallback)
    duration_s: float  # wall-clock of the successful execution
    fell_back: bool  # True when retries ran out and the parent ran it


@dataclass
class _Slot:
    """One live worker process and the task it is executing."""

    index: int
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: Any  # parent end of the result pipe
    started_at: float

    def deadline_exceeded(self, timeout_s: Optional[float]) -> bool:
        if timeout_s is None:
            return False
        return time.perf_counter() - self.started_at > timeout_s


def _child_main(worker: Callable[[Any], Any], task: Any, conn) -> None:
    """Worker-process entry: run the task, ship the result over the pipe."""
    try:
        conn.send(("ok", worker(task)))
    except BaseException as error:  # noqa: BLE001 — report, parent decides
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (OSError, ValueError):  # unpicklable error or closed pipe
            pass
    finally:
        conn.close()


def _mp_context():
    """Fork where available (Linux): workers inherit sys.path and imports."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _stop_process(process: multiprocessing.process.BaseProcess) -> None:
    process.terminate()
    process.join(_TERMINATE_GRACE_S)
    if process.is_alive():
        process.kill()
        process.join(_TERMINATE_GRACE_S)


def run_sweep(
    tasks: Sequence[Any],
    worker: Callable[[Any], Any],
    *,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[SweepOutcome, int, int], None]] = None,
    fallback: bool = True,
) -> List[SweepOutcome]:
    """Run ``worker`` over ``tasks``, at most ``jobs`` at a time.

    Returns one :class:`SweepOutcome` per task **in task order** — the
    merge-determinism invariant every caller relies on.  ``jobs <= 1``
    executes in-process with no multiprocessing involved at all.  A
    worker that crashes, errors, or exceeds ``timeout_s`` is retried up
    to ``retries`` extra times in a fresh process; after that the task
    runs in-process, where a genuine error finally propagates.  With
    ``fallback=False`` the exhausted task raises :class:`SweepFailure`
    instead — a hung task stays killed rather than being re-run without
    a deadline (the behaviour a per-request service timeout needs).

    ``worker`` must be a module-level callable and each task (and each
    result) must be picklable.
    """
    tasks = list(tasks)
    total = len(tasks)
    results: List[Optional[SweepOutcome]] = [None] * total
    done = 0

    def finish(outcome: SweepOutcome) -> None:
        nonlocal done
        results[outcome.index] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    def run_inline(index: int, attempts_before: int, fell_back: bool) -> None:
        started = time.perf_counter()
        value = worker(tasks[index])
        finish(
            SweepOutcome(
                index=index,
                value=value,
                attempts=attempts_before + 1,
                worker_pid=os.getpid(),
                duration_s=time.perf_counter() - started,
                fell_back=fell_back,
            )
        )

    if jobs <= 1:
        for index in range(total):
            run_inline(index, 0, False)
        return [outcome for outcome in results if outcome is not None]

    ctx = _mp_context()
    queue: deque = deque((index, 1) for index in range(total))  # (index, attempt)
    slots: List[_Slot] = []

    def launch(index: int, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main,
            args=(worker, tasks[index], child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        slots.append(
            _Slot(
                index=index,
                attempt=attempt,
                process=process,
                conn=parent_conn,
                started_at=time.perf_counter(),
            )
        )

    def fail(slot: _Slot, reason: str, detail: Optional[str] = None) -> None:
        """Retry a failed slot's task, fall back in-process, or raise."""
        if slot.attempt <= retries:
            queue.append((slot.index, slot.attempt + 1))
        elif fallback:
            run_inline(slot.index, slot.attempt, True)
        else:
            raise SweepFailure(
                index=slot.index,
                attempts=slot.attempt,
                reason=reason,
                detail=detail,
            )

    try:
        while queue or slots:
            while queue and len(slots) < jobs:
                launch(*queue.popleft())
            ready = multiprocessing.connection.wait(
                [slot.conn for slot in slots], timeout=_POLL_TICK_S
            )
            ready_set = set(ready)
            for slot in list(slots):
                if slot.conn in ready_set:
                    try:
                        status, payload = slot.conn.recv()
                    except (EOFError, OSError):
                        status, payload = "crashed", None
                    slot.conn.close()
                    slot.process.join()
                    slots.remove(slot)
                    if status == "ok":
                        finish(
                            SweepOutcome(
                                index=slot.index,
                                value=payload,
                                attempts=slot.attempt,
                                worker_pid=slot.process.pid or 0,
                                duration_s=time.perf_counter() - slot.started_at,
                                fell_back=False,
                            )
                        )
                    else:
                        detail = payload if status == "error" else None
                        fail(slot, "crashed" if payload is None else "error", detail)
                elif not slot.process.is_alive():
                    # Died without sending a result (hard crash, os._exit).
                    slot.conn.close()
                    slot.process.join()
                    slots.remove(slot)
                    fail(slot, "crashed")
                elif slot.deadline_exceeded(timeout_s):
                    _stop_process(slot.process)
                    slot.conn.close()
                    slots.remove(slot)
                    fail(slot, "timeout")
    finally:
        for slot in slots:  # non-empty when a fallback or SweepFailure raised
            _stop_process(slot.process)
            slot.conn.close()

    return [outcome for outcome in results if outcome is not None]


# ---------------------------------------------------------------------------
# Simulation cells: the concrete worker the bench and scoreboard share
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One simulated grid cell, picklable for worker dispatch.

    ``kwargs`` is the sorted tuple form of the extra driver arguments
    (e.g. Figure 12's ``enable_grouping=False``) so the cell hashes and
    matches :func:`~repro.harness.experiments.experiment_key` exactly.
    ``reps`` > 0 additionally measures that many wall-clock repetitions
    (plus one discarded warmup rep) of un-memoized runs.
    """

    algorithm: str
    dataset: str
    gpu: str
    mode: SystemMode
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    reps: int = 0
    #: Ship per-phase span records back with the payload (distributed
    #: tracing).  Off by default: bench sweeps don't pay the pipe cost.
    collect_spans: bool = False

    def request(self) -> RunRequest:
        """The canonical :class:`~repro.request.RunRequest` of this cell."""
        return RunRequest.make(
            self.algorithm, self.dataset, self.gpu, self.mode, **dict(self.kwargs)
        )

    @property
    def key(self) -> Tuple:
        return self.request().cache_key()

    def label(self) -> str:
        return f"{self.algorithm}/{self.dataset}/{self.gpu}/{self.mode.value}"


@dataclass(frozen=True)
class CellPayload:
    """What one executed cell sends back to the scheduler."""

    report: RunReport
    wall_samples: Tuple[float, ...]  # empty when reps == 0
    warmup_s: Optional[float]  # discarded first rep; None when reps == 0
    metrics: Tuple[dict, ...] = ()  # worker registry flat_snapshot payload
    #: Wire-form span records of the observed run (``collect_spans``
    #: only).  Trace-less (``trace_id=""``) until the parent re-parents
    #: them under its own trace — the cross-process stitching protocol.
    spans: Tuple[dict, ...] = ()
    #: Per-cell wall-clock inside a grouped (batched) task, where the
    #: scheduler-side duration covers the whole group.  None for cells
    #: dispatched individually.
    elapsed_s: Optional[float] = None


def simulate_cell(cell: SweepCell) -> CellPayload:
    """Execute one grid cell: optional timed reps, then the observed run.

    This is the module-level worker :func:`run_sweep` dispatches; it is
    also what the serial (``jobs=1``) path runs, so both paths execute
    identical code on identical inputs — determinism by construction.
    The first wall-clock rep is a *warmup* (dataset-generation caches,
    numpy allocator pools) measured separately and excluded from the
    recorded samples.
    """
    request = cell.request()
    # Pre-warm the dataset cache so the timed repetitions measure the
    # simulation, not graph generation (subsequent loads are dict hits).
    load_dataset(request.dataset, seed=request.seed)
    return _cell_payload(cell)


def simulate_cell_group(cells: Tuple[SweepCell, ...]) -> Tuple[CellPayload, ...]:
    """Sweep worker for a batch of cells sharing one dataset.

    The dataset is loaded (generated) **once** for the whole group — the
    cross-request amortization of the batched runner, applied to the
    sweep: without grouping, every forked worker regenerates the graph
    for every cell it runs.  Each cell still executes the exact
    :func:`simulate_cell` body, so simulated metrics and reports are
    byte-identical to the ungrouped sweep (pinned by tests).
    """
    if cells:
        request = cells[0].request()
        load_dataset(request.dataset, seed=request.seed)
    payloads = []
    for cell in cells:
        started = time.perf_counter()
        payload = _cell_payload(cell)
        payloads.append(
            replace(payload, elapsed_s=time.perf_counter() - started)
        )
    return tuple(payloads)


def _cell_payload(cell: SweepCell) -> CellPayload:
    """The per-cell execution body shared by both sweep workers."""
    request = cell.request()
    warmup_s: Optional[float] = None
    samples: List[float] = []
    if cell.reps > 0:
        started = time.perf_counter()
        execute_request(request)
        warmup_s = time.perf_counter() - started
        for _ in range(cell.reps):
            started = time.perf_counter()
            execute_request(request)
            samples.append(time.perf_counter() - started)
    # Stamp before creating the tracer: its relative clock (ts=0) starts
    # at Tracer() construction, and base_us must anchor that instant.
    observed_started = time.perf_counter()
    obs = make_observability()
    report = execute_request(request, obs=obs).report
    metrics = obs.metrics.flat_snapshot() + global_metrics().flat_snapshot()
    spans: Tuple[dict, ...] = ()
    if cell.collect_spans:
        spans = tuple(
            span.to_dict()
            for span in spans_from_tracer(
                obs.tracer,
                trace_id="",
                parent_id=None,
                base_us=perf_to_epoch_us(observed_started),
                process=f"worker-{os.getpid()}",
            )
        )
    return CellPayload(
        report=report,
        wall_samples=tuple(samples),
        warmup_s=warmup_s,
        metrics=tuple(metrics),
        spans=spans,
    )


@dataclass(frozen=True)
class CellOutcome:
    """A :class:`SweepOutcome` specialized to simulation cells."""

    cell: SweepCell
    payload: CellPayload
    attempts: int
    worker_pid: int
    duration_s: float
    fell_back: bool


def sweep_cells(
    cells: Sequence[SweepCell],
    *,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[["CellOutcome", int, int], None]] = None,
    prime_cache: bool = True,
    batch_datasets: bool = False,
) -> List[CellOutcome]:
    """Simulate every cell (``jobs``-wide) and return grid-ordered results.

    With ``prime_cache`` (the default) every returned report is also
    installed in the shared experiment cache under its canonical key, so
    figure drivers and the scoreboard sweep that follow are cache hits.

    With ``batch_datasets`` cells sharing a dataset are dispatched as
    ONE sweep task (:func:`simulate_cell_group`): the graph is generated
    once per group instead of once per cell per worker.  Results are
    still returned in grid order with byte-identical reports and
    simulated metrics; note ``timeout_s`` then bounds a whole group.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    cells = list(cells)
    if batch_datasets:
        return _sweep_cell_groups(
            cells,
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            progress=progress,
            prime_cache=prime_cache,
        )
    wrapped: Optional[Callable[[SweepOutcome, int, int], None]] = None
    if progress is not None:

        def wrapped(outcome: SweepOutcome, done: int, total: int) -> None:
            progress(_to_cell_outcome(cells, outcome), done, total)

    outcomes = run_sweep(
        cells,
        simulate_cell,
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        progress=wrapped,
    )
    cell_outcomes = [_to_cell_outcome(cells, outcome) for outcome in outcomes]
    if prime_cache:
        for result in cell_outcomes:
            prime_experiment_cache(result.cell.key, result.payload.report)
    return cell_outcomes


def _sweep_cell_groups(
    cells: List[SweepCell],
    *,
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
    progress: Optional[Callable[["CellOutcome", int, int], None]],
    prime_cache: bool,
) -> List[CellOutcome]:
    """The ``batch_datasets`` dispatch path of :func:`sweep_cells`."""
    groups: dict = {}
    for index, cell in enumerate(cells):
        groups.setdefault(cell.dataset, []).append(index)
    group_indices = list(groups.values())
    tasks = [tuple(cells[i] for i in indices) for indices in group_indices]
    done_cells = 0

    def report_group(outcome: SweepOutcome, _done: int, _total: int) -> None:
        nonlocal done_cells
        if progress is None:
            return
        for cell_outcome in _to_group_outcomes(
            tasks[outcome.index], outcome
        ):
            done_cells += 1
            progress(cell_outcome, done_cells, len(cells))

    outcomes = run_sweep(
        tasks,
        simulate_cell_group,
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        progress=report_group if progress is not None else None,
    )
    results: List[Optional[CellOutcome]] = [None] * len(cells)
    for outcome, indices in zip(outcomes, group_indices):
        for cell_outcome, index in zip(
            _to_group_outcomes(tasks[outcome.index], outcome), indices
        ):
            results[index] = cell_outcome
    cell_outcomes = [outcome for outcome in results if outcome is not None]
    if prime_cache:
        for result in cell_outcomes:
            prime_experiment_cache(result.cell.key, result.payload.report)
    return cell_outcomes


def _to_group_outcomes(
    group: Tuple[SweepCell, ...], outcome: SweepOutcome
) -> List[CellOutcome]:
    """Unpack one grouped task's payload tuple into per-cell outcomes."""
    return [
        CellOutcome(
            cell=cell,
            payload=payload,
            attempts=outcome.attempts,
            worker_pid=outcome.worker_pid,
            duration_s=(
                payload.elapsed_s
                if payload.elapsed_s is not None
                else outcome.duration_s
            ),
            fell_back=outcome.fell_back,
        )
        for cell, payload in zip(group, outcome.value)
    ]


def _to_cell_outcome(cells: Sequence[SweepCell], outcome: SweepOutcome) -> CellOutcome:
    return CellOutcome(
        cell=cells[outcome.index],
        payload=outcome.value,
        attempts=outcome.attempts,
        worker_pid=outcome.worker_pid,
        duration_s=outcome.duration_s,
        fell_back=outcome.fell_back,
    )


def stitch_cell_spans(
    outcomes: Sequence[CellOutcome],
    *,
    trace_id: str,
    parent_id: Optional[str] = None,
) -> List[SpanRecord]:
    """Assemble sweep outcomes into one trace's span list.

    Each cell contributes a ``sweep.cell`` span (under ``parent_id``)
    that brackets the worker's per-phase spans, which are adopted into
    ``trace_id`` via :func:`~repro.obs.spans.reparent_spans`.  Workers
    are forked, so their absolute wall-clock timestamps line up with
    the parent's without any shifting; a cell that was retried after a
    crash carries only its *successful* attempt's spans, with the
    attempt count on the cell span.
    """
    stitched: List[SpanRecord] = []
    for outcome in outcomes:
        cell_span_id = new_span_id()
        children = reparent_spans(
            outcome.payload.spans,
            trace_id=trace_id,
            parent_id=cell_span_id,
            source=f"cell {outcome.cell.label()}",
        )
        if children:
            start_us = min(child.start_us for child in children)
            end_us = max(child.end_us for child in children)
        else:  # no spans shipped (collect_spans off, or an empty tracer)
            end_us = time.time() * 1e6
            start_us = end_us - outcome.duration_s * 1e6
        stitched.append(
            SpanRecord(
                trace_id=trace_id,
                span_id=cell_span_id,
                parent_id=parent_id,
                name="sweep.cell",
                category="sweep",
                process="sweep",
                start_us=start_us,
                duration_us=max(0.0, end_us - start_us),
                attributes={
                    "label": outcome.cell.label(),
                    "attempts": outcome.attempts,
                    "worker_pid": outcome.worker_pid,
                    "fell_back": outcome.fell_back,
                },
            )
        )
        stitched.extend(children)
    return stitched
