"""Registry mapping experiment ids to their drivers.

``run_experiment("fig9")`` reproduces one artifact; ``run_all()`` walks
the whole evaluation section.  The benchmark suite and the
``reproduce_paper.py`` example are thin wrappers over this registry.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ExperimentError
from .experiments import (
    fig1_compaction_breakdown,
    fig9_normalized_energy,
    fig10_normalized_time,
    fig11_basic_vs_enhanced,
    fig12_grouping_coalescing,
    fig13_bandwidth_utilization,
    headline_summary,
    iru_head_to_head,
    table1_scu_parameters,
    table2_scu_scalability,
    table3_table4_gpu_parameters,
    table5_datasets,
)
from .results import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_compaction_breakdown,
    "fig9": fig9_normalized_energy,
    "fig10": fig10_normalized_time,
    "fig11": fig11_basic_vs_enhanced,
    "fig12": fig12_grouping_coalescing,
    "fig13": fig13_bandwidth_utilization,
    "table1": table1_scu_parameters,
    "table2": table2_scu_scalability,
    "table3/4": table3_table4_gpu_parameters,
    "table5": table5_datasets,
    "headline": headline_summary,
    # follow-on proposal: SCU vs IRU head-to-head (arXiv 2007.07131)
    "iru": iru_head_to_head,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by its paper artifact id (e.g. ``"fig9"``)."""
    if experiment_id not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise ExperimentError(f"unknown experiment {experiment_id!r}; known: {known}")
    return EXPERIMENTS[experiment_id](**kwargs)


def run_all(**kwargs) -> Dict[str, ExperimentResult]:
    """Reproduce every table and figure; returns results keyed by id."""
    return {exp_id: EXPERIMENTS[exp_id]() for exp_id in EXPERIMENTS}
