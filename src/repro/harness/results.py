"""Result containers for the experiment harness.

Every experiment driver returns an :class:`ExperimentResult`: a table
(column names + rows) plus free-form notes, with helpers for the
normalizations the paper's figures use (everything is relative to the
GPU-only baseline of the same GPU system).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ExperimentError


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ExperimentError(
                f"{self.experiment_id}: row has {len(values)} values, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"{self.experiment_id}: no column {name!r}")
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def lookup(self, **filters) -> list:
        """Rows (as dicts) matching all column=value filters."""
        cols = list(self.columns)
        for key in filters:
            if key not in cols:
                raise ExperimentError(f"{self.experiment_id}: no column {key!r}")
        out = []
        for row in self.rows:
            record = dict(zip(cols, row))
            if all(record[k] == v for k, v in filters.items()):
                out.append(record)
        return out


def normalized(value: float, baseline: float) -> float:
    """Paper-style normalization (baseline = 1.0)."""
    if baseline <= 0:
        raise ExperimentError(f"cannot normalize against baseline {baseline}")
    return value / baseline


def speedup(baseline: float, improved: float) -> float:
    if improved <= 0:
        raise ExperimentError(f"cannot compute speedup over {improved}")
    return baseline / improved
