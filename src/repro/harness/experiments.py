"""Experiment drivers — one per table and figure of the paper.

Every driver sweeps (a subset of) the paper's grid of primitives x
datasets x GPU systems x system variants, pulls the phase-level reports
apart, and returns an :class:`~repro.harness.results.ExperimentResult`
whose rows mirror the original artifact.  Runs are memoized per process
so assembling all figures costs one sweep.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..algorithms.common import SystemMode
from ..algorithms.runner import ALGORITHM_NAMES, execute_request
from ..core.config import SCU_CONFIGS
from ..gpu.config import GPU_SYSTEMS
from ..graph.analysis import graph_stats
from ..graph.datasets import DATASET_NAMES, load_dataset
from ..obs import LruCache
from ..phases import Engine, PhaseKind, RunReport
from ..request import RunRequest
from ..utils import geometric_mean
from .results import ExperimentResult

GPU_NAMES: Tuple[str, ...] = ("GTX980", "TX1")

#: Bound of the shared experiment-report cache.  The full paper grid is
#: 3 algorithms x 6 datasets x 2 GPUs x 3 system modes (108 cells) plus
#: Figure 12's filtering-only variants; 256 holds a complete sweep —
#: so assembling all figures still costs one simulation per cell —
#: while keeping a long-lived process (repeated ``bench --compare``
#: invocations, a service embedding the harness) at bounded memory.
EXPERIMENT_CACHE_SIZE = 256

_MEMO = LruCache(EXPERIMENT_CACHE_SIZE, metrics_prefix="experiments.cache")


def experiment_key(
    algorithm: str, dataset: str, gpu_name: str, mode: SystemMode, **kwargs
) -> Tuple:
    """Canonical cache key of one simulated grid cell.

    A thin convenience over :meth:`~repro.request.RunRequest.cache_key`
    — the one key derivation shared with the runner's whole-run cache,
    the parallel sweep engine, and the ``repro serve`` service.  The
    sweep engine primes the cache under the same keys the figure
    drivers read, so the scoreboard sweep after a parallel bench is
    pure cache hits.
    """
    return RunRequest.make(algorithm, dataset, gpu_name, mode, **kwargs).cache_key()


def _run(
    algorithm: str,
    dataset: str,
    gpu_name: str,
    mode: SystemMode,
    obs=None,
    **kwargs,
) -> RunReport:
    """Memoized simulation run on a registry dataset.

    ``obs`` threads an observability bundle into the run on a cache
    miss; it is deliberately excluded from the memo key because tracing
    is passive (the A/B determinism suite guarantees identical reports
    with and without it).  The bench runner uses this to collect a
    metrics snapshot while priming the same memo the figure drivers
    read.
    """
    request = RunRequest.make(algorithm, dataset, gpu_name, mode, **kwargs)
    key = request.cache_key()
    report = _MEMO.get(key)
    if report is None:
        report = execute_request(request, obs=obs).report
        _MEMO.put(key, report)
    return report


def prime_experiment_cache(key: Tuple, report: RunReport) -> None:
    """Install a report computed elsewhere (a sweep worker) under ``key``."""
    _MEMO.put(key, report)


def experiment_cache_len() -> int:
    return len(_MEMO)


def clear_experiment_cache() -> None:
    _MEMO.clear()


def _mode_for(algorithm: str, mode: SystemMode) -> SystemMode:
    """PR does not use enhanced capabilities (Section 4.6)."""
    if algorithm == "pagerank" and mode is SystemMode.SCU_ENHANCED:
        return SystemMode.SCU_BASIC
    return mode


# ---------------------------------------------------------------------------
# Figure 1 — execution-time breakdown of the GPU-only baseline
# ---------------------------------------------------------------------------


def fig1_compaction_breakdown(
    *,
    datasets: Sequence[str] = DATASET_NAMES,
    gpus: Sequence[str] = GPU_NAMES,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
) -> ExperimentResult:
    """% of GPU-baseline time spent on stream compaction (Figure 1)."""
    result = ExperimentResult(
        "fig1",
        "Breakdown of execution time: stream compaction vs rest (GPU baseline)",
        ("algorithm", "gpu", "compaction_pct", "rest_pct"),
    )
    for algorithm in algorithms:
        for gpu in gpus:
            fractions = [
                _run(algorithm, ds, gpu, SystemMode.GPU).compaction_time_fraction()
                for ds in datasets
            ]
            pct = 100.0 * sum(fractions) / len(fractions)
            result.add_row(algorithm, gpu, pct, 100.0 - pct)
    result.add_note("paper: compaction takes 25-55% of execution time")
    return result


# ---------------------------------------------------------------------------
# Figures 9 and 10 — normalized energy / time with GPU-vs-SCU split
# ---------------------------------------------------------------------------


def _normalized_sweep(
    metric: str,
    *,
    datasets: Sequence[str],
    gpus: Sequence[str],
    algorithms: Sequence[str],
) -> ExperimentResult:
    figure = "fig9" if metric == "energy" else "fig10"
    what = "energy" if metric == "energy" else "execution time"
    result = ExperimentResult(
        figure,
        f"Normalized {what} of the SCU-enhanced system (baseline GPU = 1.0)",
        ("algorithm", "gpu", "dataset", "normalized", "gpu_share", "scu_share"),
    )
    for algorithm in algorithms:
        for gpu in gpus:
            for ds in datasets:
                base = _run(algorithm, ds, gpu, SystemMode.GPU)
                enh = _run(algorithm, ds, gpu, _mode_for(algorithm, SystemMode.SCU_ENHANCED))
                if metric == "energy":
                    base_total = base.total_energy_j()
                    gpu_part = enh.dynamic_energy_j(engine=Engine.GPU)
                    scu_part = enh.dynamic_energy_j(engine=Engine.SCU)
                    # static energy split by busy time share
                    total_time = enh.time_s()
                    if total_time > 0:
                        gpu_part += enh.static_energy_j * enh.time_s(engine=Engine.GPU) / total_time
                        scu_part += enh.static_energy_j * enh.time_s(engine=Engine.SCU) / total_time
                    enh_total = enh.total_energy_j()
                else:
                    base_total = base.time_s()
                    gpu_part = enh.time_s(engine=Engine.GPU)
                    scu_part = enh.time_s(engine=Engine.SCU)
                    enh_total = enh.time_s()
                normalized_total = enh_total / base_total
                result.add_row(
                    algorithm,
                    gpu,
                    ds,
                    normalized_total,
                    normalized_total * (gpu_part / enh_total if enh_total else 0.0),
                    normalized_total * (scu_part / enh_total if enh_total else 0.0),
                )
    return result


def fig9_normalized_energy(
    *,
    datasets: Sequence[str] = DATASET_NAMES,
    gpus: Sequence[str] = GPU_NAMES,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
) -> ExperimentResult:
    """Figure 9: normalized energy per primitive/dataset/GPU with split."""
    result = _normalized_sweep(
        "energy", datasets=datasets, gpus=gpus, algorithms=algorithms
    )
    result.add_note("paper averages: 6.55x (GTX980) and 3.24x (TX1) energy reduction")
    return result


def fig10_normalized_time(
    *,
    datasets: Sequence[str] = DATASET_NAMES,
    gpus: Sequence[str] = GPU_NAMES,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
) -> ExperimentResult:
    """Figure 10: normalized execution time per primitive/dataset/GPU."""
    result = _normalized_sweep(
        "time", datasets=datasets, gpus=gpus, algorithms=algorithms
    )
    result.add_note("paper averages: 1.37x (GTX980) and 2.32x (TX1) speedup")
    return result


# ---------------------------------------------------------------------------
# Figure 11 — basic vs enhanced SCU breakdown
# ---------------------------------------------------------------------------


def fig11_basic_vs_enhanced(
    *,
    datasets: Sequence[str] = DATASET_NAMES,
    gpus: Sequence[str] = GPU_NAMES,
    algorithms: Sequence[str] = ("bfs", "sssp"),
) -> ExperimentResult:
    """Figure 11: speedup & energy-reduction split into basic / enhanced."""
    result = ExperimentResult(
        "fig11",
        "Speedup and energy reduction: basic SCU vs + filtering/grouping",
        (
            "algorithm",
            "gpu",
            "speedup_basic",
            "speedup_enhanced",
            "energy_reduction_basic",
            "energy_reduction_enhanced",
        ),
    )
    for algorithm in algorithms:
        for gpu in gpus:
            speed_b, speed_e, energy_b, energy_e = [], [], [], []
            for ds in datasets:
                base = _run(algorithm, ds, gpu, SystemMode.GPU)
                basic = _run(algorithm, ds, gpu, SystemMode.SCU_BASIC)
                enh = _run(algorithm, ds, gpu, SystemMode.SCU_ENHANCED)
                speed_b.append(base.time_s() / basic.time_s())
                speed_e.append(base.time_s() / enh.time_s())
                energy_b.append(base.total_energy_j() / basic.total_energy_j())
                energy_e.append(base.total_energy_j() / enh.total_energy_j())
            result.add_row(
                algorithm,
                gpu,
                geometric_mean(speed_b),
                geometric_mean(speed_e),
                geometric_mean(energy_b),
                geometric_mean(energy_e),
            )
    result.add_note("paper: basic SCU alone gives ~1.5x speedup, ~2x energy reduction")
    return result


# ---------------------------------------------------------------------------
# Figure 12 — coalescing improvement from grouping
# ---------------------------------------------------------------------------


def _processing_coalescing_factor(report: RunReport) -> float:
    phases = [
        p
        for p in report.select(engine=Engine.GPU, kind=PhaseKind.PROCESSING)
        if p.memory.transactions and "contract" in p.name
    ]
    accesses = sum(p.memory.accesses for p in phases)
    transactions = sum(p.memory.transactions for p in phases)
    return accesses / transactions if transactions else 0.0


def fig12_grouping_coalescing(
    *,
    datasets: Sequence[str] = DATASET_NAMES,
    gpu: str = "TX1",
) -> ExperimentResult:
    """Figure 12: memory-coalescing improvement of grouping (SSSP, TX1).

    Baseline is the enhanced SCU with filtering only, as in the paper.
    """
    result = ExperimentResult(
        "fig12",
        f"Improvement in memory coalescing from grouping (SSSP, {gpu})",
        ("dataset", "improvement_pct"),
    )
    improvements = []
    for ds in datasets:
        filter_only = _run(
            "sssp", ds, gpu, SystemMode.SCU_ENHANCED, enable_grouping=False
        )
        grouped = _run("sssp", ds, gpu, SystemMode.SCU_ENHANCED)
        before = _processing_coalescing_factor(filter_only)
        after = _processing_coalescing_factor(grouped)
        pct = 100.0 * (after / before - 1.0) if before else 0.0
        improvements.append(pct)
        result.add_row(ds, pct)
    result.add_row("AVG", sum(improvements) / len(improvements))
    result.add_note("paper: 27% average improvement")
    return result


# ---------------------------------------------------------------------------
# Figure 13 — memory bandwidth utilization
# ---------------------------------------------------------------------------


def fig13_bandwidth_utilization(
    *,
    datasets: Sequence[str] = DATASET_NAMES,
    gpus: Sequence[str] = GPU_NAMES,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
) -> ExperimentResult:
    """Figure 13: fraction of peak DRAM bandwidth each system sustains."""
    result = ExperimentResult(
        "fig13",
        "Memory bandwidth utilization (% of peak)",
        ("algorithm", "gpu", "system", "utilization_pct"),
    )
    for algorithm in algorithms:
        for gpu in gpus:
            peak = GPU_SYSTEMS[gpu].dram.peak_bandwidth_bps
            for mode, label in (
                (SystemMode.GPU, "GPU"),
                (SystemMode.SCU_ENHANCED, "SCU"),
            ):
                utilizations = []
                for ds in datasets:
                    report = _run(algorithm, ds, gpu, _mode_for(algorithm, mode))
                    elapsed = report.time_s()
                    if elapsed > 0:
                        utilizations.append(
                            100.0 * report.dram_bytes() / elapsed / peak
                        )
                result.add_row(
                    algorithm, gpu, label, sum(utilizations) / len(utilizations)
                )
    result.add_note("graph workloads fall far short of saturating DRAM bandwidth")
    return result


# ---------------------------------------------------------------------------
# Tables 1-5
# ---------------------------------------------------------------------------


def table1_scu_parameters() -> ExperimentResult:
    """Table 1: common SCU hardware parameters."""
    result = ExperimentResult(
        "table1", "SCU hardware parameters", ("parameter", "value")
    )
    for key, value in SCU_CONFIGS["GTX980"].describe_table1():
        result.add_row(key, value)
    return result


def table2_scu_scalability() -> ExperimentResult:
    """Table 2: per-GPU SCU scalability parameters."""
    result = ExperimentResult(
        "table2", "SCU scalability parameters", ("parameter", "GTX980", "TX1")
    )
    hp = dict(SCU_CONFIGS["GTX980"].describe_table2())
    lp = dict(SCU_CONFIGS["TX1"].describe_table2())
    for key in hp:
        result.add_row(key, hp[key], lp[key])
    return result


def table3_table4_gpu_parameters() -> ExperimentResult:
    """Tables 3 and 4: the two GPU system configurations."""
    result = ExperimentResult(
        "table3/4", "GPU system parameters", ("parameter", "GTX980", "TX1")
    )
    hp = dict(GPU_SYSTEMS["GTX980"].describe())
    lp = dict(GPU_SYSTEMS["TX1"].describe())
    for key in hp:
        result.add_row(key, hp[key], lp[key])
    return result


def table5_datasets(*, datasets: Sequence[str] = DATASET_NAMES) -> ExperimentResult:
    """Table 5: benchmark graph datasets (generated analogs, measured)."""
    from ..graph.datasets import DATASETS

    result = ExperimentResult(
        "table5",
        "Benchmark graph datasets (scaled analogs; paper scale in brackets)",
        ("graph", "description", "nodes_k", "edges_m", "avg_degree"),
    )
    for name in datasets:
        spec = DATASETS[name]
        stats = graph_stats(load_dataset(name))
        result.add_row(
            name,
            spec.description,
            f"{stats.num_nodes / 1e3:.1f} [{spec.paper_nodes_k:g}]",
            f"{stats.num_edges / 1e6:.3f} [{spec.paper_edges_m:g}]",
            f"{stats.average_degree:.1f} [{spec.paper_avg_degree:g}]",
        )
    return result


# ---------------------------------------------------------------------------
# SCU vs IRU head-to-head (follow-on proposal, arXiv 2007.07131)
# ---------------------------------------------------------------------------


def iru_head_to_head(
    *,
    datasets: Sequence[str] = DATASET_NAMES,
    gpus: Sequence[str] = GPU_NAMES,
    algorithms: Sequence[str] = ("bfs", "sssp"),
) -> ExperimentResult:
    """Head-to-head of the two accelerators against the GPU baseline.

    Per dataset class (geomean over traversal algorithms and GPUs):
    speedup and normalized energy of the IRU and the enhanced SCU, plus
    the IRU's coalescing-efficiency gain (accesses-per-transaction of
    the GPU-side phases vs the baseline) — the metric the reorder unit
    exists to move.  The SCU offloads compaction outright, so it should
    win every head-to-head; the IRU's counterargument is its order-of-
    magnitude smaller area (compare ``repro info``).
    """
    result = ExperimentResult(
        "iru",
        "IRU vs enhanced SCU vs GPU baseline (traversal geomeans)",
        (
            "dataset",
            "speedup_iru",
            "speedup_scu",
            "normalized_energy_iru",
            "normalized_energy_scu",
            "coalesce_gain_iru",
        ),
    )
    all_cells: dict[str, list] = {k: [] for k in
                                  ("si", "ss", "ei", "es", "ci")}
    for ds in datasets:
        cells: dict[str, list] = {k: [] for k in all_cells}
        for gpu in gpus:
            for algorithm in algorithms:
                base = _run(algorithm, ds, gpu, SystemMode.GPU)
                iru = _run(algorithm, ds, gpu, SystemMode.IRU)
                scu = _run(
                    algorithm, ds, gpu, _mode_for(algorithm, SystemMode.SCU_ENHANCED)
                )
                base_coalesce = base.memory(engine=Engine.GPU).coalescing_factor
                iru_coalesce = iru.memory(engine=Engine.GPU).coalescing_factor
                cells["si"].append(base.time_s() / iru.time_s())
                cells["ss"].append(base.time_s() / scu.time_s())
                cells["ei"].append(iru.total_energy_j() / base.total_energy_j())
                cells["es"].append(scu.total_energy_j() / base.total_energy_j())
                cells["ci"].append(iru_coalesce / base_coalesce)
        for k in all_cells:
            all_cells[k].extend(cells[k])
        result.add_row(
            ds,
            geometric_mean(cells["si"]),
            geometric_mean(cells["ss"]),
            geometric_mean(cells["ei"]),
            geometric_mean(cells["es"]),
            geometric_mean(cells["ci"]),
        )
    result.add_row(
        "AVG",
        geometric_mean(all_cells["si"]),
        geometric_mean(all_cells["ss"]),
        geometric_mean(all_cells["ei"]),
        geometric_mean(all_cells["es"]),
        geometric_mean(all_cells["ci"]),
    )
    result.add_note(
        "IRU paper reports ~1.3x average speedup at a far smaller area "
        "than the SCU; the SCU should win every head-to-head cell"
    )
    return result


# ---------------------------------------------------------------------------
# Headline summary (Section 6 numbers + area)
# ---------------------------------------------------------------------------


def headline_summary(
    *,
    datasets: Sequence[str] = DATASET_NAMES,
    gpus: Sequence[str] = GPU_NAMES,
) -> ExperimentResult:
    """The abstract's numbers: speedups, energy savings, area overhead."""
    result = ExperimentResult(
        "headline",
        "Headline results vs paper",
        ("metric", "gpu", "measured", "paper"),
    )
    paper = {
        ("speedup", "GTX980"): "1.37x",
        ("speedup", "TX1"): "2.32x",
        ("energy_savings", "GTX980"): "84.7%",
        ("energy_savings", "TX1"): "69%",
        ("area_overhead", "GTX980"): "3.3%",
        ("area_overhead", "TX1"): "4.1%",
        ("gpu_instr_reduction_bfs", "GTX980"): "~71%",
        ("gpu_instr_reduction_bfs", "TX1"): "~71%",
        ("gpu_instr_reduction_sssp", "GTX980"): "~76%",
        ("gpu_instr_reduction_sssp", "TX1"): "~76%",
    }
    for gpu in gpus:
        speedups, reductions = [], []
        for algorithm in ALGORITHM_NAMES:
            per_ds_speed, per_ds_energy = [], []
            for ds in datasets:
                base = _run(algorithm, ds, gpu, SystemMode.GPU)
                enh = _run(algorithm, ds, gpu, _mode_for(algorithm, SystemMode.SCU_ENHANCED))
                per_ds_speed.append(base.time_s() / enh.time_s())
                per_ds_energy.append(base.total_energy_j() / enh.total_energy_j())
            speedups.append(geometric_mean(per_ds_speed))
            reductions.append(geometric_mean(per_ds_energy))
        speed = geometric_mean(speedups)
        energy = geometric_mean(reductions)
        result.add_row("speedup", gpu, f"{speed:.2f}x", paper[("speedup", gpu)])
        result.add_row(
            "energy_savings",
            gpu,
            f"{100 * (1 - 1 / energy):.1f}%",
            paper[("energy_savings", gpu)],
        )
        scu = SCU_CONFIGS[gpu]
        area = 100 * scu.area_overhead_fraction(GPU_SYSTEMS[gpu].die_area_mm2)
        result.add_row("area_overhead", gpu, f"{area:.1f}%", paper[("area_overhead", gpu)])
        for algorithm in ("bfs", "sssp"):
            cuts = []
            for ds in datasets:
                base = _run(algorithm, ds, gpu, SystemMode.GPU)
                enh = _run(algorithm, ds, gpu, SystemMode.SCU_ENHANCED)
                base_instr = base.instructions(engine=Engine.GPU)
                enh_instr = enh.instructions(engine=Engine.GPU)
                if base_instr:
                    cuts.append(100.0 * (1 - enh_instr / base_instr))
            result.add_row(
                f"gpu_instr_reduction_{algorithm}",
                gpu,
                f"{sum(cuts) / len(cuts):.1f}%",
                paper[(f"gpu_instr_reduction_{algorithm}", gpu)],
            )
    return result
