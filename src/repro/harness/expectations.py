"""The paper's expected numbers, as one shared, checkable table.

Every quantitative target of the evaluation section — the abstract's
headline averages, the per-figure bands — used to live as hard-coded
asserts scattered through ``benchmarks/``.  This module is the single
source of truth instead: each :class:`Expectation` names the paper
artifact it belongs to, the paper's published value, the acceptance
band the scaled reproduction must land in, and how to extract the
measured value from that artifact's :class:`ExperimentResult`.

Consumers:

* the pytest benchmark suite (``benchmarks/test_headline.py``,
  ``test_fig*.py``) asserts ``check(extract(result))`` per expectation;
* the ``repro bench`` fidelity scoreboard renders the same table as a
  pass/fail report and embeds it in every ``BENCH_*.json`` artifact.

Extractors are defensive: when the sweep that produced the result was
restricted (quick grid, single GPU) and the rows an expectation needs
are absent, they return ``nan`` and the expectation reports *skipped*
rather than failing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import ExperimentError
from .results import ExperimentResult

INF = float("inf")


@dataclass(frozen=True)
class Expectation:
    """One paper target: published value plus reproduction acceptance band."""

    id: str  # "headline.speedup.GTX980"
    experiment: str  # ExperimentResult id this is checked against
    description: str
    paper_value: float  # the paper's published number
    units: str  # "x", "%", or ""
    lo: float  # exclusive acceptance band: lo < measured < hi
    hi: float
    extract: Callable[[ExperimentResult], float]

    def check(self, value: float) -> bool:
        """Whether a measured value lands inside the acceptance band."""
        if math.isnan(value):
            return False
        return self.lo < value < self.hi

    def paper_text(self) -> str:
        if math.isnan(self.paper_value):
            return "-"
        return f"{self.paper_value:g}{self.units}"

    def band_text(self) -> str:
        lo = "-inf" if self.lo == -INF else f"{self.lo:g}"
        hi = "inf" if self.hi == INF else f"{self.hi:g}"
        return f"({lo}, {hi})"


# ---------------------------------------------------------------------------
# extraction helpers
# ---------------------------------------------------------------------------


def parse_measurement(text: str) -> float:
    """``"1.37x"`` / ``"84.7%"`` / ``"~71%"`` -> float."""
    return float(str(text).strip().lstrip("~").rstrip("x%"))


def headline_value(result: ExperimentResult, metric: str, gpu: str) -> float:
    """The measured value of one (metric, gpu) cell of the headline table."""
    rows = result.lookup(metric=metric, gpu=gpu)
    if not rows:
        return float("nan")
    return parse_measurement(rows[0]["measured"])


def _column_where(
    result: ExperimentResult, column: str, **filters
) -> List[float]:
    return [float(r[column]) for r in result.lookup(**filters)]


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return float("nan")
    return sum(values) / len(values)


def _headline(metric: str, gpu: str):
    return lambda result: headline_value(result, metric, gpu)


def _mean_normalized(algorithm: str, gpu: str | None = None):
    def extract(result: ExperimentResult) -> float:
        filters = {"algorithm": algorithm}
        if gpu is not None:
            filters["gpu"] = gpu
        return _mean(_column_where(result, "normalized", **filters))

    return extract


def _traversal_max_normalized(result: ExperimentResult) -> float:
    values = _column_where(result, "normalized", algorithm="bfs")
    values += _column_where(result, "normalized", algorithm="sssp")
    return max(values) if values else float("nan")


def _bfs_vs_pagerank_energy(result: ExperimentResult) -> float:
    bfs = _mean(_column_where(result, "normalized", algorithm="bfs"))
    pr = _mean(_column_where(result, "normalized", algorithm="pagerank"))
    if math.isnan(bfs) or math.isnan(pr) or pr == 0:
        return float("nan")
    return bfs / pr


def _fig12_average(result: ExperimentResult) -> float:
    rows = result.lookup(dataset="AVG")
    return float(rows[0]["improvement_pct"]) if rows else float("nan")


def _fig12_minimum(result: ExperimentResult) -> float:
    values = [
        float(r["improvement_pct"])
        for r in result.lookup()
        if r["dataset"] != "AVG"
    ]
    return min(values) if values else float("nan")


def _fig11_column_min(column: str):
    def extract(result: ExperimentResult) -> float:
        values = [float(v) for v in result.column(column)]
        return min(values) if values else float("nan")

    return extract


def _fig1_mean_compaction(result: ExperimentResult) -> float:
    return _mean(float(v) for v in result.column("compaction_pct"))


def _fig13_max_utilization(result: ExperimentResult) -> float:
    values = [float(v) for v in result.column("utilization_pct")]
    return max(values) if values else float("nan")


def _iru_avg(column: str):
    def extract(result: ExperimentResult) -> float:
        rows = result.lookup(dataset="AVG")
        return float(rows[0][column]) if rows else float("nan")

    return extract


def _iru_min_coalesce_gain(result: ExperimentResult) -> float:
    values = [
        float(r["coalesce_gain_iru"])
        for r in result.lookup()
        if r["dataset"] != "AVG"
    ]
    return min(values) if values else float("nan")


def _iru_head_to_head(dataset: str):
    """SCU-over-IRU speedup ratio on one dataset class (> 1: SCU wins)."""

    def extract(result: ExperimentResult) -> float:
        rows = result.lookup(dataset=dataset)
        if not rows:
            return float("nan")
        iru = float(rows[0]["speedup_iru"])
        if iru == 0:
            return float("nan")
        return float(rows[0]["speedup_scu"]) / iru

    return extract


# ---------------------------------------------------------------------------
# the table
# ---------------------------------------------------------------------------

EXPECTATIONS: Tuple[Expectation, ...] = (
    # -- headline (abstract / Section 6 averages) --------------------------
    Expectation(
        "headline.speedup.GTX980", "headline",
        "geomean speedup, enhanced SCU, GTX980",
        1.37, "x", 1.15, INF, _headline("speedup", "GTX980"),
    ),
    Expectation(
        "headline.speedup.TX1", "headline",
        "geomean speedup, enhanced SCU, TX1",
        2.32, "x", 1.5, INF, _headline("speedup", "TX1"),
    ),
    Expectation(
        "headline.energy_savings.GTX980", "headline",
        "energy savings, enhanced SCU, GTX980",
        84.7, "%", 50.0, 100.0, _headline("energy_savings", "GTX980"),
    ),
    Expectation(
        "headline.energy_savings.TX1", "headline",
        "energy savings, enhanced SCU, TX1",
        69.0, "%", 45.0, 100.0, _headline("energy_savings", "TX1"),
    ),
    Expectation(
        "headline.area_overhead.GTX980", "headline",
        "SCU area overhead vs die, GTX980",
        3.3, "%", 2.8, 3.8, _headline("area_overhead", "GTX980"),
    ),
    Expectation(
        "headline.area_overhead.TX1", "headline",
        "SCU area overhead vs die, TX1",
        4.1, "%", 3.6, 4.6, _headline("area_overhead", "TX1"),
    ),
    Expectation(
        "headline.instr_reduction.bfs.GTX980", "headline",
        "GPU instructions removed by offload, BFS, GTX980",
        71.0, "%", 55.0, 100.0, _headline("gpu_instr_reduction_bfs", "GTX980"),
    ),
    Expectation(
        "headline.instr_reduction.bfs.TX1", "headline",
        "GPU instructions removed by offload, BFS, TX1",
        71.0, "%", 55.0, 100.0, _headline("gpu_instr_reduction_bfs", "TX1"),
    ),
    Expectation(
        "headline.instr_reduction.sssp.GTX980", "headline",
        "GPU instructions removed by offload, SSSP, GTX980",
        76.0, "%", 55.0, 100.0, _headline("gpu_instr_reduction_sssp", "GTX980"),
    ),
    Expectation(
        "headline.instr_reduction.sssp.TX1", "headline",
        "GPU instructions removed by offload, SSSP, TX1",
        76.0, "%", 55.0, 100.0, _headline("gpu_instr_reduction_sssp", "TX1"),
    ),
    # -- Figure 1 ----------------------------------------------------------
    Expectation(
        "fig1.compaction_share.mean", "fig1",
        "mean % of GPU-baseline time in stream compaction",
        40.0, "%", 15.0, 75.0, _fig1_mean_compaction,
    ),
    # -- Figure 9 ----------------------------------------------------------
    Expectation(
        "fig9.normalized_energy.traversal.max", "fig9",
        "worst BFS/SSSP normalized energy (every cell saves)",
        0.31, "", 0.0, 1.0, _traversal_max_normalized,
    ),
    Expectation(
        "fig9.normalized_energy.bfs_over_pagerank", "fig9",
        "BFS saves more energy than PR (mean ratio < 1)",
        0.12, "", 0.0, 1.0, _bfs_vs_pagerank_energy,
    ),
    # -- Figure 10 ---------------------------------------------------------
    Expectation(
        "fig10.normalized_time.traversal.max", "fig10",
        "worst BFS/SSSP normalized time (every cell speeds up)",
        0.73, "", 0.0, 1.0, _traversal_max_normalized,
    ),
    Expectation(
        "fig10.normalized_time.pagerank.GTX980", "fig10",
        "PR on GTX980 is the paper's one slowdown case",
        1.05, "", 1.0, 1.4, _mean_normalized("pagerank", "GTX980"),
    ),
    # -- Figure 11 ---------------------------------------------------------
    Expectation(
        "fig11.speedup.basic.min", "fig11",
        "basic SCU offload alone already wins (worst cell)",
        1.5, "x", 1.1, INF, _fig11_column_min("speedup_basic"),
    ),
    Expectation(
        "fig11.energy_reduction.basic.min", "fig11",
        "basic SCU energy reduction (worst cell)",
        2.0, "x", 1.2, INF, _fig11_column_min("energy_reduction_basic"),
    ),
    # -- Figure 12 ---------------------------------------------------------
    Expectation(
        "fig12.coalescing_improvement.avg", "fig12",
        "average coalescing improvement from grouping (SSSP)",
        27.0, "%", 10.0, 60.0, _fig12_average,
    ),
    Expectation(
        "fig12.coalescing_improvement.min", "fig12",
        "grouping improves coalescing on every dataset",
        float("nan"), "%", 0.0, INF, _fig12_minimum,
    ),
    # -- Figure 13 ---------------------------------------------------------
    Expectation(
        "fig13.bandwidth_utilization.max", "fig13",
        "graph workloads never saturate DRAM bandwidth",
        float("nan"), "%", 0.0, 90.0, _fig13_max_utilization,
    ),
    # -- IRU head-to-head (follow-on proposal, arXiv 2007.07131) -----------
    Expectation(
        "iru.speedup.avg", "iru",
        "geomean IRU traversal speedup over the GPU baseline",
        1.33, "x", 1.0, INF, _iru_avg("speedup_iru"),
    ),
    Expectation(
        "iru.normalized_energy.avg", "iru",
        "IRU reduces traversal energy on average (< 1)",
        float("nan"), "", 0.0, 1.0, _iru_avg("normalized_energy_iru"),
    ),
    Expectation(
        "iru.coalesce_gain.min", "iru",
        "reordering improves coalescing on every dataset class",
        float("nan"), "x", 1.0, INF, _iru_min_coalesce_gain,
    ),
    Expectation(
        "iru.head_to_head.ca", "iru",
        "SCU-over-IRU speedup ratio, ca (road network)",
        float("nan"), "x", 1.0, INF, _iru_head_to_head("ca"),
    ),
    Expectation(
        "iru.head_to_head.cond", "iru",
        "SCU-over-IRU speedup ratio, cond (collaboration network)",
        float("nan"), "x", 1.0, INF, _iru_head_to_head("cond"),
    ),
    Expectation(
        "iru.head_to_head.delaunay", "iru",
        "SCU-over-IRU speedup ratio, delaunay (triangulation)",
        float("nan"), "x", 1.0, INF, _iru_head_to_head("delaunay"),
    ),
    Expectation(
        "iru.head_to_head.human", "iru",
        "SCU-over-IRU speedup ratio, human (gene network)",
        float("nan"), "x", 1.0, INF, _iru_head_to_head("human"),
    ),
    Expectation(
        "iru.head_to_head.kron", "iru",
        "SCU-over-IRU speedup ratio, kron (synthetic Graph500)",
        float("nan"), "x", 1.0, INF, _iru_head_to_head("kron"),
    ),
    Expectation(
        "iru.head_to_head.msdoor", "iru",
        "SCU-over-IRU speedup ratio, msdoor (3D mesh)",
        float("nan"), "x", 1.0, INF, _iru_head_to_head("msdoor"),
    ),
)

_BY_ID: Dict[str, Expectation] = {e.id: e for e in EXPECTATIONS}


def get_expectation(expectation_id: str) -> Expectation:
    """Look one expectation up by id (raises on unknown ids)."""
    if expectation_id not in _BY_ID:
        raise ExperimentError(f"unknown expectation {expectation_id!r}")
    return _BY_ID[expectation_id]


def expectations_for(experiment_id: str) -> Tuple[Expectation, ...]:
    """Every expectation checked against one paper artifact."""
    return tuple(e for e in EXPECTATIONS if e.experiment == experiment_id)


def scoreboard_experiments() -> Tuple[str, ...]:
    """The experiment ids the fidelity scoreboard must reproduce."""
    seen: List[str] = []
    for expectation in EXPECTATIONS:
        if expectation.experiment not in seen:
            seen.append(expectation.experiment)
    return tuple(seen)
