"""3-D FEM mesh generator — analog of the ``msdoor`` dataset.

``msdoor`` is the stiffness matrix of a 3-D object mesh: very regular,
high average degree (~50–100 neighbours from high-order elements), and
excellent spatial locality.  We model it as a 3-D lattice in which every
node connects to all lattice neighbours within a Chebyshev radius,
giving the same dense-banded structure.
"""

from __future__ import annotations

import itertools

import numpy as np

from ...errors import GraphError
from ...utils import rng_from_seed
from ..builder import build_csr, random_weights
from ..csr import CsrGraph


def generate_mesh3d(
    dims: tuple[int, int, int] = (16, 16, 16),
    *,
    radius: int = 2,
    seed: int | np.random.Generator | None = None,
    name: str = "msdoor",
) -> CsrGraph:
    """Generate a 3-D lattice mesh with Chebyshev-radius connectivity.

    ``radius=2`` yields up to 124 neighbours per interior node, matching
    msdoor's ~97 average degree after boundary effects.
    """
    nx_, ny, nz = dims
    if min(dims) < 2:
        raise GraphError(f"all mesh dimensions must be >= 2, got {dims}")
    if radius < 1:
        raise GraphError(f"radius must be >= 1, got {radius}")
    rng = rng_from_seed(seed)

    num_nodes = nx_ * ny * nz
    ids = np.arange(num_nodes, dtype=np.int64).reshape(nx_, ny, nz)

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    offsets = [
        (dx, dy, dz)
        for dx, dy, dz in itertools.product(range(-radius, radius + 1), repeat=3)
        if (dx, dy, dz) > (0, 0, 0)  # half-space: symmetrization adds the rest
    ]
    for dx, dy, dz in offsets:
        sx = slice(max(0, -dx), nx_ - max(0, dx))
        sy = slice(max(0, -dy), ny - max(0, dy))
        sz = slice(max(0, -dz), nz - max(0, dz))
        tx = slice(max(0, dx), nx_ - max(0, -dx))
        ty = slice(max(0, dy), ny - max(0, -dy))
        tz = slice(max(0, dz), nz - max(0, -dz))
        src_parts.append(ids[sx, sy, sz].ravel())
        dst_parts.append(ids[tx, ty, tz].ravel())

    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    weights = random_weights(src.size, low=1, high=10, seed=rng)
    return build_csr(num_nodes, src, dst, weights, name=name, symmetrize=True)
