"""Road-network analog of the ``ca`` (California roads) dataset.

Road networks are near-planar, low-degree, high-diameter graphs.  We
model one as a jittered 2-D lattice: every intersection connects to its
grid neighbours, a fraction of edges are removed (dead ends, rivers),
and a small number of long-range shortcuts (highways) are added.  The
result matches the frontier dynamics that make road networks hard for
GPU BFS: many iterations, small frontiers, few duplicates.
"""

from __future__ import annotations

import numpy as np

from ...errors import GraphError
from ...utils import rng_from_seed
from ..builder import build_csr, random_weights
from ..csr import CsrGraph


def generate_road_network(
    side: int = 190,
    *,
    drop_fraction: float = 0.08,
    shortcut_fraction: float = 0.005,
    seed: int | np.random.Generator | None = None,
    name: str = "ca",
) -> CsrGraph:
    """Generate a road-network-like graph on a ``side x side`` lattice.

    Args:
        side: lattice dimension; the graph has ``side**2`` nodes.
        drop_fraction: fraction of lattice edges removed at random.
        shortcut_fraction: shortcuts added, as a fraction of node count.
    """
    if side < 2:
        raise GraphError(f"side must be >= 2, got {side}")
    if not 0.0 <= drop_fraction < 1.0:
        raise GraphError(f"drop_fraction must be in [0, 1), got {drop_fraction}")
    rng = rng_from_seed(seed)
    num_nodes = side * side
    ids = np.arange(num_nodes, dtype=np.int64).reshape(side, side)

    horizontal = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vertical = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    edges = np.concatenate([horizontal, vertical], axis=0)

    keep = rng.random(edges.shape[0]) >= drop_fraction
    edges = edges[keep]

    num_shortcuts = int(round(num_nodes * shortcut_fraction))
    if num_shortcuts:
        a = rng.integers(0, num_nodes, size=num_shortcuts)
        b = rng.integers(0, num_nodes, size=num_shortcuts)
        edges = np.concatenate([edges, np.stack([a, b], axis=1)], axis=0)

    weights = random_weights(edges.shape[0], low=1, high=10, seed=rng)
    return build_csr(
        num_nodes,
        edges[:, 0],
        edges[:, 1],
        weights,
        name=name,
        symmetrize=True,
    )
