"""Delaunay triangulation generator — analog of the ``delaunay`` dataset.

The DIMACS ``delaunay_n`` family triangulates uniformly random points in
the unit square; degrees are tightly concentrated around six and the
graph is planar, giving moderate frontier growth and good locality when
points are laid out spatially — the regime where grouping helps least.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from ...errors import GraphError
from ...utils import rng_from_seed
from ..builder import build_csr, random_weights
from ..csr import CsrGraph


def generate_delaunay(
    num_points: int = 16384,
    *,
    seed: int | np.random.Generator | None = None,
    name: str = "delaunay",
) -> CsrGraph:
    """Triangulate ``num_points`` random points; edges are triangle sides."""
    if num_points < 3:
        raise GraphError(f"need at least 3 points, got {num_points}")
    rng = rng_from_seed(seed)
    points = rng.random((num_points, 2))
    tri = Delaunay(points)
    simplices = tri.simplices.astype(np.int64)
    # Each triangle (a, b, c) contributes edges ab, bc, ca.
    src = np.concatenate([simplices[:, 0], simplices[:, 1], simplices[:, 2]])
    dst = np.concatenate([simplices[:, 1], simplices[:, 2], simplices[:, 0]])
    weights = random_weights(src.size, low=1, high=10, seed=rng)
    return build_csr(num_points, src, dst, weights, name=name, symmetrize=True)
