"""Synthetic generators for the six paper-dataset analogs (Table 5)."""

from .delaunay import generate_delaunay
from .mesh import generate_mesh3d
from .powerlaw import generate_collaboration
from .regulatory import generate_regulatory
from .rmat import generate_kron, rmat_edges
from .road import generate_road_network

__all__ = [
    "generate_delaunay",
    "generate_mesh3d",
    "generate_collaboration",
    "generate_regulatory",
    "generate_kron",
    "rmat_edges",
    "generate_road_network",
]
