"""R-MAT / Kronecker generator — analog of the ``kron`` (Graph500) dataset.

Graph500's synthetic graphs are Kronecker graphs, operationally produced
by the R-MAT recursive quadrant sampler.  They are scale-free with heavy
hubs, tiny diameter, and huge frontier duplicate rates — the datasets on
which the paper's filtering shines hardest.
"""

from __future__ import annotations

import numpy as np

from ...errors import GraphError
from ...utils import rng_from_seed
from ..builder import build_csr, random_weights
from ..csr import CsrGraph

#: Graph500 reference initiator probabilities.
GRAPH500_INITIATOR = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    edge_factor: int,
    *,
    initiator: tuple[float, float, float, float] = GRAPH500_INITIATOR,
    noise: float = 0.05,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``edge_factor * 2**scale`` R-MAT edges as an ``(m, 2)`` array.

    Quadrant sampling is vectorized: for every bit of the node id, every
    edge picks one of the four quadrants according to the (noised)
    initiator matrix.
    """
    if scale < 1:
        raise GraphError(f"scale must be >= 1, got {scale}")
    if edge_factor < 1:
        raise GraphError(f"edge_factor must be >= 1, got {edge_factor}")
    a, b, c, d = initiator
    if not np.isclose(a + b + c + d, 1.0):
        raise GraphError(f"initiator must sum to 1, got {a + b + c + d}")
    rng = rng_from_seed(seed)
    num_edges = edge_factor * (1 << scale)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        # Per-level noise keeps degree distribution from being too regular,
        # matching the Graph500 reference implementation.
        ab = (a + b) * (1.0 + noise * (rng.random(num_edges) - 0.5))
        a_frac = a / (a + b)
        c_frac = c / (c + d)
        go_down = rng.random(num_edges) >= ab  # row bit (src side)
        row_thresh = np.where(go_down, c_frac, a_frac)
        go_right = rng.random(num_edges) >= row_thresh  # column bit (dst side)
        src |= go_down.astype(np.int64) << level
        dst |= go_right.astype(np.int64) << level
    return np.stack([src, dst], axis=1)


def generate_kron(
    scale: int = 14,
    edge_factor: int = 32,
    *,
    seed: int | np.random.Generator | None = None,
    name: str = "kron",
) -> CsrGraph:
    """Generate a Graph500-style Kronecker graph analog.

    Defaults yield ~16 k nodes and ~0.5 M directed edges, preserving the
    paper dataset's heavy-hub, high-duplicate character at laptop scale.
    """
    rng = rng_from_seed(seed)
    edges = rmat_edges(scale, edge_factor, seed=rng)
    num_nodes = 1 << scale
    # Permute ids so hubs are not clustered at low ids (Graph500 does this).
    perm = rng.permutation(num_nodes).astype(np.int64)
    src = perm[edges[:, 0]]
    dst = perm[edges[:, 1]]
    weights = random_weights(src.size, low=1, high=10, seed=rng)
    return build_csr(num_nodes, src, dst, weights, name=name, symmetrize=True)
