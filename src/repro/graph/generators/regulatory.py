"""Gene-regulatory-network generator — analog of the ``human`` dataset.

The paper's ``human`` graph (human gene regulatory network) is extreme:
22 k nodes but 24.6 M edges — average degree over two thousand, driven
by a small set of regulator hubs that connect to large fractions of the
genome.  We reproduce the *shape*: a small hub set with very high
out-degree plus a low-degree background, at ~60x smaller scale.
"""

from __future__ import annotations

import numpy as np

from ...errors import GraphError
from ...utils import rng_from_seed
from ..builder import build_csr, random_weights
from ..csr import CsrGraph


def generate_regulatory(
    num_genes: int = 2200,
    *,
    hub_fraction: float = 0.04,
    hub_degree: int = 2200,
    background_degree: int = 8,
    seed: int | np.random.Generator | None = None,
    name: str = "human",
) -> CsrGraph:
    """Generate a dense hub-dominated regulatory network.

    Args:
        num_genes: node count.
        hub_fraction: fraction of nodes acting as regulator hubs.
        hub_degree: targets sampled per hub (with replacement, deduped).
        background_degree: targets per non-hub node.
    """
    if num_genes < 10:
        raise GraphError(f"need at least 10 genes, got {num_genes}")
    if not 0.0 < hub_fraction < 1.0:
        raise GraphError(f"hub_fraction must be in (0, 1), got {hub_fraction}")
    rng = rng_from_seed(seed)

    num_hubs = max(1, int(round(num_genes * hub_fraction)))
    hubs = rng.choice(num_genes, size=num_hubs, replace=False).astype(np.int64)
    hub_degree = min(hub_degree, num_genes - 1)

    hub_src = np.repeat(hubs, hub_degree)
    hub_dst = rng.integers(0, num_genes, size=hub_src.size).astype(np.int64)

    others = np.setdiff1d(np.arange(num_genes, dtype=np.int64), hubs)
    bg_src = np.repeat(others, background_degree)
    # Background edges are biased toward hubs (genes are regulated by hubs).
    toward_hub = rng.random(bg_src.size) < 0.5
    bg_dst = np.where(
        toward_hub,
        hubs[rng.integers(0, num_hubs, size=bg_src.size)],
        rng.integers(0, num_genes, size=bg_src.size),
    ).astype(np.int64)

    src = np.concatenate([hub_src, bg_src])
    dst = np.concatenate([hub_dst, bg_dst])
    weights = random_weights(src.size, low=1, high=10, seed=rng)
    return build_csr(num_genes, src, dst, weights, name=name, symmetrize=True)
