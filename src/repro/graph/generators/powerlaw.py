"""Collaboration-network generator — analog of the ``cond`` dataset.

``cond-mat`` is a co-authorship network: papers induce cliques over
their authors, author productivity is heavy-tailed, and communities
overlap.  We reproduce that construction directly: sample "papers" with
a small number of "authors" each, where authors are drawn from a
Zipf-like popularity distribution, and add the resulting cliques.
"""

from __future__ import annotations

import numpy as np

from ...errors import GraphError
from ...utils import rng_from_seed
from ..builder import build_csr, random_weights
from ..csr import CsrGraph


def generate_collaboration(
    num_authors: int = 12000,
    num_papers: int = 22000,
    *,
    max_authors_per_paper: int = 6,
    zipf_exponent: float = 1.6,
    seed: int | np.random.Generator | None = None,
    name: str = "cond",
) -> CsrGraph:
    """Generate a co-authorship graph from clique-inducing "papers"."""
    if num_authors < 2:
        raise GraphError(f"need at least 2 authors, got {num_authors}")
    if num_papers < 1:
        raise GraphError(f"need at least 1 paper, got {num_papers}")
    if max_authors_per_paper < 2:
        raise GraphError("papers need at least 2 authors to create edges")
    rng = rng_from_seed(seed)

    # Zipf-like author popularity: P(author k) ~ (k + 10)^-s, shuffled so
    # that popular authors are spread across the id space.
    ranks = np.arange(num_authors, dtype=np.float64)
    popularity = (ranks + 10.0) ** (-zipf_exponent)
    popularity /= popularity.sum()
    identity = rng.permutation(num_authors)

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    sizes = rng.integers(2, max_authors_per_paper + 1, size=num_papers)
    for size in np.unique(sizes):
        count = int(np.sum(sizes == size))
        authors = identity[
            rng.choice(num_authors, size=(count, int(size)), p=popularity)
        ]
        for i in range(int(size)):
            for j in range(i + 1, int(size)):
                src_parts.append(authors[:, i])
                dst_parts.append(authors[:, j])
    src = np.concatenate(src_parts).astype(np.int64)
    dst = np.concatenate(dst_parts).astype(np.int64)
    weights = random_weights(src.size, low=1, high=10, seed=rng)
    return build_csr(num_authors, src, dst, weights, name=name, symmetrize=True)
