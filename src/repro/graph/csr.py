"""Compressed Sparse Row (CSR) graph representation.

The paper (Section 2, Figure 2) uses CSR as the on-device graph format:
an array of adjacency offsets (one entry per node plus a terminator), an
array of edge destinations, and a parallel array of edge weights.  This
module provides that structure plus the handful of queries the
algorithms and the SCU model need.

All arrays are NumPy so the functional simulation can process whole
frontiers with vectorized operations, exactly the way a GPU kernel
would process them warp-by-warp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import GraphError


@dataclass(frozen=True)
class CsrGraph:
    """A directed graph in CSR form.

    Attributes:
        offsets: int64 array of length ``num_nodes + 1``; edges of node
            ``u`` live in ``edges[offsets[u]:offsets[u + 1]]``.
        edges: int64 array of destination node ids, length ``num_edges``.
        weights: float64 array parallel to ``edges``.
        name: optional human-readable dataset name.
    """

    offsets: np.ndarray
    edges: np.ndarray
    weights: np.ndarray
    name: str = "graph"
    _out_degrees: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        edges = np.ascontiguousarray(self.edges, dtype=np.int64)
        weights = np.ascontiguousarray(self.weights, dtype=np.float64)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "weights", weights)
        self._validate()
        object.__setattr__(self, "_out_degrees", np.diff(offsets))

    def _validate(self) -> None:
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise GraphError("offsets must be a 1-D array with at least one entry")
        if self.offsets[0] != 0:
            raise GraphError(f"offsets must start at 0, got {self.offsets[0]}")
        if np.any(np.diff(self.offsets) < 0):
            raise GraphError("offsets must be non-decreasing")
        if self.offsets[-1] != self.edges.size:
            raise GraphError(
                f"offsets terminator {self.offsets[-1]} != number of edges {self.edges.size}"
            )
        if self.weights.size != self.edges.size:
            raise GraphError(
                f"weights length {self.weights.size} != edges length {self.edges.size}"
            )
        num_nodes = self.offsets.size - 1
        if self.edges.size and (self.edges.min() < 0 or self.edges.max() >= num_nodes):
            raise GraphError("edge destination out of range")

    # -- basic queries ----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        return self.edges.size

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node (int64 array)."""
        return self._out_degrees

    @property
    def average_degree(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def neighbors(self, node: int) -> np.ndarray:
        """Destinations of the outgoing edges of ``node``."""
        self._check_node(node)
        return self.edges[self.offsets[node] : self.offsets[node + 1]]

    def neighbor_weights(self, node: int) -> np.ndarray:
        """Weights of the outgoing edges of ``node``."""
        self._check_node(node)
        return self.weights[self.offsets[node] : self.offsets[node + 1]]

    def out_degree(self, node: int) -> int:
        self._check_node(node)
        return int(self._out_degrees[node])

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CsrGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, avg_degree={self.average_degree:.1f})"
        )

    # -- transformations ---------------------------------------------------

    def reversed(self) -> "CsrGraph":
        """Return the transpose graph (every edge direction flipped)."""
        order = np.argsort(self.edges, kind="stable")
        sources = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self._out_degrees)
        new_offsets = np.zeros(self.num_nodes + 1, dtype=np.int64)
        counts = np.bincount(self.edges, minlength=self.num_nodes)
        np.cumsum(counts, out=new_offsets[1:])
        return CsrGraph(
            offsets=new_offsets,
            edges=sources[order],
            weights=self.weights[order],
            name=f"{self.name}^T",
        )

    def with_unit_weights(self) -> "CsrGraph":
        """Return the same topology with all weights set to 1.0."""
        return CsrGraph(
            offsets=self.offsets,
            edges=self.edges,
            weights=np.ones_like(self.weights),
            name=self.name,
        )

    def edge_sources(self) -> np.ndarray:
        """Source node of every edge, parallel to ``edges`` (int64)."""
        return np.repeat(np.arange(self.num_nodes, dtype=np.int64), self._out_degrees)

    # -- memory layout (used by the memory models) ---------------------------

    def edge_address(self, edge_index: np.ndarray, base: int = 0, elem_bytes: int = 4) -> np.ndarray:
        """Byte addresses of entries in the edge array, for coalescing models."""
        return base + np.asarray(edge_index, dtype=np.int64) * elem_bytes

    def node_address(self, node_index: np.ndarray, base: int = 0, elem_bytes: int = 4) -> np.ndarray:
        """Byte addresses of per-node data (labels, ranks), for coalescing models."""
        return base + np.asarray(node_index, dtype=np.int64) * elem_bytes
