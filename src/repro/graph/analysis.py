"""Structural statistics for graphs and frontiers.

These feed Table 5 (dataset characteristics) and give the experiments a
way to report *why* a dataset behaves the way it does (duplicate rates,
degree skew, locality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CsrGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph, matching Table 5's columns plus skew."""

    name: str
    num_nodes: int
    num_edges: int
    average_degree: float
    max_degree: int
    degree_p99: float
    gini_degree: float
    largest_component_fraction: float

    def as_row(self) -> tuple:
        """Row for the Table 5 renderer (nodes in 10^3, edges in 10^6)."""
        return (
            self.name,
            round(self.num_nodes / 1e3, 1),
            round(self.num_edges / 1e6, 3),
            round(self.average_degree, 1),
        )


def degree_gini(degrees: np.ndarray) -> float:
    """Gini coefficient of the degree distribution (0 = uniform, 1 = hub)."""
    if degrees.size == 0:
        return 0.0
    sorted_deg = np.sort(degrees.astype(np.float64))
    total = sorted_deg.sum()
    if total == 0:
        return 0.0
    n = sorted_deg.size
    cumulative = np.cumsum(sorted_deg)
    return float((n + 1 - 2 * np.sum(cumulative) / total) / n)


def largest_component_fraction(graph: CsrGraph) -> float:
    """Fraction of nodes in the largest weakly-connected component.

    Uses an iterative label-propagation union over CSR arrays (no
    recursion, vectorized), adequate for the dataset sizes used here.
    """
    if graph.num_nodes == 0:
        return 0.0
    labels = np.arange(graph.num_nodes, dtype=np.int64)
    sources = graph.edge_sources()
    dests = graph.edges
    while True:
        # Propagate the minimum label across every edge in both directions.
        new_labels = labels.copy()
        np.minimum.at(new_labels, dests, labels[sources])
        np.minimum.at(new_labels, sources, labels[dests])
        # Pointer-jump to accelerate convergence.
        new_labels = new_labels[new_labels]
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    _, counts = np.unique(labels, return_counts=True)
    return float(counts.max() / graph.num_nodes)


def graph_stats(graph: CsrGraph) -> GraphStats:
    """Compute the full statistics bundle for ``graph``."""
    degrees = graph.out_degrees
    return GraphStats(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        max_degree=int(degrees.max()) if degrees.size else 0,
        degree_p99=float(np.percentile(degrees, 99)) if degrees.size else 0.0,
        gini_degree=degree_gini(degrees),
        largest_component_fraction=largest_component_fraction(graph),
    )


def frontier_duplicate_rate(frontier: np.ndarray) -> float:
    """Fraction of frontier entries that are duplicates of earlier entries.

    This is the quantity the SCU's filtering removes; reported per phase
    by the experiments.
    """
    if frontier.size == 0:
        return 0.0
    unique = np.unique(frontier).size
    return float(1.0 - unique / frontier.size)
