"""Build :class:`~repro.graph.csr.CsrGraph` objects from edge lists.

The generators all produce ``(src, dst[, weight])`` triples; this module
normalizes them (dedup, optional symmetrization, self-loop removal) and
packs them into CSR, mirroring the preprocessing the paper's CUDA codes
apply to the UFL/DIMACS inputs.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..utils import rng_from_seed
from .csr import CsrGraph


def build_csr(
    num_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    name: str = "graph",
    symmetrize: bool = False,
    remove_self_loops: bool = True,
    deduplicate: bool = True,
    default_weight: float = 1.0,
) -> CsrGraph:
    """Pack an edge list into CSR.

    Args:
        num_nodes: node count; ids in ``src``/``dst`` must be < this.
        src, dst: parallel int arrays of edge endpoints.
        weights: optional parallel float array; defaults to ``default_weight``.
        symmetrize: if True, add the reverse of every edge (road networks
            and meshes in the paper are undirected).
        remove_self_loops: drop ``u -> u`` edges.
        deduplicate: keep a single copy of repeated ``(src, dst)`` pairs
            (first occurrence wins, preserving its weight).
    """
    src = np.ascontiguousarray(src, dtype=np.int64)
    dst = np.ascontiguousarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise GraphError(f"src shape {src.shape} != dst shape {dst.shape}")
    if weights is None:
        weights = np.full(src.size, default_weight, dtype=np.float64)
    else:
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if weights.shape != src.shape:
            raise GraphError("weights must be parallel to the edge list")
    if num_nodes <= 0:
        raise GraphError(f"num_nodes must be positive, got {num_nodes}")
    if src.size and (min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= num_nodes):
        raise GraphError("edge endpoint out of range")

    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        weights = np.concatenate([weights, weights])

    if remove_self_loops:
        keep = src != dst
        src, dst, weights = src[keep], dst[keep], weights[keep]

    if deduplicate and src.size:
        keys = src * num_nodes + dst
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        first = np.ones(keys_sorted.size, dtype=bool)
        first[1:] = keys_sorted[1:] != keys_sorted[:-1]
        keep_idx = order[first]
        keep_idx.sort()  # preserve original relative order
        src, dst, weights = src[keep_idx], dst[keep_idx], weights[keep_idx]

    order = np.argsort(src, kind="stable")
    src, dst, weights = src[order], dst[order], weights[order]
    offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    counts = np.bincount(src, minlength=num_nodes)
    np.cumsum(counts, out=offsets[1:])
    return CsrGraph(offsets=offsets, edges=dst, weights=weights, name=name)


def random_weights(
    num_edges: int,
    *,
    low: float = 1.0,
    high: float = 10.0,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Uniform integer-valued weights in ``[low, high]``, as the SSSP papers use."""
    rng = rng_from_seed(seed)
    if num_edges < 0:
        raise GraphError(f"num_edges must be non-negative, got {num_edges}")
    if high < low:
        raise GraphError(f"invalid weight range [{low}, {high}]")
    return rng.integers(int(low), int(high) + 1, size=num_edges).astype(np.float64)


def from_networkx(nx_graph, *, name: str = "graph", weight_attr: str = "weight") -> CsrGraph:
    """Convert a NetworkX (di)graph to CSR; used by tests for cross-validation."""
    import networkx as nx

    directed = nx_graph.is_directed()
    mapping = {node: i for i, node in enumerate(nx_graph.nodes())}
    src, dst, wts = [], [], []
    for u, v, data in nx_graph.edges(data=True):
        src.append(mapping[u])
        dst.append(mapping[v])
        wts.append(float(data.get(weight_attr, 1.0)))
    return build_csr(
        nx_graph.number_of_nodes(),
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(wts, dtype=np.float64),
        name=name,
        symmetrize=not directed,
        deduplicate=True,
    )


def to_networkx(graph: CsrGraph):
    """Convert CSR to a NetworkX DiGraph; used by tests for cross-validation."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_nodes))
    sources = graph.edge_sources()
    for u, v, w in zip(sources, graph.edges, graph.weights):
        g.add_edge(int(u), int(v), weight=float(w))
    return g
