"""Graph substrate: CSR structure, builders, generators, datasets, IO."""

from .analysis import GraphStats, frontier_duplicate_rate, graph_stats
from .builder import build_csr, from_networkx, random_weights, to_networkx
from .csr import CsrGraph
from .datasets import DATASET_NAMES, DATASETS, DatasetSpec, clear_dataset_cache, load_dataset
from .io import (
    load_dimacs,
    load_edge_list,
    load_matrix_market,
    save_dimacs,
    save_edge_list,
    save_matrix_market,
)

__all__ = [
    "CsrGraph",
    "GraphStats",
    "graph_stats",
    "frontier_duplicate_rate",
    "build_csr",
    "from_networkx",
    "to_networkx",
    "random_weights",
    "DATASETS",
    "DATASET_NAMES",
    "DatasetSpec",
    "load_dataset",
    "clear_dataset_cache",
    "load_dimacs",
    "load_edge_list",
    "load_matrix_market",
    "save_dimacs",
    "save_edge_list",
    "save_matrix_market",
]
