"""Graph file formats: simple edge lists, DIMACS ``.gr``, Matrix Market.

The paper's datasets come from the UFL Sparse Matrix Collection (Matrix
Market) and the DIMACS implementation challenges (``.gr``/METIS).  These
readers/writers let users feed their own files to the library, and the
round-trip is covered by tests.
"""

from __future__ import annotations

import gzip
from pathlib import Path

import numpy as np

from ..errors import GraphFormatError
from .builder import build_csr
from .csr import CsrGraph


def _open_text(path: Path, mode: str = "rt"):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode)
    return open(path, mode)


# -- plain edge list ------------------------------------------------------


def save_edge_list(graph: CsrGraph, path: str | Path) -> None:
    """Write ``src dst weight`` lines, one edge per line."""
    path = Path(path)
    sources = graph.edge_sources()
    with _open_text(path, "wt") as handle:
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v, w in zip(sources, graph.edges, graph.weights):
            handle.write(f"{u} {v} {w:g}\n")


def load_edge_list(path: str | Path, *, name: str | None = None) -> CsrGraph:
    """Read the format written by :func:`save_edge_list`.

    Node count comes from the header if present, otherwise from the
    maximum id seen.
    """
    path = Path(path)
    num_nodes = None
    src, dst, wts = [], [], []
    with _open_text(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    if token.startswith("nodes="):
                        num_nodes = int(token.split("=", 1)[1])
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(f"{path}:{lineno}: expected 2 or 3 fields")
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            wts.append(float(parts[2]) if len(parts) == 3 else 1.0)
    if not src:
        raise GraphFormatError(f"{path}: no edges found")
    if num_nodes is None:
        num_nodes = int(max(max(src), max(dst))) + 1
    return build_csr(
        num_nodes,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(wts, dtype=np.float64),
        name=name or path.stem,
        deduplicate=False,
    )


# -- DIMACS ----------------------------------------------------------------


def save_dimacs(graph: CsrGraph, path: str | Path) -> None:
    """Write the 9th-DIMACS ``.gr`` shortest-path format (1-based ids)."""
    path = Path(path)
    sources = graph.edge_sources()
    with _open_text(path, "wt") as handle:
        handle.write(f"p sp {graph.num_nodes} {graph.num_edges}\n")
        for u, v, w in zip(sources, graph.edges, graph.weights):
            handle.write(f"a {u + 1} {v + 1} {int(w)}\n")


def load_dimacs(path: str | Path, *, name: str | None = None) -> CsrGraph:
    """Read a 9th-DIMACS ``.gr`` file."""
    path = Path(path)
    num_nodes = None
    src, dst, wts = [], [], []
    with _open_text(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphFormatError(f"{path}:{lineno}: malformed problem line")
                num_nodes = int(parts[2])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphFormatError(f"{path}:{lineno}: malformed arc line")
                src.append(int(parts[1]) - 1)
                dst.append(int(parts[2]) - 1)
                wts.append(float(parts[3]))
            else:
                raise GraphFormatError(f"{path}:{lineno}: unknown record {parts[0]!r}")
    if num_nodes is None:
        raise GraphFormatError(f"{path}: missing problem line")
    return build_csr(
        num_nodes,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(wts, dtype=np.float64),
        name=name or path.stem,
        deduplicate=False,
    )


# -- Matrix Market ----------------------------------------------------------


def save_matrix_market(graph: CsrGraph, path: str | Path) -> None:
    """Write a MatrixMarket coordinate file (general, real, 1-based)."""
    path = Path(path)
    sources = graph.edge_sources()
    with _open_text(path, "wt") as handle:
        handle.write("%%MatrixMarket matrix coordinate real general\n")
        handle.write(f"{graph.num_nodes} {graph.num_nodes} {graph.num_edges}\n")
        for u, v, w in zip(sources, graph.edges, graph.weights):
            handle.write(f"{u + 1} {v + 1} {w:g}\n")


def load_matrix_market(path: str | Path, *, name: str | None = None) -> CsrGraph:
    """Read a MatrixMarket coordinate file as a directed graph.

    Symmetric matrices are expanded to both edge directions, as the UFL
    collection's graph consumers do.
    """
    path = Path(path)
    with _open_text(path) as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphFormatError(f"{path}: missing MatrixMarket banner")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise GraphFormatError(f"{path}: only coordinate format is supported")
        symmetric = "symmetric" in tokens
        pattern = "pattern" in tokens
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        rows, cols, nnz = (int(x) for x in line.split())
        if rows != cols:
            raise GraphFormatError(f"{path}: adjacency matrix must be square")
        src = np.empty(nnz, dtype=np.int64)
        dst = np.empty(nnz, dtype=np.int64)
        wts = np.ones(nnz, dtype=np.float64)
        for i in range(nnz):
            parts = handle.readline().split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}: truncated entry {i}")
            src[i] = int(parts[0]) - 1
            dst[i] = int(parts[1]) - 1
            if not pattern and len(parts) >= 3:
                wts[i] = abs(float(parts[2])) or 1.0
    return build_csr(
        rows,
        src,
        dst,
        wts,
        name=name or path.stem,
        symmetrize=symmetric,
        deduplicate=False,
    )
