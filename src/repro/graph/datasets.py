"""Registry of the six benchmark datasets from Table 5 of the paper.

Each entry maps the paper's dataset name to a deterministic generator
producing a scaled-down structural analog (see DESIGN.md section 6 for
the substitution rationale).  Generated graphs are cached per process so
experiments that sweep primitives do not rebuild them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..errors import GraphError
from .csr import CsrGraph
from .generators import (
    generate_collaboration,
    generate_delaunay,
    generate_kron,
    generate_mesh3d,
    generate_regulatory,
    generate_road_network,
)


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: its paper description and the generator that builds it."""

    name: str
    description: str
    paper_nodes_k: float
    paper_edges_m: float
    paper_avg_degree: float
    factory: Callable[[int], CsrGraph]


def _ca(seed: int) -> CsrGraph:
    return generate_road_network(side=190, seed=seed, name="ca")


def _cond(seed: int) -> CsrGraph:
    return generate_collaboration(num_authors=12000, num_papers=22000, seed=seed, name="cond")


def _delaunay(seed: int) -> CsrGraph:
    return generate_delaunay(num_points=16384, seed=seed, name="delaunay")


def _human(seed: int) -> CsrGraph:
    return generate_regulatory(num_genes=2200, seed=seed, name="human")


def _kron(seed: int) -> CsrGraph:
    return generate_kron(scale=14, edge_factor=16, seed=seed, name="kron")


def _msdoor(seed: int) -> CsrGraph:
    return generate_mesh3d(dims=(16, 16, 16), radius=2, seed=seed, name="msdoor")


DATASETS: Dict[str, DatasetSpec] = {
    "ca": DatasetSpec(
        "ca", "California road network", 710, 3.48, 9.8, _ca
    ),
    "cond": DatasetSpec(
        "cond", "Collaboration network, arxiv.org", 40, 0.35, 17.4, _cond
    ),
    "delaunay": DatasetSpec(
        "delaunay", "Delaunay triangulation", 524, 3.4, 12, _delaunay
    ),
    "human": DatasetSpec(
        "human", "Human gene regulatory network", 22, 24.6, 2214, _human
    ),
    "kron": DatasetSpec(
        "kron", "Graph500, Synthetic Graph", 262, 21, 156, _kron
    ),
    "msdoor": DatasetSpec(
        "msdoor", "Mesh of a 3D object", 415, 20.2, 97.3, _msdoor
    ),
}

#: Paper ordering of the datasets, used by every figure.
DATASET_NAMES = tuple(DATASETS)

_CACHE: Dict[tuple, CsrGraph] = {}


def load_dataset(name: str, *, seed: int = 42, cache: bool = True) -> CsrGraph:
    """Build (or fetch from cache) the named dataset analog."""
    if name not in DATASETS:
        known = ", ".join(DATASETS)
        raise GraphError(f"unknown dataset {name!r}; known datasets: {known}")
    key = (name, seed)
    if cache and key in _CACHE:
        return _CACHE[key]
    graph = DATASETS[name].factory(seed)
    if cache:
        _CACHE[key] = graph
    return graph


def clear_dataset_cache() -> None:
    """Drop all cached datasets (tests use this to bound memory)."""
    _CACHE.clear()
