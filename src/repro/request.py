"""The unified run-spec API: :class:`RunRequest` and :class:`RunOutcome`.

Every way of asking this repository for a simulation — the figure
drivers' memoized ``_run``, the runner's ``cached_run``, the parallel
sweep engine's worker cells, and the ``repro serve`` HTTP service —
used to build its own ad-hoc cache key.  :class:`RunRequest` is the one
canonical description of a simulated run on a *registry dataset*, and
its :meth:`RunRequest.cache_key` is the single key derivation all of
them share, so a report computed through any entry point is a cache hit
for every other.

:class:`RunOutcome` replaces the anonymous ``(result, report, system)``
3-tuple ``run_algorithm`` used to return.  Tuple-style unpacking still
works but is **deprecated** (it warns and will be removed); read the
``.result`` / ``.report`` / ``.system`` attributes instead.

Mode names are validated against the live accelerator-backend registry
(:func:`repro.backends.available_modes`) — registering a new backend
makes its mode valid here, on the CLI, and on the service wire form,
with no list to keep in sync.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Tuple

import numpy as np

from .backends import available_modes
from .backends.modes import SystemMode
from .core.api import ScuSystem
from .errors import ExperimentError, ProtocolError
from .phases import RunReport

#: JSON field names a wire-form request may carry (the service protocol).
_REQUEST_FIELDS = ("algorithm", "dataset", "gpu", "mode", "seed", "kwargs")

#: JSON-scalar types allowed as extra run arguments on the wire.
_SCALAR_TYPES = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class RunRequest:
    """One simulated (algorithm, dataset, GPU, system-mode) run spec.

    ``kwargs`` is the canonical sorted-tuple form of the extra driver
    arguments (e.g. ``source=3`` or Figure 12's
    ``enable_grouping=False``); build instances through :meth:`make`,
    which normalizes plain keyword arguments and string modes.  ``seed``
    is the dataset-generation seed (registry datasets default to 42).
    """

    algorithm: str
    dataset: str
    gpu_name: str
    mode: SystemMode
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 42

    @classmethod
    def make(
        cls,
        algorithm: str,
        dataset: str,
        gpu_name: str,
        mode: SystemMode | str,
        *,
        seed: int = 42,
        **kwargs: Any,
    ) -> "RunRequest":
        """Normalizing constructor: accepts a mode string and raw kwargs."""
        if not isinstance(mode, SystemMode):
            try:
                mode = SystemMode(mode)
            except ValueError:
                known = ", ".join(available_modes())
                raise ExperimentError(
                    f"unknown system mode {mode!r}; known modes: {known}"
                ) from None
        return cls(
            algorithm=algorithm,
            dataset=dataset,
            gpu_name=gpu_name,
            mode=mode,
            kwargs=tuple(sorted(kwargs.items())),
            seed=seed,
        )

    def cache_key(self) -> Tuple:
        """The one canonical cache key of this run.

        Shared by the experiment-report memo, the whole-run cache, the
        parallel sweep engine, and the simulation service — priming any
        one of them makes the run a hit for all of them.
        """
        return (
            self.algorithm,
            self.dataset,
            self.gpu_name,
            self.mode,
            self.seed,
            self.kwargs,
        )

    def canonical_bytes(self) -> bytes:
        """The canonical wire encoding of this request.

        Byte-identical to what :func:`repro.serve.protocol.encode`
        produces for :meth:`to_dict` (sorted keys, compact separators,
        UTF-8) — pinned by a test — so the digest below is a pure
        function of the request's wire form.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")

    def cache_digest(self) -> str:
        """The one canonical *string* digest of this run.

        SHA-256 over :meth:`canonical_bytes`, hex-encoded.  Everything
        that needs a stable string identity for a run uses this one
        derivation: the service journal's ``cache_key`` field, the L2
        result store's filenames, and the cluster front's
        consistent-hash ring placement — so an entry written by any
        component is addressable by every other.
        """
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def label(self) -> str:
        return f"{self.algorithm}/{self.dataset}/{self.gpu_name}/{self.mode.value}"

    # -- wire form (the ``repro serve`` JSON protocol) ---------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "gpu": self.gpu_name,
            "mode": self.mode.value,
            "seed": self.seed,
            "kwargs": dict(self.kwargs),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "RunRequest":
        """Validate one wire-form request into a typed :class:`RunRequest`.

        Raises :class:`~repro.errors.ProtocolError` with a deterministic
        message for every malformed shape, so the service can return the
        same 400 body for the same bad input every time.
        """
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        unknown = sorted(set(payload) - set(_REQUEST_FIELDS))
        if unknown:
            raise ProtocolError(f"unknown request fields: {', '.join(unknown)}")
        for name in ("algorithm", "dataset", "gpu", "mode"):
            value = payload.get(name)
            if not isinstance(value, str) or not value:
                raise ProtocolError(f"field {name!r} must be a non-empty string")
        try:
            mode = SystemMode(payload["mode"])
        except ValueError:
            known = ", ".join(available_modes())
            raise ProtocolError(
                f"unknown mode {payload['mode']!r}; known modes: {known}"
            ) from None
        seed = payload.get("seed", 42)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ProtocolError("field 'seed' must be an integer")
        raw_kwargs = payload.get("kwargs", {})
        if not isinstance(raw_kwargs, dict):
            raise ProtocolError("field 'kwargs' must be a JSON object")
        for key, value in raw_kwargs.items():
            if not isinstance(value, _SCALAR_TYPES):
                raise ProtocolError(
                    f"kwargs[{key!r}] must be a JSON scalar, "
                    f"got {type(value).__name__}"
                )
        # membership checks against the live registries (imported lazily:
        # the runner imports this module, so the reverse import must not
        # happen at module load).
        from .algorithms.runner import ALGORITHMS
        from .gpu.config import GPU_SYSTEMS
        from .graph.datasets import DATASETS

        if payload["algorithm"] not in ALGORITHMS:
            known = ", ".join(sorted(ALGORITHMS))
            raise ProtocolError(
                f"unknown algorithm {payload['algorithm']!r}; known: {known}"
            )
        if payload["dataset"] not in DATASETS:
            known = ", ".join(DATASETS)
            raise ProtocolError(
                f"unknown dataset {payload['dataset']!r}; known: {known}"
            )
        if payload["gpu"] not in GPU_SYSTEMS:
            known = ", ".join(GPU_SYSTEMS)
            raise ProtocolError(
                f"unknown gpu {payload['gpu']!r}; known: {known}"
            )
        return cls.make(
            payload["algorithm"],
            payload["dataset"],
            payload["gpu"],
            mode,
            seed=seed,
            **raw_kwargs,
        )


@dataclass(frozen=True)
class RunOutcome:
    """What one ``run_algorithm`` call produced.

    Read the named fields: ``.result`` (the algorithm's output array),
    ``.report`` (the :class:`~repro.phases.RunReport`), ``.system`` (the
    simulated :class:`~repro.core.api.ScuSystem`).

    .. deprecated::
        Iterating / unpacking as the legacy ``(result, report, system)``
        tuple still yields the exact order of the anonymous tuple this
        class replaced, but emits a :class:`DeprecationWarning` and will
        be removed in a future release.
    """

    result: np.ndarray
    report: RunReport
    system: ScuSystem

    def __iter__(self) -> Iterator[Any]:
        warnings.warn(
            "unpacking RunOutcome as a (result, report, system) tuple is "
            "deprecated and will be removed; read the .result / .report / "
            ".system attributes instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return iter((self.result, self.report, self.system))
