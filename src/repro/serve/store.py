"""L2 of the tiered result store: content-addressed reports on disk.

L1 is the in-memory :class:`~repro.obs.lru.LruCache` run cache inside
:mod:`repro.algorithms.runner`; it dies with the process.  This module
adds the persistent tier below it: one JSON file per canonical request
digest (:meth:`~repro.request.RunRequest.cache_digest`), so a report
simulated by any worker — or by a previous incarnation of the daemon —
is a disk hit for every later one.  The SCU paper's premise makes this
sound: a report is a deterministic function of the request, so a
content-addressed entry can never be stale, only absent.

Durability rules:

* **atomic writes** — entries are written to a tmp file in the store
  directory and ``os.replace``-d into place, so two workers racing the
  same key both land a complete (and identical) entry and a crash never
  leaves a half-written file under a real digest name;
* **schema-versioned envelope** — every entry records its layout
  version, the digest it claims, the full request, the report, and
  provenance (git SHA, interpreter, host), so a store directory is
  self-describing;
* **verification on read** — an entry whose JSON is broken, whose
  schema version is foreign, whose envelope digest disagrees with its
  filename, or whose embedded request does not re-digest to its name is
  **quarantined** (moved aside into ``quarantine/``, counted) rather
  than served or silently deleted;
* **size-bounded** — the store evicts least-recently-*used* entries
  (mtime order; reads refresh mtime) once the byte bound is exceeded.

Metrics land in the owning registry as ``serve.store.hits`` /
``.misses`` / ``.evictions`` / ``.corrupt`` (Prometheus
``serve_store_*``).  The store records nothing about wall-clock inside
the entries themselves: payloads are canonical, so a response served
from disk is byte-identical to a fresh simulation (pinned by tests).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ServiceError
from ..mem.hierarchy import MemoryStats
from ..obs.metrics import MetricsRegistry, global_metrics
from ..phases import Engine, PhaseKind, PhaseReport, RunReport
from ..request import RunRequest

#: Bump on any backwards-incompatible change to the entry layout.
STORE_SCHEMA_VERSION = 1

#: ``kind`` marker inside every envelope.
STORE_KIND = "result-store-entry"

#: Default size bound: plenty for the full experiment grid (an entry is
#: a few KB) without letting a long-lived daemon fill the disk.
DEFAULT_STORE_MAX_BYTES = 256 * 1024 * 1024

#: Counter names (``serve_store_*`` in the Prometheus exposition).
STORE_HITS_METRIC = "serve.store.hits"
STORE_MISSES_METRIC = "serve.store.misses"
STORE_EVICTIONS_METRIC = "serve.store.evictions"
STORE_CORRUPT_METRIC = "serve.store.corrupt"

_HEX_DIGITS = frozenset("0123456789abcdef")


def report_to_dict(report: RunReport) -> Dict[str, Any]:
    """JSON form of a :class:`~repro.phases.RunReport`; exact round-trip.

    Every numeric field goes through ``float``/``int`` untouched, and
    Python's JSON writer emits shortest-repr floats, so
    :func:`report_from_dict` reconstructs a report whose derived
    response bytes are identical to the original's.
    """
    return {
        "algorithm": report.algorithm,
        "system": report.system,
        "dataset": report.dataset,
        "static_energy_j": float(report.static_energy_j),
        "phases": [
            {
                "name": phase.name,
                "engine": phase.engine.value,
                "kind": phase.kind.value,
                "elements": int(phase.elements),
                "instructions": int(phase.instructions),
                "time_s": float(phase.time_s),
                "dynamic_energy_j": float(phase.dynamic_energy_j),
                "memory": {
                    "accesses": int(phase.memory.accesses),
                    "transactions": int(phase.memory.transactions),
                    "l2_hits": int(phase.memory.l2_hits),
                    "dram_accesses": int(phase.memory.dram_accesses),
                    "dram_bytes": int(phase.memory.dram_bytes),
                    "row_hit_fraction": float(phase.memory.row_hit_fraction),
                },
            }
            for phase in report.phases
        ],
    }


def report_from_dict(payload: Any, *, source: str = "store entry") -> RunReport:
    """Rebuild a :class:`~repro.phases.RunReport` from its JSON form.

    Raises :class:`~repro.errors.ServiceError` on any malformed shape —
    the store maps that to quarantine, never to a served response.
    """
    try:
        phases = [
            PhaseReport(
                name=str(raw["name"]),
                engine=Engine(raw["engine"]),
                kind=PhaseKind(raw["kind"]),
                elements=int(raw["elements"]),
                instructions=int(raw["instructions"]),
                time_s=float(raw["time_s"]),
                dynamic_energy_j=float(raw["dynamic_energy_j"]),
                memory=MemoryStats(
                    accesses=int(raw["memory"]["accesses"]),
                    transactions=int(raw["memory"]["transactions"]),
                    l2_hits=int(raw["memory"]["l2_hits"]),
                    dram_accesses=int(raw["memory"]["dram_accesses"]),
                    dram_bytes=int(raw["memory"]["dram_bytes"]),
                    row_hit_fraction=float(raw["memory"]["row_hit_fraction"]),
                ),
            )
            for raw in payload["phases"]
        ]
        return RunReport(
            algorithm=str(payload["algorithm"]),
            system=str(payload["system"]),
            dataset=str(payload["dataset"]),
            phases=phases,
            static_energy_j=float(payload["static_energy_j"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(f"{source}: malformed report payload: {error}") from error


class ResultStore:
    """Content-addressed, size-bounded, persistent report store (L2).

    Args:
        root: directory holding the entries (created if missing).
        max_bytes: byte bound across all live entries; exceeding it
            evicts oldest-mtime entries until back under the bound.
        registry: metrics registry for the ``serve.store.*`` counters;
            defaults to the process-wide registry.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_bytes: int = DEFAULT_STORE_MAX_BYTES,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_bytes <= 0:
            raise ServiceError(
                f"result store byte bound must be positive, got {max_bytes}"
            )
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._registry = registry
        self._lock = threading.Lock()
        self.root.mkdir(parents=True, exist_ok=True)
        self._quarantine_dir = self.root / "quarantine"
        # A store inherited from a previous run may already be over
        # bound (e.g. the operator lowered --store-max-mb); trim now so
        # the invariant holds from the first request.
        self._evict_to_capacity()

    # -- metrics --------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        if n <= 0:
            return
        registry = self._registry if self._registry is not None else global_metrics()
        counter = registry.counter(name)
        for _ in range(n):
            counter.inc()

    # -- paths ----------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        """The entry file of one canonical digest."""
        if not digest or set(digest) - _HEX_DIGITS:
            raise ServiceError(f"not a canonical cache digest: {digest!r}")
        return self.root / f"{digest}.json"

    def _entries(self) -> List[Path]:
        return [
            path
            for path in self.root.glob("*.json")
            if path.is_file()
        ]

    # -- introspection ---------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Live entry count and byte total (quarantine excluded)."""
        entries = self._entries()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return {"entries": len(entries), "bytes": total}

    def __len__(self) -> int:
        return len(self._entries())

    # -- read path -------------------------------------------------------
    def get(self, request: RunRequest) -> Optional[RunReport]:
        """Load the stored report of ``request``; ``None`` on a miss.

        A hit refreshes the entry's mtime (the LRU clock).  Anything
        unreadable or inconsistent is quarantined and reported as a
        miss — a corrupt entry must never surface as a response.
        """
        digest = request.cache_digest()
        path = self.path_for(digest)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            self._count(STORE_MISSES_METRIC)
            return None
        except OSError:
            self._count(STORE_MISSES_METRIC)
            return None
        report = self._decode(raw, digest=digest, request=request, path=path)
        if report is None:
            self._count(STORE_MISSES_METRIC)
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # recency refresh is best-effort; a hit is still a hit
        self._count(STORE_HITS_METRIC)
        return report

    def _decode(
        self, raw: str, *, digest: str, request: RunRequest, path: Path
    ) -> Optional[RunReport]:
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError:
            self._quarantine(path, reason="not JSON")
            return None
        if not isinstance(envelope, dict):
            self._quarantine(path, reason="not an object")
            return None
        if envelope.get("kind") != STORE_KIND:
            self._quarantine(path, reason="foreign kind")
            return None
        if envelope.get("schema_version") != STORE_SCHEMA_VERSION:
            self._quarantine(path, reason="foreign schema version")
            return None
        if envelope.get("digest") != digest:
            self._quarantine(path, reason="digest mismatch")
            return None
        # The embedded request must re-digest to the filename: a moved
        # or hand-edited entry fails here instead of serving the wrong
        # run's report.
        try:
            stored = RunRequest.from_dict(envelope.get("request"))
        except Exception:  # noqa: BLE001 — any malformed request quarantines
            self._quarantine(path, reason="malformed request")
            return None
        if stored.cache_digest() != digest or stored != request:
            self._quarantine(path, reason="request mismatch")
            return None
        try:
            return report_from_dict(envelope.get("report"), source=str(path))
        except ServiceError:
            self._quarantine(path, reason="malformed report")
            return None

    def _quarantine(self, path: Path, *, reason: str) -> None:
        """Move a bad entry aside (never serve, never silently delete)."""
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self._quarantine_dir / path.name)
        except OSError:
            # Even moving it failed; drop it so it cannot be served.
            try:
                path.unlink()
            except OSError:
                pass
        self._count(STORE_CORRUPT_METRIC)

    # -- write path ------------------------------------------------------
    def put(
        self,
        request: RunRequest,
        report: RunReport,
        *,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist ``report`` under ``request``'s digest (atomic).

        The entry is staged as a tmp file in the store directory and
        renamed into place, so concurrent writers of the same key both
        complete and later readers only ever see whole entries.
        """
        if provenance is None:
            from ..bench.record import collect_provenance

            provenance = collect_provenance()
        digest = request.cache_digest()
        path = self.path_for(digest)
        envelope = {
            "schema_version": STORE_SCHEMA_VERSION,
            "kind": STORE_KIND,
            "digest": digest,
            "request": request.to_dict(),
            "report": report_to_dict(report),
            "provenance": dict(provenance),
        }
        body = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{digest[:16]}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._evict_to_capacity(protect=path)
        return path

    def _evict_to_capacity(self, protect: Optional[Path] = None) -> None:
        """Drop oldest-mtime entries until the byte bound holds.

        ``protect`` (the entry just written) is never evicted even if
        it alone exceeds the bound — a store must not reject the very
        report it was asked to persist.
        """
        with self._lock:
            entries: List[Tuple[float, int, Path]] = []
            total = 0
            for path in self._entries():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
            if total <= self.max_bytes:
                return
            evicted = 0
            for _, size, path in sorted(entries, key=lambda e: (e[0], e[2].name)):
                if total <= self.max_bytes:
                    break
                if protect is not None and path == protect:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                evicted += 1
        self._count(STORE_EVICTIONS_METRIC, evicted)


__all__ = [
    "STORE_SCHEMA_VERSION",
    "STORE_KIND",
    "DEFAULT_STORE_MAX_BYTES",
    "STORE_HITS_METRIC",
    "STORE_MISSES_METRIC",
    "STORE_EVICTIONS_METRIC",
    "STORE_CORRUPT_METRIC",
    "ResultStore",
    "report_to_dict",
    "report_from_dict",
]
