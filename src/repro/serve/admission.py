"""Bounded admission queue with a fixed worker pool.

The service never lets load grow without bound: at most ``workers``
simulations run concurrently and at most ``queue_depth`` more may wait.
A request arriving beyond that is rejected *deterministically* with a
:class:`~repro.errors.ServiceOverloadError` carrying a Retry-After hint
— the HTTP layer maps it to a 429.  This mirrors the paper's fixed-size
SCU queues: work beyond the unit's capacity is not silently buffered,
it is pushed back to the issuing side.

Gauges track queue depth and in-flight work; both are updated under the
queue's condition lock, so the racy plain-dict instruments stay
consistent.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional

from ..errors import (
    ServiceOverloadError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from ..obs.metrics import MetricsRegistry

QUEUE_DEPTH_METRIC = "serve.queue.depth"
INFLIGHT_METRIC = "serve.inflight"

#: Counter of rejected submissions, labelled ``reason=overload|draining``
#: so a load test can tell back-pressure from shutdown.
REJECTED_METRIC = "serve.rejected"


class _Task:
    """One admitted unit of work and its eventual outcome."""

    __slots__ = (
        "fn",
        "done",
        "value",
        "error",
        "submitted_at",
        "queue_wait_s",
    )

    def __init__(self, fn: Callable[[], Any]):
        self.fn = fn
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.submitted_at = time.perf_counter()
        self.queue_wait_s: Optional[float] = None


class ServiceQueue:
    """Fixed worker pool behind a bounded FIFO admission queue."""

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_depth: int = 8,
        registry: Optional[MetricsRegistry] = None,
        retry_after_s: float = 1.0,
        observe_wait: Optional[Callable[[float], None]] = None,
    ):
        if workers < 1:
            raise ServiceUnavailableError(f"need at least 1 worker, got {workers}")
        if queue_depth < 1:
            raise ServiceUnavailableError(
                f"need queue depth of at least 1, got {queue_depth}"
            )
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s
        self._registry = registry
        self._observe_wait = observe_wait
        self._cond = threading.Condition()
        self._pending: List[_Task] = []
        self._inflight = 0
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker, name=f"repro-serve-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- gauges, always called with self._cond held ---------------------
    def _publish(self) -> None:
        if self._registry is not None:
            self._registry.gauge(QUEUE_DEPTH_METRIC).set(len(self._pending))
            self._registry.gauge(INFLIGHT_METRIC).set(self._inflight)

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._pending)

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def _count_rejection(self, reason: str) -> None:
        """Rejection counter; always called with ``self._cond`` held."""
        if self._registry is not None:
            self._registry.counter(REJECTED_METRIC).inc(reason=reason)

    def submit(self, fn: Callable[[], Any]) -> _Task:
        """Admit ``fn`` or reject it if the queue is full / closing."""
        with self._cond:
            if self._closed:
                self._count_rejection("draining")
                raise ServiceUnavailableError("service is draining; not accepting work")
            if len(self._pending) >= self.queue_depth:
                self._count_rejection("overload")
                raise ServiceOverloadError(
                    f"admission queue full ({len(self._pending)} waiting, "
                    f"limit {self.queue_depth})",
                    retry_after_s=self.retry_after_s,
                )
            task = _Task(fn)
            self._pending.append(task)
            self._publish()
            self._cond.notify()
        return task

    def wait(self, task: _Task, *, timeout_s: Optional[float] = None) -> Any:
        """Block until ``task`` finishes; return its result or re-raise.

        Raises :class:`~repro.errors.ServiceTimeoutError` if the task
        does not complete within ``timeout_s``.  The task itself is not
        cancelled — workers are cooperative — but the caller stops
        waiting and the eventual result still lands in the run cache.
        """
        if not task.done.wait(timeout_s):
            raise ServiceTimeoutError(
                f"request did not complete within {timeout_s}s"
            )
        if task.error is not None:
            raise task.error
        return task.value

    def run(self, fn: Callable[[], Any], *, timeout_s: Optional[float] = None) -> Any:
        """Admit ``fn``, block until it finishes, and return its result."""
        return self.wait(self.submit(fn), timeout_s=timeout_s)

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                task = self._pending.pop(0)
                task.queue_wait_s = time.perf_counter() - task.submitted_at
                self._inflight += 1
                self._publish()
                if self._observe_wait is not None:
                    # Under the cond lock, like the gauges: the plain
                    # histogram instrument must not see races.
                    self._observe_wait(task.queue_wait_s)
            try:
                task.value = task.fn()
            except BaseException as error:  # noqa: BLE001 — delivered to waiter
                task.error = error
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._publish()
                    self._cond.notify_all()
                task.done.set()

    def drain(self, *, timeout_s: Optional[float] = None) -> bool:
        """Stop admitting work and wait for queued + in-flight tasks.

        Returns True once the queue is empty and no work is in flight;
        False if that did not happen within ``timeout_s``.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            return self._cond.wait_for(
                lambda: not self._pending and self._inflight == 0,
                timeout=timeout_s,
            )
