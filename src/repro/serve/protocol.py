"""JSON wire protocol of the simulation service.

One rule governs everything here: *identical requests produce
byte-identical responses*.  Payloads are encoded canonically (sorted
keys, no whitespace) and contain no timestamps, hostnames, or other
run-to-run noise — so single-flight followers, run-cache hits, and a
fresh in-process simulation of the same :class:`~repro.request.RunRequest`
all serialize to the same bytes.  Tests and clients may diff responses
directly.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Optional

from ..errors import ProtocolError
from ..gpu.config import GPU_SYSTEMS
from ..phases import RunReport
from ..request import RunRequest

#: Upper bound on accepted request bodies; a RunRequest is tiny, so
#: anything larger is a client error, not a simulation to attempt.
MAX_BODY_BYTES = 64 * 1024


def encode(payload: Dict[str, Any]) -> bytes:
    """Canonical JSON bytes: sorted keys, compact separators, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def parse_run_request(body: bytes) -> RunRequest:
    """Decode and validate one POST /run body into a typed request."""
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(
            f"request body too large ({len(body)} bytes > {MAX_BODY_BYTES})"
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"request body is not valid JSON: {error}") from error
    return RunRequest.from_dict(payload)


def _finite(value: float) -> Optional[float]:
    """NaN-free float for canonical JSON (``allow_nan=False``)."""
    value = float(value)
    return None if math.isnan(value) or math.isinf(value) else value


def report_payload(request: RunRequest, report: RunReport) -> Dict[str, Any]:
    """JSON form of one run report: phases, memory stats, sim metrics."""
    from ..bench.record import SimMetrics

    sim = SimMetrics.from_report(
        report, gpu_clock_hz=GPU_SYSTEMS[request.gpu_name].clock_hz
    )
    sim_dict = dict(sim.as_dict())
    if sim_dict.get("compaction_fraction") is not None:
        sim_dict["compaction_fraction"] = _finite(sim_dict["compaction_fraction"])
    return {
        "algorithm": report.algorithm,
        "system": report.system,
        "dataset": report.dataset,
        "static_energy_j": float(report.static_energy_j),
        "phases": [
            {
                "name": phase.name,
                "engine": phase.engine.value,
                "kind": phase.kind.value,
                "elements": int(phase.elements),
                "instructions": int(phase.instructions),
                "time_s": float(phase.time_s),
                "dynamic_energy_j": float(phase.dynamic_energy_j),
                "memory": {
                    "accesses": int(phase.memory.accesses),
                    "transactions": int(phase.memory.transactions),
                    "l2_hits": int(phase.memory.l2_hits),
                    "dram_accesses": int(phase.memory.dram_accesses),
                    "dram_bytes": int(phase.memory.dram_bytes),
                    "row_hit_fraction": float(phase.memory.row_hit_fraction),
                },
            }
            for phase in report.phases
        ],
        "sim": sim_dict,
    }


def run_response(request: RunRequest, report: RunReport) -> Dict[str, Any]:
    """The full POST /run response body (pre-encoding)."""
    return {
        "request": request.to_dict(),
        "report": report_payload(request, report),
    }


def error_payload(status: int, error: str, message: str, **extra: Any) -> Dict[str, Any]:
    """Deterministic error body shared by every failure path."""
    payload: Dict[str, Any] = {"status": status, "error": error, "message": message}
    payload.update(extra)
    return payload
