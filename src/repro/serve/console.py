"""``repro top``: a live ops console over a running ``repro serve``.

Stdlib-only terminal dashboard that polls ``GET /metrics`` and
``GET /debug/requests`` and renders, once per interval:

* **throughput** — requests/s from the delta of the ``serve.requests``
  counter between the last two scrapes (the first frame shows the
  absolute total instead, marked ``cum``);
* **outcome mix** — journal outcomes (simulated / coalesced / cached /
  rejected / ...) over the journal window, as counts and a bar;
* **stage latency quantiles** — p50/p90/p99 of the queue-wait,
  simulate, coalesce-wait and total histograms, estimated from the
  scraped buckets (interval-windowed once two scrapes exist);
* **slowest recent traces** — the journal's worst ``total_ms`` rows
  with their ``trace_id``, which ``GET /debug/trace/{trace_id}``
  resolves to a stitched Chrome trace.

The data layer (:func:`fetch_snapshot`) and the render layer
(:func:`render_frame`, pure text in, text out) are separate so tests
drive rendering without a server or a terminal.  The interactive loop
prefers ``curses`` and falls back to clear-and-reprint when it is
unavailable (dumb terminals, pipes); ``--once`` prints a single frame
and exits, which is also the non-interactive/CI form.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import quantile_from_buckets
from ..obs.promtext import bucket_cumulative, diff_cumulative, parse_exposition
from .telemetry import (
    COALESCE_WAIT_METRIC,
    QUEUE_WAIT_METRIC,
    SIMULATE_METRIC,
    TOTAL_METRIC,
)

#: (histogram base name, display label) rows of the quantile panel.
STAGE_HISTOGRAMS: Tuple[Tuple[str, str], ...] = (
    (QUEUE_WAIT_METRIC, "queue wait"),
    (SIMULATE_METRIC, "simulate"),
    (COALESCE_WAIT_METRIC, "coalesce wait"),
    (TOTAL_METRIC, "total"),
)

#: Quantiles of the latency panel.
QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

#: How many slowest journal rows the trace panel shows.
SLOWEST_ROWS = 5


@dataclass
class Snapshot:
    """One poll's worth of raw service state."""

    taken_at: float  # perf_counter when the poll finished
    requests_total: float  # sum of the serve.requests counter
    buckets: Dict[str, List[Tuple[float, float]]]  # per-stage cumulative
    journal: List[Dict[str, Any]] = field(default_factory=list)
    error: Optional[str] = None  # poll failure; panels render a notice


def parse_metrics_text(text: str) -> Tuple[float, Dict[str, List[Tuple[float, float]]]]:
    """Extract the console's inputs from one ``/metrics`` exposition."""
    samples, _ = parse_exposition(text)
    requests_total = sum(
        s.value for s in samples if s.name == "serve_requests"
    )
    buckets = {
        base: bucket_cumulative(samples, base.replace(".", "_"))
        for base, _label in STAGE_HISTOGRAMS
    }
    return requests_total, buckets


def fetch_snapshot(base_url: str, *, timeout_s: float = 5.0) -> Snapshot:
    """Poll ``/metrics`` + ``/debug/requests`` once; errors are captured."""
    try:
        with urllib.request.urlopen(
            f"{base_url}/metrics", timeout=timeout_s
        ) as response:
            requests_total, buckets = parse_metrics_text(
                response.read().decode("utf-8")
            )
        with urllib.request.urlopen(
            f"{base_url}/debug/requests", timeout=timeout_s
        ) as response:
            journal = json.loads(response.read().decode("utf-8")).get(
                "requests", []
            )
    except (urllib.error.URLError, OSError, ValueError) as error:
        return Snapshot(
            taken_at=time.perf_counter(),
            requests_total=0.0,
            buckets={},
            error=str(error),
        )
    return Snapshot(
        taken_at=time.perf_counter(),
        requests_total=requests_total,
        buckets=buckets,
        journal=journal,
    )


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(min(max(fraction, 0.0), 1.0) * width))
    return "#" * filled + "." * (width - filled)


def outcome_mix(journal: List[Dict[str, Any]]) -> List[Tuple[str, int]]:
    """Outcome counts over the journal window, most frequent first."""
    counts: Dict[str, int] = {}
    for record in journal:
        outcome = str(record.get("outcome"))
        counts[outcome] = counts.get(outcome, 0) + 1
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def slowest_traces(
    journal: List[Dict[str, Any]], rows: int = SLOWEST_ROWS
) -> List[Dict[str, Any]]:
    """The journal rows with the worst ``total_ms``, slowest first."""
    timed = [r for r in journal if r.get("total_ms") is not None]
    timed.sort(key=lambda r: -float(r["total_ms"]))
    return timed[:rows]


def stage_quantiles(
    current: Snapshot, previous: Optional[Snapshot]
) -> List[Tuple[str, Tuple[float, ...], bool]]:
    """Per-stage quantile rows: ``(label, ms values, windowed?)``.

    With two scrapes the buckets are differenced so the estimates cover
    only the polling interval; the first frame falls back to the
    cumulative (since-start) distribution, flagged via the bool.
    """
    rows: List[Tuple[str, Tuple[float, ...], bool]] = []
    for base, label in STAGE_HISTOGRAMS:
        cumulative = current.buckets.get(base, [])
        windowed = False
        if previous is not None and previous.buckets.get(base):
            diffed = diff_cumulative(cumulative, previous.buckets[base])
            if diffed and diffed[-1][1] > 0:
                cumulative = diffed
                windowed = True
        values = tuple(
            quantile_from_buckets(cumulative, q) * 1e3 for q in QUANTILES
        )
        rows.append((label, values, windowed))
    return rows


def render_frame(
    current: Snapshot,
    previous: Optional[Snapshot],
    *,
    url: str,
    width: int = 78,
) -> str:
    """One full dashboard frame as plain text (the whole UI, testably)."""
    lines: List[str] = []
    lines.append(f"repro top — {url}  ({time.strftime('%H:%M:%S')})")
    lines.append("=" * width)
    if current.error is not None:
        lines.append(f"POLL FAILED: {current.error}")
        return "\n".join(lines)

    if previous is not None and current.taken_at > previous.taken_at:
        interval = current.taken_at - previous.taken_at
        rate = max(0.0, current.requests_total - previous.requests_total)
        lines.append(
            f"throughput: {rate / interval:8.1f} req/s over the last "
            f"{interval:.1f}s  (total {current.requests_total:.0f})"
        )
    else:
        lines.append(
            f"throughput: {current.requests_total:8.0f} requests (cum; "
            f"rates appear after the second poll)"
        )
    lines.append("")

    mix = outcome_mix(current.journal)
    lines.append(f"outcome mix (last {len(current.journal)} requests):")
    if not mix:
        lines.append("  (journal empty or telemetry disabled)")
    else:
        total = sum(count for _outcome, count in mix)
        for outcome, count in mix:
            fraction = count / total if total else 0.0
            lines.append(
                f"  {outcome:14s} {count:5d}  {_bar(fraction)} {fraction:6.1%}"
            )
    lines.append("")

    header = "  ".join(f"p{int(q * 100):>2d} ms".rjust(10) for q in QUANTILES)
    lines.append(f"stage latency        {header}")
    for label, values, windowed in stage_quantiles(current, previous):
        cells = "  ".join(f"{value:10.2f}" for value in values)
        suffix = "" if windowed else "  (cum)"
        lines.append(f"  {label:18s} {cells}{suffix}")
    lines.append("")

    lines.append("slowest recent traces:")
    rows = slowest_traces(current.journal)
    if not rows:
        lines.append("  (none yet)")
    for record in rows:
        trace = record.get("trace_id") or "-"
        lines.append(
            f"  {float(record['total_ms']):9.1f} ms  "
            f"{str(record.get('outcome')):12s} "
            f"{str(record.get('request_id')):12s} trace {trace}"
        )
    return "\n".join(lines)


def run_top(
    url: str,
    *,
    interval_s: float = 2.0,
    once: bool = False,
    plain: bool = False,
) -> int:
    """The ``repro top`` loop; returns a process exit code."""
    url = url.rstrip("/")
    previous: Optional[Snapshot] = None
    if once:
        print(render_frame(fetch_snapshot(url), None, url=url))
        return 0
    use_curses = not plain
    if use_curses:
        try:
            import curses  # noqa: F401
        except ImportError:  # minimal builds: fall back to reprint
            use_curses = False
    if use_curses:
        return _run_curses(url, interval_s)
    try:
        while True:
            current = fetch_snapshot(url)
            print("\033[2J\033[H", end="")  # clear + home
            print(render_frame(current, previous, url=url), flush=True)
            previous = current
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0


def _run_curses(url: str, interval_s: float) -> int:
    import curses

    def loop(screen: "curses.window") -> None:
        curses.curs_set(0)
        screen.nodelay(True)
        previous: Optional[Snapshot] = None
        while True:
            current = fetch_snapshot(url)
            frame = render_frame(current, previous, url=url)
            screen.erase()
            max_y, max_x = screen.getmaxyx()
            for y, line in enumerate(frame.splitlines()):
                if y >= max_y - 1:
                    break
                screen.addnstr(y, 0, line, max_x - 1)
            screen.refresh()
            previous = current
            deadline = time.perf_counter() + interval_s
            while time.perf_counter() < deadline:
                key = screen.getch()
                if key in (ord("q"), ord("Q")):
                    return
                time.sleep(0.05)

    try:
        curses.wrapper(loop)
    except KeyboardInterrupt:
        pass
    return 0


__all__ = [
    "Snapshot",
    "STAGE_HISTOGRAMS",
    "QUANTILES",
    "parse_metrics_text",
    "fetch_snapshot",
    "outcome_mix",
    "slowest_traces",
    "stage_quantiles",
    "render_frame",
    "run_top",
]
