"""Long-lived simulation service (``repro serve``).

Stdlib-only HTTP daemon over the simulator: typed
:class:`~repro.request.RunRequest` validation, bounded admission,
single-flight coalescing, and run-cache reuse.  See
:mod:`repro.serve.server` for the request-path layering.
"""

from .admission import (
    INFLIGHT_METRIC,
    QUEUE_DEPTH_METRIC,
    REJECTED_METRIC,
    ServiceQueue,
)
from .protocol import (
    MAX_BODY_BYTES,
    encode,
    error_payload,
    parse_run_request,
    report_payload,
    run_response,
)
from .server import (
    REQUESTS_METRIC,
    SIMULATIONS_METRIC,
    RequestHandler,
    ServiceConfig,
    ServiceServer,
    SimulationService,
    make_server,
    run_service,
)
from .singleflight import COALESCED_METRIC, SingleFlight
from .telemetry import (
    COALESCE_WAIT_METRIC,
    OUTCOME_BAD_REQUEST,
    OUTCOME_CACHED,
    OUTCOME_COALESCED,
    OUTCOME_DRAINING,
    OUTCOME_ERROR,
    OUTCOME_REJECTED,
    OUTCOME_SIMULATED,
    OUTCOME_TIMEOUT,
    QUEUE_WAIT_METRIC,
    SIMULATE_METRIC,
    TOTAL_METRIC,
    AccessLog,
    RequestContext,
    RequestIds,
    RequestJournal,
)

__all__ = [
    "COALESCED_METRIC",
    "COALESCE_WAIT_METRIC",
    "INFLIGHT_METRIC",
    "MAX_BODY_BYTES",
    "OUTCOME_BAD_REQUEST",
    "OUTCOME_CACHED",
    "OUTCOME_COALESCED",
    "OUTCOME_DRAINING",
    "OUTCOME_ERROR",
    "OUTCOME_REJECTED",
    "OUTCOME_SIMULATED",
    "OUTCOME_TIMEOUT",
    "QUEUE_DEPTH_METRIC",
    "QUEUE_WAIT_METRIC",
    "REJECTED_METRIC",
    "REQUESTS_METRIC",
    "SIMULATE_METRIC",
    "SIMULATIONS_METRIC",
    "TOTAL_METRIC",
    "AccessLog",
    "RequestContext",
    "RequestHandler",
    "RequestIds",
    "RequestJournal",
    "ServiceConfig",
    "ServiceQueue",
    "ServiceServer",
    "SimulationService",
    "SingleFlight",
    "encode",
    "error_payload",
    "make_server",
    "parse_run_request",
    "report_payload",
    "run_response",
    "run_service",
]
