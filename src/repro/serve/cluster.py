"""Consistent-hash sharded cluster front for ``repro serve``.

A cluster is N independent ``repro serve`` worker daemons behind one
stdlib HTTP **front router**.  The front validates each ``POST /run``
body, computes the request's canonical
:meth:`~repro.request.RunRequest.cache_digest`, and consistent-hash
maps that digest onto a worker.  Because identical requests always
land on the same worker, the worker's in-process single-flight becomes
*cluster-wide* single-flight: one simulation per unique request across
the whole fleet, without any cross-worker coordination.

The ring (:class:`HashRing`) hashes each node to ``vnodes`` points on a
64-bit circle; a digest routes to the first point clockwise from its
own hash.  Removing a node reassigns only that node's arcs (~1/N of
keys), and because every worker shares one content-addressed
:class:`~repro.serve.store.ResultStore` directory, keys that migrate to
a new worker still cold-start from the L2 tier instead of
re-simulating.

Failure handling is deterministic: a worker that refuses connections is
marked unhealthy, removed from the ring, and the in-flight request gets
a ``503`` + ``Retry-After`` — the client's retry re-routes onto the
rebalanced ring.  A background monitor re-adds workers whose
``/healthz`` recovers.

Front routes: ``POST /run`` (proxied), ``GET /healthz`` (aggregate),
``GET /metrics`` (cluster counters + live worker scrapes merged by
:func:`~repro.obs.promtext.merge_expositions`), ``GET /debug/trace/*``
and ``/debug/traces`` / ``/debug/requests`` (fanned out).
"""

from __future__ import annotations

import bisect
import hashlib
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ProtocolError, ServiceError
from ..obs.metrics import MetricsRegistry
from ..obs.promtext import merge_expositions
from .protocol import MAX_BODY_BYTES, encode, error_payload, parse_run_request
from .server import ServiceConfig, SimulationService, make_server
from .store import DEFAULT_STORE_MAX_BYTES

ROUTED_METRIC = "cluster.routed"
PROXY_ERRORS_METRIC = "cluster.proxy_errors"
UNAVAILABLE_METRIC = "cluster.unavailable"
REBALANCES_METRIC = "cluster.rebalances"
HEALTHY_WORKERS_METRIC = "cluster.workers.healthy"

#: Virtual nodes per worker: enough points that removing one worker
#: spreads its arcs evenly over the survivors (imbalance < ~10% at
#: small N) while keeping ring rebuilds trivially cheap.
DEFAULT_VNODES = 64

#: Headers a proxied response forwards back to the client verbatim.
_FORWARD_HEADERS = ("X-Request-Id", "X-Trace-Id", "Retry-After")


def _hash_point(value: str) -> int:
    """64-bit position of ``value`` on the ring circle."""
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Nodes are opaque strings (worker base URLs here).  Placement is a
    pure function of (node set, vnodes): every front that knows the
    same live set routes a digest identically, and tests can predict
    placement offline.
    """

    def __init__(self, nodes: Tuple[str, ...] = (), *, vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ServiceError(f"ring vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set = set()
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _rebuild(self) -> None:
        self._points = sorted(
            (_hash_point(f"{node}#{i}"), node)
            for node in self._nodes
            for i in range(self.vnodes)
        )
        self._keys = [point for point, _ in self._points]

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._rebuild()

    def node_for(self, digest: str) -> Optional[str]:
        """The node owning ``digest`` (first ring point clockwise)."""
        if not self._points:
            return None
        point = _hash_point(digest)
        index = bisect.bisect_right(self._keys, point)
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._points[index][1]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one cluster front (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8788
    workers: int = 2
    vnodes: int = DEFAULT_VNODES
    #: Worker-side knobs, forwarded to each spawned ``repro serve``.
    worker_threads: int = 2
    queue_depth: int = 8
    request_timeout_s: Optional[float] = None
    #: Shared L2 store directory; every worker mounts the same one so
    #: keys survive ring migration.  ``None`` disables the disk tier.
    store_dir: Optional[str] = None
    store_max_bytes: int = DEFAULT_STORE_MAX_BYTES
    #: Retry-After (seconds) on a deterministic routing 503.
    retry_after_s: float = 1.0
    #: Health monitor sweep interval and per-probe timeout.
    health_interval_s: float = 1.0
    health_timeout_s: float = 2.0
    #: Socket timeout of one proxied /run (simulations can be slow).
    proxy_timeout_s: float = 600.0
    drain_timeout_s: float = 30.0


@dataclass
class WorkerState:
    """Mutable health record of one worker behind the front."""

    url: str
    healthy: bool = True
    consecutive_failures: int = 0
    last_error: Optional[str] = None


@dataclass
class _ProxyResult:
    status: int
    body: bytes
    headers: Tuple[Tuple[str, str], ...] = ()


class ClusterFront:
    """Routing core of the cluster; the HTTP handler is a shell over it.

    Owns the ring, the per-worker health records, and the cluster
    registry (``cluster.*`` counters).  All ring/health mutation happens
    under one lock; proxying itself runs outside it.
    """

    def __init__(self, worker_urls: List[str], config: ClusterConfig | None = None):
        if not worker_urls:
            raise ServiceError("a cluster front needs at least one worker URL")
        self.config = config if config is not None else ClusterConfig()
        self.registry = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._lock = threading.Lock()
        self.workers: Dict[str, WorkerState] = {
            url: WorkerState(url=url) for url in worker_urls
        }
        self.ring = HashRing(tuple(worker_urls), vnodes=self.config.vnodes)
        self._draining = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        # Pre-register so concurrent first touches never race.
        for name in (
            ROUTED_METRIC,
            PROXY_ERRORS_METRIC,
            UNAVAILABLE_METRIC,
            REBALANCES_METRIC,
        ):
            self.registry.counter(name)
        self.registry.gauge(HEALTHY_WORKERS_METRIC).set(len(worker_urls))

    # -- metrics --------------------------------------------------------
    def _count(self, name: str, **labels: Any) -> None:
        with self._metrics_lock:
            self.registry.counter(name).inc(**labels)

    def _set_healthy_gauge(self, value: int) -> None:
        with self._metrics_lock:
            self.registry.gauge(HEALTHY_WORKERS_METRIC).set(value)

    # -- ring / health --------------------------------------------------
    def route(self, digest: str) -> Optional[str]:
        """The worker URL owning ``digest`` on the current ring."""
        with self._lock:
            return self.ring.node_for(digest)

    def mark_unhealthy(self, url: str, reason: str) -> None:
        """Drop a worker from the ring (no-op if already out)."""
        with self._lock:
            state = self.workers.get(url)
            if state is None:
                return
            state.consecutive_failures += 1
            state.last_error = reason
            if not state.healthy:
                return
            state.healthy = False
            self.ring.remove(url)
            healthy = sum(1 for s in self.workers.values() if s.healthy)
        self._count(REBALANCES_METRIC, direction="out")
        self._set_healthy_gauge(healthy)

    def mark_healthy(self, url: str) -> None:
        """Re-admit a recovered worker to the ring (no-op if present)."""
        with self._lock:
            state = self.workers.get(url)
            if state is None:
                return
            state.consecutive_failures = 0
            state.last_error = None
            if state.healthy:
                return
            state.healthy = True
            self.ring.add(url)
            healthy = sum(1 for s in self.workers.values() if s.healthy)
        self._count(REBALANCES_METRIC, direction="in")
        self._set_healthy_gauge(healthy)

    def check_workers(self) -> None:
        """One health sweep: probe every worker's ``/healthz``."""
        for url in list(self.workers):
            try:
                with urllib.request.urlopen(
                    f"{url}/healthz", timeout=self.config.health_timeout_s
                ) as response:
                    ok = response.status == 200
            except (urllib.error.URLError, OSError) as error:
                self.mark_unhealthy(url, f"healthz: {error}")
                continue
            if ok:
                self.mark_healthy(url)
            else:
                self.mark_unhealthy(url, "healthz: non-200")

    def start_monitor(self) -> None:
        """Start the background health sweep (idempotent)."""
        if self._monitor is not None:
            return

        def loop() -> None:
            while not self._monitor_stop.wait(self.config.health_interval_s):
                self.check_workers()

        self._monitor = threading.Thread(
            target=loop, name="cluster-health", daemon=True
        )
        self._monitor.start()

    # -- request path ---------------------------------------------------
    def handle_run(
        self, body: bytes, traceparent: Optional[str] = None
    ) -> _ProxyResult:
        """Route one ``POST /run`` body to its owning worker."""
        if self._draining:
            self._count(UNAVAILABLE_METRIC, reason="draining")
            return self._unavailable("cluster front is draining")
        # Validate here so malformed bodies are rejected at the edge
        # with the same deterministic 400 a worker would produce.
        request = parse_run_request(body)
        digest = request.cache_digest()
        with self._inflight_cond:
            self._inflight += 1
        try:
            return self._proxy(digest, body, traceparent)
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()

    def _proxy(
        self, digest: str, body: bytes, traceparent: Optional[str]
    ) -> _ProxyResult:
        url = self.route(digest)
        if url is None:
            self._count(UNAVAILABLE_METRIC, reason="no-workers")
            return self._unavailable("no healthy workers on the ring")
        self._count(ROUTED_METRIC, worker=url)
        headers = {"Content-Type": "application/json"}
        if traceparent:
            headers["traceparent"] = traceparent
        proxied = urllib.request.Request(
            f"{url}/run", data=body, headers=headers, method="POST"
        )
        try:
            with urllib.request.urlopen(
                proxied, timeout=self.config.proxy_timeout_s
            ) as response:
                return _ProxyResult(
                    status=response.status,
                    body=response.read(),
                    headers=self._forwarded(response.headers, url),
                )
        except urllib.error.HTTPError as error:
            # The worker answered (429/503/504/...): pass it through —
            # its body and Retry-After are already deterministic.
            with error:
                return _ProxyResult(
                    status=error.code,
                    body=error.read(),
                    headers=self._forwarded(error.headers, url),
                )
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            # Transport failure: the worker is gone.  Rebalance the
            # ring and tell the client to retry — the retry re-routes
            # onto a surviving worker (which still sees the shared L2).
            self._count(PROXY_ERRORS_METRIC, worker=url)
            self.mark_unhealthy(url, f"proxy: {error}")
            self._count(UNAVAILABLE_METRIC, reason="worker-lost")
            return self._unavailable(
                "worker lost mid-request; ring rebalanced, retry"
            )

    def _forwarded(
        self, headers: Any, worker_url: str
    ) -> Tuple[Tuple[str, str], ...]:
        out: List[Tuple[str, str]] = [("X-Cluster-Worker", worker_url)]
        for name in _FORWARD_HEADERS:
            value = headers.get(name)
            if value is not None:
                out.append((name, value))
        return tuple(out)

    def _unavailable(self, message: str) -> _ProxyResult:
        payload = error_payload(503, "unavailable", message)
        payload["retry_after_s"] = self.config.retry_after_s
        return _ProxyResult(
            status=503,
            body=encode(payload),
            headers=(("Retry-After", f"{self.config.retry_after_s:g}"),),
        )

    # -- fan-out reads --------------------------------------------------
    def _fetch(self, url: str, path: str) -> Optional[bytes]:
        try:
            with urllib.request.urlopen(
                f"{url}{path}", timeout=self.config.health_timeout_s
            ) as response:
                return response.read()
        except (urllib.error.URLError, OSError):
            return None

    def health_payload(self) -> Dict[str, Any]:
        """Aggregate ``GET /healthz``: front status + per-worker states."""
        with self._lock:
            states = [
                {
                    "url": state.url,
                    "healthy": state.healthy,
                    "consecutive_failures": state.consecutive_failures,
                }
                for state in self.workers.values()
            ]
            healthy = sum(1 for s in states if s["healthy"])
        if self._draining:
            status = "draining"
        elif healthy == len(states):
            status = "ok"
        elif healthy > 0:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "workers": sorted(states, key=lambda s: s["url"]),
            "healthy_workers": healthy,
        }

    def metrics_text(self) -> str:
        """Front counters plus every live worker's scrape, merged."""
        with self._metrics_lock:
            own = self.registry.render_prometheus()
        scrapes = []
        with self._lock:
            live = [s.url for s in self.workers.values() if s.healthy]
        for url in sorted(live):
            text = self._fetch(url, "/metrics")
            if text is not None:
                scrapes.append(text.decode("utf-8"))
        return own + merge_expositions(scrapes)

    def trace_payload(self, path: str) -> Optional[bytes]:
        """Fan a ``/debug/trace/...`` read out; first worker that has it."""
        with self._lock:
            live = [s.url for s in self.workers.values() if s.healthy]
        for url in sorted(live):
            try:
                with urllib.request.urlopen(
                    f"{url}{path}", timeout=self.config.health_timeout_s
                ) as response:
                    if response.status == 200:
                        return response.read()
            except (urllib.error.URLError, OSError):
                continue
        return None

    # -- lifecycle ------------------------------------------------------
    def drain(self, *, timeout_s: Optional[float] = None) -> bool:
        """Refuse new routes, wait for in-flight proxied requests."""
        self._draining = True
        if timeout_s is None:
            timeout_s = self.config.drain_timeout_s
        with self._inflight_cond:
            return self._inflight_cond.wait_for(
                lambda: self._inflight == 0, timeout=timeout_s
            )

    def close(self) -> None:
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
            self._monitor = None


class ClusterHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs to the :class:`ClusterFront` on the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-cluster"
    sys_version = ""

    @property
    def front(self) -> ClusterFront:
        return self.server.front  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/healthz":
            self._send(200, encode(self.front.health_payload()))
        elif self.path == "/metrics":
            body = self.front.metrics_text().encode("utf-8")
            self._send(200, body, content_type="text/plain; charset=utf-8")
        elif self.path.startswith(("/debug/trace/", "/debug/traces", "/debug/requests")):
            body = self.front.trace_payload(self.path)
            if body is None:
                self._send(
                    404,
                    encode(
                        error_payload(404, "not-found", f"no worker has {self.path!r}")
                    ),
                )
            else:
                self._send(200, body)
        else:
            self._send(
                404,
                encode(error_payload(404, "not-found", f"no route {self.path!r}")),
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path != "/run":
            self._send(
                404,
                encode(error_payload(404, "not-found", f"no route {self.path!r}")),
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if length > MAX_BODY_BYTES:
                raise ProtocolError(
                    f"request body too large ({length} bytes > {MAX_BODY_BYTES})"
                )
            result = self.front.handle_run(
                self.rfile.read(length), self.headers.get("traceparent")
            )
        except (ProtocolError, ValueError) as error:
            self._send(400, encode(error_payload(400, "bad-request", str(error))))
            return
        self._send(result.status, result.body, extra_headers=result.headers)


class ClusterServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the front for its handlers."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], front: ClusterFront):
        super().__init__(address, ClusterHandler)
        self.front = front


def make_cluster_server(
    front: ClusterFront, *, host: str | None = None, port: int | None = None
) -> ClusterServer:
    """Bind the front's HTTP server (port 0 picks a free port)."""
    if host is None:
        host = front.config.host
    if port is None:
        port = front.config.port
    return ClusterServer((host, port), front)


class LocalCluster:
    """In-process cluster: N worker services + a front, all on threads.

    Tests and ``repro loadtest --cluster`` use this to exercise the
    real HTTP routing path (every byte travels through sockets exactly
    as in production) without subprocess startup cost.  Workers share
    the process-wide run cache and — when ``store_dir`` is set — one
    L2 store directory, mirroring the deployed topology.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        store_dir: Optional[str] = None,
        config: ClusterConfig | None = None,
        worker_config: ServiceConfig | None = None,
    ):
        if workers <= 0:
            raise ServiceError(f"cluster needs at least one worker, got {workers}")
        self.config = config if config is not None else ClusterConfig(workers=workers)
        base = worker_config if worker_config is not None else ServiceConfig()
        self.services: List[SimulationService] = []
        self.worker_servers: List[Any] = []
        self._threads: List[threading.Thread] = []
        urls: List[str] = []
        for _ in range(workers):
            service = SimulationService(
                ServiceConfig(
                    host=self.config.host,
                    port=0,
                    workers=base.workers,
                    queue_depth=base.queue_depth,
                    request_timeout_s=base.request_timeout_s,
                    telemetry=base.telemetry,
                    tracing=base.tracing,
                    store_dir=store_dir,
                    store_max_bytes=self.config.store_max_bytes,
                )
            )
            httpd = make_server(service)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            host, port = httpd.server_address[:2]
            urls.append(f"http://{host}:{port}")
            self.services.append(service)
            self.worker_servers.append(httpd)
            self._threads.append(thread)
        self.front = ClusterFront(urls, self.config)
        self.front_server = make_cluster_server(self.front, port=0)
        self._front_thread = threading.Thread(
            target=self.front_server.serve_forever, daemon=True
        )
        self._front_thread.start()
        self.worker_urls = urls

    @property
    def url(self) -> str:
        host, port = self.front_server.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.front.drain(timeout_s=5.0)
        self.front.close()
        self.front_server.shutdown()
        self.front_server.server_close()
        for httpd in self.worker_servers:
            httpd.shutdown()
            httpd.server_close()
        for service in self.services:
            service.drain(timeout_s=5.0)
            service.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _free_port(host: str) -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _wait_healthy(url: str, *, timeout_s: float) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=1.0) as response:
                if response.status == 200:
                    return True
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.1)
    return False


def run_cluster(config: ClusterConfig) -> int:
    """Foreground entry point for ``repro cluster``; blocks until signalled.

    Spawns ``config.workers`` subprocess ``repro serve`` daemons on free
    ports (all sharing ``--store-dir`` when set), fronts them with the
    router, and on SIGTERM/SIGINT drains the front, then terminates and
    reaps the workers.  Returns 0 on a clean drain.
    """
    host = config.host
    procs: List[subprocess.Popen] = []
    urls: List[str] = []
    try:
        for _ in range(config.workers):
            port = _free_port(host)
            argv = [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--host",
                host,
                "--port",
                str(port),
                "--workers",
                str(config.worker_threads),
                "--queue-depth",
                str(config.queue_depth),
            ]
            if config.request_timeout_s is not None:
                argv += ["--request-timeout", str(config.request_timeout_s)]
            if config.store_dir is not None:
                argv += [
                    "--store-dir",
                    config.store_dir,
                    "--store-max-mb",
                    str(max(1, config.store_max_bytes // (1024 * 1024))),
                ]
            procs.append(subprocess.Popen(argv))
            urls.append(f"http://{host}:{port}")
        for url in urls:
            if not _wait_healthy(url, timeout_s=30.0):
                print(f"repro cluster: worker {url} failed to start", flush=True)
                return 1
        front = ClusterFront(urls, config)
        front.start_monitor()
        httpd = make_cluster_server(front)

        def _shutdown(signum: int, frame: Any) -> None:
            front._draining = True
            threading.Thread(target=httpd.shutdown, daemon=True).start()

        previous = {
            sig: signal.signal(sig, _shutdown)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            fhost, fport = httpd.server_address[:2]
            print(
                f"repro cluster front on http://{fhost}:{fport} "
                f"({len(urls)} workers)",
                flush=True,
            )
            httpd.serve_forever()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            httpd.server_close()
        drained = front.drain()
        front.close()
        print(
            "repro cluster drained cleanly"
            if drained
            else "repro cluster drain timed out",
            flush=True,
        )
        return 0 if drained else 1
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=config.drain_timeout_s)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
