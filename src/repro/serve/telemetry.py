"""Per-request telemetry: IDs, the structured journal, the access log.

Every ``POST /run`` is assigned a monotonically increasing request ID
at admission (echoed back as an ``X-Request-Id`` header) and leaves one
structured record behind: the canonical cache key it resolved to, its
outcome (``simulated`` / ``coalesced`` / ``cached`` / ``rejected-429``
/ ``timeout-504`` / ...), and its stage durations (queue wait, simulate,
end-to-end).  Records land in a bounded in-memory ring buffer — the
:class:`RequestJournal`, served at ``GET /debug/requests`` — and,
when the operator opts in, as JSON lines in the :class:`AccessLog`
(the structured replacement for the suppressed ``http.server``
``log_message``).

Nothing here touches the simulation: telemetry reads timestamps and
outcomes, so enabling it cannot change a simulated number or a response
byte (pinned by the A/B test in ``tests/test_obs.py``).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

# -- outcome vocabulary (journal + access log) --------------------------

OUTCOME_SIMULATED = "simulated"
#: Simulated as part of a micro-batch of >= 2 fused requests.
OUTCOME_BATCHED = "batched"
OUTCOME_COALESCED = "coalesced"
OUTCOME_CACHED = "cached"
OUTCOME_REJECTED = "rejected-429"
OUTCOME_TIMEOUT = "timeout-504"
OUTCOME_DRAINING = "rejected-503"
OUTCOME_BAD_REQUEST = "bad-request"
OUTCOME_ERROR = "error"

#: Stage-latency histogram names (all observed in seconds with the
#: log-spaced default latency buckets).
QUEUE_WAIT_METRIC = "serve.latency.queue_wait_seconds"
SIMULATE_METRIC = "serve.latency.simulate_seconds"
TOTAL_METRIC = "serve.latency.total_seconds"
COALESCE_WAIT_METRIC = "serve.latency.coalesce_wait_seconds"


def _round_ms(seconds: Optional[float]) -> Optional[float]:
    if seconds is None:
        return None
    return round(seconds * 1e3, 3)


@dataclass
class RequestContext:
    """Mutable per-request telemetry carried through the request path.

    When tracing is enabled the context also carries the request's
    trace identity — the ``trace_id`` propagated from (or minted for)
    the client, the server's own request ``span_id``, and the client's
    ``parent_span_id`` — plus the stage timestamps and accumulated
    :class:`~repro.obs.spans.SpanRecord` children the service flushes
    to its span store when the request finishes.
    """

    request_id: str
    started: float  # perf_counter at admission
    cache_key: Optional[str] = None
    outcome: Optional[str] = None
    queue_wait_s: Optional[float] = None
    simulate_s: Optional[float] = None
    # -- distributed tracing (None everywhere when tracing is off) ------
    trace_id: Optional[str] = None
    span_id: Optional[str] = None  # the serve.request span
    parent_span_id: Optional[str] = None  # the client's span, if propagated
    sim_span_id: Optional[str] = None  # the serve.simulate span (leaders)
    queue_entered: Optional[float] = None  # perf_counter at queue submit
    simulate_started: Optional[float] = None  # perf_counter at worker pickup
    spans: List[Any] = field(default_factory=list)

    def record(self, *, status: int, total_s: float) -> Dict[str, Any]:
        """The journal/access-log form of this request's telemetry."""
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "cache_key": self.cache_key,
            "outcome": self.outcome,
            "status": status,
            "queue_wait_ms": _round_ms(self.queue_wait_s),
            "simulate_ms": _round_ms(self.simulate_s),
            "total_ms": _round_ms(total_s),
        }


class RequestJournal:
    """Bounded, thread-safe ring buffer of structured request records.

    Holds the last ``capacity`` records in arrival order; older entries
    fall off the front.  ``tail(n)`` returns the newest ``n`` records
    oldest-first, so ``/debug/requests`` reads chronologically.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"journal capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._records)
        if n is not None and n >= 0:
            records = records[-n:] if n else []
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class RequestIds:
    """Monotonic request-ID source (``req-000001``, ``req-000002``, ...)."""

    def __init__(self, prefix: str = "req"):
        self._prefix = prefix
        self._next = 0
        self._lock = threading.Lock()

    def next_id(self) -> str:
        with self._lock:
            self._next += 1
            return f"{self._prefix}-{self._next:06d}"


class AccessLog:
    """Opt-in JSON-lines access log (one object per served request).

    ``path`` names a file to append to, or ``"-"`` for stderr.  Each
    line carries the request record plus the HTTP envelope (method,
    path, status) and a wall-clock timestamp — the log is an operator
    artifact, unlike the deterministic journal/response payloads.
    """

    def __init__(self, path: str, *, clock=time.time):
        self.path = path
        self._clock = clock
        self._lock = threading.Lock()
        self._stream = sys.stderr if path == "-" else open(path, "a")

    def write(self, method: str, path: str, status: int, **fields: Any) -> None:
        entry: Dict[str, Any] = {
            "ts": round(self._clock(), 6),
            "method": method,
            "path": path,
            "status": status,
        }
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._stream is not sys.stderr:
                self._stream.close()


__all__ = [
    "OUTCOME_SIMULATED",
    "OUTCOME_BATCHED",
    "OUTCOME_COALESCED",
    "OUTCOME_CACHED",
    "OUTCOME_REJECTED",
    "OUTCOME_TIMEOUT",
    "OUTCOME_DRAINING",
    "OUTCOME_BAD_REQUEST",
    "OUTCOME_ERROR",
    "QUEUE_WAIT_METRIC",
    "SIMULATE_METRIC",
    "TOTAL_METRIC",
    "COALESCE_WAIT_METRIC",
    "RequestContext",
    "RequestJournal",
    "RequestIds",
    "AccessLog",
]
