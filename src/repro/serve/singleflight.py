"""Single-flight request coalescing.

When N identical requests are in flight at once, exactly one of them
(the *leader*) executes; the other N-1 (*followers*) block on the
leader's completion and share its result — or its exception.  This is
the service-scale analog of the paper's single shared SCU: many clients
offload the same work to one unit instead of each redoing it.

Coalescing is keyed by the request's canonical
:meth:`~repro.request.RunRequest.cache_key`, so a burst of identical
cold requests costs one simulation; once the leader finishes, the
shared run cache serves everyone else.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Hashable, Optional

from ..errors import ServiceTimeoutError
from ..obs.metrics import MetricsRegistry

#: Counter incremented once per follower that attaches to a leader.
COALESCED_METRIC = "serve.singleflight.coalesced_hits"


class _Call:
    """One in-flight execution and its eventual outcome."""

    __slots__ = ("done", "value", "error", "waiters")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.waiters = 0


class SingleFlight:
    """Per-key duplicate-call suppression for concurrent workloads."""

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        observe_wait: Optional[Callable[[float], None]] = None,
    ):
        self._lock = threading.Lock()
        self._calls: Dict[Hashable, _Call] = {}
        self._registry = registry
        #: Called with each follower's wait-for-leader duration (s).
        self._observe_wait = observe_wait

    def waiters(self, key: Hashable) -> int:
        """How many followers are currently attached to ``key``'s leader."""
        with self._lock:
            call = self._calls.get(key)
            return call.waiters if call is not None else 0

    def do(
        self,
        key: Hashable,
        fn: Callable[[], Any],
        *,
        timeout_s: Optional[float] = None,
    ) -> Any:
        """Execute ``fn`` once per concurrent burst of identical keys.

        The leader runs ``fn`` synchronously; followers wait up to
        ``timeout_s`` for the leader's outcome (a
        :class:`~repro.errors.ServiceTimeoutError` if it does not land
        in time) and then re-raise its exception or return its value.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is None:
                call = self._calls[key] = _Call()
                leader = True
            else:
                leader = False
                call.waiters += 1
                # counted under the lock: concurrent followers must not
                # lose increments (the counter is a plain dict update).
                if self._registry is not None:
                    self._registry.counter(COALESCED_METRIC).inc()
        if leader:
            try:
                call.value = fn()
            except BaseException as error:  # noqa: BLE001 — shared verbatim
                call.error = error
            finally:
                with self._lock:
                    self._calls.pop(key, None)
                call.done.set()
            if call.error is not None:
                raise call.error
            return call.value
        wait_started = time.perf_counter()
        if not call.done.wait(timeout_s):
            raise ServiceTimeoutError(
                f"coalesced request did not complete within {timeout_s}s"
            )
        if self._observe_wait is not None:
            self._observe_wait(time.perf_counter() - wait_started)
        if call.error is not None:
            raise call.error
        return call.value
