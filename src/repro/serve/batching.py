"""Micro-batching admission window for the serve request path.

With ``--batch-window-ms`` enabled, the first single-flight leader to
arrive for a :func:`~repro.algorithms.runner.batch_compatibility_key`
(dataset × seed × gpu) opens a *window*: compatible requests that show
up within it join the same batch instead of each taking a worker-queue
slot.  When the window expires — or the batch hits ``--batch-max`` —
the window leader seals the batch and executes it as **one** queue task
(:func:`~repro.algorithms.runner.run_batch`: one graph load, fused
per-group simulation), then every member wakes with its own report.

The batcher sits *inside* single-flight: identical digests still
coalesce onto one leader as before, and only distinct-but-compatible
digests meet in a window.  Each member keeps its own request context
(request id, trace id, journal row); the service links non-leader
members to the leader's ``serve.batch`` span the same way coalesced
followers link to their leader's simulate span.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..algorithms.runner import batch_compatibility_key
from ..errors import ServiceTimeoutError
from ..request import RunRequest

#: Requests that entered a batching window (whether or not they fused).
BATCH_REQUESTS_METRIC = "serve.batch.requests"
#: Sealed batches executed (each takes one worker-queue slot).
BATCH_BATCHES_METRIC = "serve.batch.batches"
#: Requests that shared a batch with at least one other request — the
#: numerator of the loadtest's ``batched`` outcome ratio.
BATCH_FUSED_METRIC = "serve.batch.fused_requests"
#: Sealed batch sizes (explicit buckets so the Prometheus exposition
#: renders the ``serve_batch_size_bucket{le=...}`` series CI asserts on).
BATCH_SIZE_METRIC = "serve.batch.size"
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

__all__ = [
    "BATCH_REQUESTS_METRIC",
    "BATCH_BATCHES_METRIC",
    "BATCH_FUSED_METRIC",
    "BATCH_SIZE_METRIC",
    "BATCH_SIZE_BUCKETS",
    "BatchMember",
    "MicroBatcher",
]


@dataclass
class BatchMember:
    """One request's seat in a batch; filled in by the execute callback."""

    request: RunRequest
    ctx: Any  # the service's RequestContext (opaque to the batcher)
    done: threading.Event = field(default_factory=threading.Event)
    report: Any = None
    error: Optional[BaseException] = None
    #: Sealed batch size; every member of a batch sees the same value.
    size: int = 0
    #: True for the window leader (the member whose thread executed).
    leader: bool = False
    #: ``(trace_id, span_id)`` of the leader's ``serve.batch`` span, for
    #: non-leader members to link to from their own traces.
    link: Optional[Tuple[str, str]] = None


class _Batch:
    __slots__ = ("key", "members", "sealed", "full", "opened")

    def __init__(self, key: Tuple, member: BatchMember):
        self.key = key
        self.members: List[BatchMember] = [member]
        self.sealed = False
        self.full = threading.Event()
        self.opened = time.perf_counter()


class MicroBatcher:
    """Groups compatible requests behind a short admission window.

    Args:
        window_s: how long the window leader waits for company.
        max_size: seal early once this many members joined.
        execute: callback run on the leader's thread with the sealed
            member list and the window-open timestamp; it must set
            ``member.report`` on every member (or raise, which fails
            the whole batch).
    """

    def __init__(
        self,
        *,
        window_s: float,
        max_size: int,
        execute: Callable[[Sequence[BatchMember], float], None],
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.window_s = window_s
        self.max_size = max_size
        self._execute = execute
        self._lock = threading.Lock()
        self._open: Dict[Tuple, _Batch] = {}

    def submit(
        self,
        request: RunRequest,
        ctx: Any = None,
        *,
        timeout_s: Optional[float] = None,
    ) -> BatchMember:
        """Join (or open) the window for this request's compatibility key.

        Blocks until the batch executes: the window leader waits out the
        window and runs ``execute``; followers wait on their member
        event (at most ``timeout_s`` beyond the leader's own deadline).
        """
        member = BatchMember(request=request, ctx=ctx)
        key = batch_compatibility_key(request)
        with self._lock:
            batch = self._open.get(key)
            if batch is not None and not batch.sealed:
                batch.members.append(member)
                if len(batch.members) >= self.max_size:
                    batch.sealed = True
                    del self._open[key]
                    batch.full.set()
                follower_of = batch
            else:
                follower_of = None
                batch = _Batch(key, member)
                member.leader = True
                if self.max_size > 1:
                    self._open[key] = batch
        if follower_of is not None:
            # The leader seals, executes, fills our report, sets done.
            budget = timeout_s + self.window_s if timeout_s is not None else None
            if not member.done.wait(budget):
                raise ServiceTimeoutError(
                    f"batched request exceeded {budget}s waiting for its batch"
                )
            if member.error is not None:
                raise member.error
            return member

        # Window leader: wait for the window (or an early full seal).
        # A max_size of 1 degenerates to no window — execute right away.
        if self.max_size > 1:
            batch.full.wait(self.window_s)
        with self._lock:
            batch.sealed = True
            if self._open.get(key) is batch:
                del self._open[key]
            members = list(batch.members)
        for seat in members:
            seat.size = len(members)
        try:
            self._execute(members, batch.opened)
        except BaseException as exc:  # noqa: BLE001 — fail every member alike
            for seat in members:
                seat.error = exc
        finally:
            for seat in members:
                seat.done.set()
        if member.error is not None:
            raise member.error
        return member

    def open_windows(self) -> int:
        """Currently open (unsealed) windows — introspection for tests."""
        with self._lock:
            return len(self._open)
