"""The ``repro serve`` daemon: HTTP front-end over the simulator.

Stdlib-only: a :class:`ThreadingHTTPServer` accepts JSON run requests,
validates them into typed :class:`~repro.request.RunRequest` objects,
and executes them on a bounded worker pool.  The request path layers
three protections, outermost first:

1. **single-flight** — concurrent identical requests coalesce onto one
   leader; followers share its report (`serve.singleflight.coalesced_hits`);
2. **admission control** — at most ``queue_depth`` requests wait for the
   ``workers``-wide pool; overflow is a deterministic 429 + Retry-After;
3. **run cache** — completed reports land in the process-wide LRU run
   cache, so repeats after the burst never reach the queue at all.

``--isolate`` additionally pushes each simulation into a fork-spawned
child via :func:`~repro.harness.parallel.run_sweep` with
``fallback=False``, so a per-request timeout genuinely kills the work
instead of abandoning a thread.

Routes: ``POST /run``, ``GET /healthz``, ``GET /metrics`` (Prometheus
text format, service + process-global registries).
"""

from __future__ import annotations

import signal
import threading
import time
import urllib.parse
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..errors import (
    ProtocolError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from ..harness.parallel import SweepFailure, run_sweep
from ..obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    global_metrics,
)
from ..phases import RunReport
from ..request import RunRequest
from .admission import REJECTED_METRIC, ServiceQueue
from .protocol import (
    MAX_BODY_BYTES,
    encode,
    error_payload,
    parse_run_request,
    run_response,
)
from .singleflight import SingleFlight
from .telemetry import (
    COALESCE_WAIT_METRIC,
    OUTCOME_BAD_REQUEST,
    OUTCOME_CACHED,
    OUTCOME_COALESCED,
    OUTCOME_DRAINING,
    OUTCOME_ERROR,
    OUTCOME_REJECTED,
    OUTCOME_SIMULATED,
    OUTCOME_TIMEOUT,
    QUEUE_WAIT_METRIC,
    SIMULATE_METRIC,
    TOTAL_METRIC,
    AccessLog,
    RequestContext,
    RequestIds,
    RequestJournal,
)

REQUESTS_METRIC = "serve.requests"
SIMULATIONS_METRIC = "serve.simulations"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    queue_depth: int = 8
    request_timeout_s: Optional[float] = None
    retry_after_s: float = 1.0
    run_isolated: bool = False
    drain_timeout_s: float = 30.0
    #: Master switch for request-level telemetry (journal + stage
    #: latency histograms).  Off, the service records only the PR-4
    #: counters/gauges — and responses are byte-identical either way.
    telemetry: bool = True
    #: JSON-lines access log destination (a path, or "-" for stderr);
    #: None (the default) disables access logging entirely.
    access_log: Optional[str] = None
    #: Ring-buffer capacity of the /debug/requests journal.
    journal_size: int = 256


def _isolated_run(request: RunRequest) -> RunReport:
    """Sweep worker: simulate one request in a child process."""
    from ..algorithms.runner import execute_request

    return execute_request(request).report


class SimulationService:
    """Request execution core; the HTTP handler is a thin shell over it."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config if config is not None else ServiceConfig()
        self.registry = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self.telemetry = self.config.telemetry
        self._request_ids = RequestIds()
        self.journal = (
            RequestJournal(self.config.journal_size) if self.telemetry else None
        )
        self.access_log = (
            AccessLog(self.config.access_log)
            if self.config.access_log is not None
            else None
        )
        # Pre-register every service instrument so concurrent first
        # touches never race on the registry's get-or-create dict.
        self.registry.counter(REQUESTS_METRIC)
        self.registry.counter(SIMULATIONS_METRIC)
        self.registry.counter(REJECTED_METRIC)
        if self.telemetry:
            for name in (
                QUEUE_WAIT_METRIC,
                SIMULATE_METRIC,
                TOTAL_METRIC,
                COALESCE_WAIT_METRIC,
            ):
                self.registry.histogram(name, buckets=DEFAULT_LATENCY_BUCKETS)
        self._singleflight = SingleFlight(
            registry=self.registry,
            observe_wait=(
                self._make_wait_observer(COALESCE_WAIT_METRIC)
                if self.telemetry
                else None
            ),
        )
        self._queue = ServiceQueue(
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            registry=self.registry,
            retry_after_s=self.config.retry_after_s,
            observe_wait=(
                self._make_wait_observer(QUEUE_WAIT_METRIC)
                if self.telemetry
                else None
            ),
        )
        self._draining = False

    # -- metrics (the registry's instruments are not thread-safe) -------
    def _count(self, name: str, **labels: Any) -> None:
        with self._metrics_lock:
            self.registry.counter(name).inc(**labels)

    def _observe_latency(self, name: str, seconds: float) -> None:
        with self._metrics_lock:
            self.registry.histogram(name).observe(seconds)

    def _make_wait_observer(self, name: str):
        return lambda seconds: self._observe_latency(name, seconds)

    # -- per-request telemetry ------------------------------------------
    def begin_request(self) -> RequestContext:
        """Admit one HTTP request: assign its ID, stamp its start."""
        return RequestContext(
            request_id=self._request_ids.next_id(),
            started=time.perf_counter(),
        )

    def finish_request(
        self,
        ctx: RequestContext,
        *,
        method: str,
        path: str,
        status: int,
        error: Optional[BaseException] = None,
    ) -> None:
        """Close out one request: histogram, journal, access log."""
        total_s = time.perf_counter() - ctx.started
        if error is not None:
            ctx.outcome = _error_outcome(error)
        elif ctx.outcome is None:
            ctx.outcome = OUTCOME_ERROR
        record = ctx.record(status=status, total_s=total_s)
        if self.telemetry:
            self._observe_latency(TOTAL_METRIC, total_s)
            self.journal.append(record)
        if self.access_log is not None:
            fields = {k: v for k, v in record.items() if k != "status"}
            self.access_log.write(method, path, status, **fields)

    def log_access(self, method: str, path: str, status: int) -> None:
        """Access-log one non-/run request (no journal entry)."""
        if self.access_log is not None:
            self.access_log.write(method, path, status)

    def journal_payload(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The ``GET /debug/requests`` body."""
        if self.journal is None:
            return {"enabled": False, "capacity": 0, "requests": []}
        return {
            "enabled": True,
            "capacity": self.journal.capacity,
            "requests": self.journal.tail(limit),
        }

    # -- request path ---------------------------------------------------
    def handle_run(
        self, request: RunRequest, ctx: Optional[RequestContext] = None
    ) -> Dict[str, Any]:
        """Execute (or coalesce, or reject) one validated run request."""
        from ..algorithms.runner import get_cached_report

        if ctx is not None:
            ctx.cache_key = encode(request.to_dict()).decode("utf-8")
        if self._draining:
            self._count(REJECTED_METRIC, reason="draining")
            raise ServiceUnavailableError("service is draining; not accepting work")
        self._count(REQUESTS_METRIC, route="run")
        report = get_cached_report(request)
        if report is not None:
            if ctx is not None:
                ctx.outcome = OUTCOME_CACHED
        else:
            report = self._singleflight.do(
                request.cache_key(),
                lambda: self._run_queued(request, ctx),
                timeout_s=self.config.request_timeout_s,
            )
            if ctx is not None and ctx.outcome is None:
                # Our closure never ran: a concurrent leader's did.
                ctx.outcome = OUTCOME_COALESCED
        return run_response(request, report)

    def _run_queued(
        self, request: RunRequest, ctx: Optional[RequestContext]
    ) -> RunReport:
        """Single-flight leader body: admit to the queue and wait."""
        if ctx is not None:
            ctx.outcome = OUTCOME_SIMULATED
        task = self._queue.submit(lambda: self._simulate(request, ctx))
        try:
            return self._queue.wait(
                task, timeout_s=self.config.request_timeout_s
            )
        finally:
            if ctx is not None:
                ctx.queue_wait_s = task.queue_wait_s

    def _simulate(
        self, request: RunRequest, ctx: Optional[RequestContext] = None
    ) -> RunReport:
        """Worker-side execution of one admitted request."""
        from ..algorithms.runner import (
            execute_request,
            get_cached_report,
            put_cached_report,
        )

        # A previous leader may have finished between the handler's cache
        # probe and this task reaching a worker.
        report = get_cached_report(request)
        if report is not None:
            return report
        self._count(SIMULATIONS_METRIC)
        started = time.perf_counter()
        if self.config.run_isolated:
            report = self._simulate_isolated(request)
        else:
            report = execute_request(request).report
        simulate_s = time.perf_counter() - started
        if ctx is not None:
            ctx.simulate_s = simulate_s
        if self.telemetry:
            self._observe_latency(SIMULATE_METRIC, simulate_s)
        put_cached_report(request, report)
        return report

    def _simulate_isolated(self, request: RunRequest) -> RunReport:
        """Run in a killable child process (hard per-request timeout)."""
        try:
            outcomes = run_sweep(
                [request],
                _isolated_run,
                jobs=2,  # >1 forces process isolation even for one task
                timeout_s=self.config.request_timeout_s,
                retries=0,
                fallback=False,
            )
        except SweepFailure as failure:
            if failure.reason == "timeout":
                raise ServiceTimeoutError(
                    f"isolated simulation exceeded "
                    f"{self.config.request_timeout_s}s"
                ) from failure
            raise ServiceError(f"isolated simulation failed: {failure}") from failure
        return outcomes[0].value

    # -- introspection / lifecycle --------------------------------------
    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "workers": self.config.workers,
            "queue_depth": self._queue.depth,
            "queue_capacity": self.config.queue_depth,
            "inflight": self._queue.inflight,
        }

    def metrics_text(self) -> str:
        with self._metrics_lock:
            service = self.registry.render_prometheus()
        return service + global_metrics().render_prometheus()

    def drain(self, *, timeout_s: Optional[float] = None) -> bool:
        """Refuse new work, then wait for queued + in-flight requests."""
        self._draining = True
        if timeout_s is None:
            timeout_s = self.config.drain_timeout_s
        return self._queue.drain(timeout_s=timeout_s)

    def close(self) -> None:
        """Release operator-facing resources (the access-log stream)."""
        if self.access_log is not None:
            self.access_log.close()


#: (exception class -> HTTP status, stable error code); checked in order.
_ERROR_MAP: Tuple[Tuple[type, int, str], ...] = (
    (ProtocolError, 400, "bad-request"),
    (ServiceOverloadError, 429, "overloaded"),
    (ServiceUnavailableError, 503, "draining"),
    (ServiceTimeoutError, 504, "timeout"),
)

#: (exception class -> journal outcome); checked in order.
_OUTCOME_MAP: Tuple[Tuple[type, str], ...] = (
    (ProtocolError, OUTCOME_BAD_REQUEST),
    (ServiceOverloadError, OUTCOME_REJECTED),
    (ServiceUnavailableError, OUTCOME_DRAINING),
    (ServiceTimeoutError, OUTCOME_TIMEOUT),
    (ValueError, OUTCOME_BAD_REQUEST),
)


def _error_outcome(error: BaseException) -> str:
    for cls, outcome in _OUTCOME_MAP:
        if isinstance(error, cls):
            return outcome
    return OUTCOME_ERROR


class RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs to the :class:`SimulationService` on the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    sys_version = ""

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the metrics registry's job

    # -- response plumbing ---------------------------------------------
    def _send(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error_response(
        self, error: BaseException
    ) -> Tuple[int, bytes, Tuple[Tuple[str, str], ...]]:
        for cls, status, code in _ERROR_MAP:
            if isinstance(error, cls):
                break
        else:
            status, code = 500, "internal"
        extra: Tuple[Tuple[str, str], ...] = ()
        payload = error_payload(status, code, str(error))
        if isinstance(error, ServiceOverloadError):
            payload["retry_after_s"] = error.retry_after_s
            extra = (("Retry-After", f"{error.retry_after_s:g}"),)
        return status, encode(payload), extra

    def _send_error(self, error: BaseException) -> None:
        status, body, extra = self._error_response(error)
        self._send(status, body, extra_headers=extra)

    def _not_found(self) -> None:
        self._send(
            404,
            encode(error_payload(404, "not-found", f"no route {self.path!r}")),
        )
        self.service.log_access("GET", self.path, 404)

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path == "/healthz":
            self._send(200, encode(self.service.health()))
            self.service.log_access("GET", parsed.path, 200)
        elif parsed.path == "/metrics":
            body = self.service.metrics_text().encode("utf-8")
            self._send(200, body, content_type="text/plain; charset=utf-8")
            self.service.log_access("GET", parsed.path, 200)
        elif parsed.path == "/debug/requests":
            limit = _journal_limit(parsed.query)
            self._send(200, encode(self.service.journal_payload(limit)))
            self.service.log_access("GET", parsed.path, 200)
        else:
            self._not_found()

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path != "/run":
            self._not_found()
            return
        ctx = self.service.begin_request()
        rid_header = (("X-Request-Id", ctx.request_id),)
        error: Optional[BaseException] = None
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if length > MAX_BODY_BYTES:
                raise ProtocolError(
                    f"request body too large ({length} bytes > {MAX_BODY_BYTES})"
                )
            request = parse_run_request(self.rfile.read(length))
            response = self.service.handle_run(request, ctx)
        except (ReproError, ValueError) as exc:
            error = exc
            status, body, extra = self._error_response(exc)
        else:
            status, body, extra = 200, encode(response), ()
        # Journal before the response bytes leave: a client that has
        # seen this response will find its record at /debug/requests.
        self.service.finish_request(
            ctx, method="POST", path="/run", status=status, error=error
        )
        self._send(status, body, extra_headers=extra + rid_header)


def _journal_limit(query: str) -> Optional[int]:
    """Parse ``?n=`` from a ``/debug/requests`` query string."""
    for value in urllib.parse.parse_qs(query).get("n", []):
        try:
            return max(0, int(value))
        except ValueError:
            continue
    return None


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service for its handlers."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SimulationService):
        super().__init__(address, RequestHandler)
        self.service = service


def make_server(
    service: SimulationService, *, host: str | None = None, port: int | None = None
) -> ServiceServer:
    """Bind the HTTP server for ``service`` (port 0 picks a free port)."""
    if host is None:
        host = service.config.host
    if port is None:
        port = service.config.port
    return ServiceServer((host, port), service)


def run_service(config: ServiceConfig) -> int:
    """Foreground entry point for ``repro serve``; blocks until signalled.

    SIGTERM/SIGINT stop accepting connections, then drain queued and
    in-flight work before returning (0 on a clean drain, 1 otherwise).
    """
    service = SimulationService(config)
    httpd = make_server(service)

    def _shutdown(signum: int, frame: Any) -> None:
        # shutdown() must not run on the serve_forever thread (deadlock);
        # signal handlers execute on the main thread, which IS that
        # thread here, so hand the call to a helper.
        service._draining = True
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _shutdown) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        host, port = httpd.server_address[:2]
        print(f"repro serve listening on http://{host}:{port}", flush=True)
        httpd.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        httpd.server_close()
    drained = service.drain()
    service.close()
    print(
        "repro serve drained cleanly" if drained else "repro serve drain timed out",
        flush=True,
    )
    return 0 if drained else 1
