"""The ``repro serve`` daemon: HTTP front-end over the simulator.

Stdlib-only: a :class:`ThreadingHTTPServer` accepts JSON run requests,
validates them into typed :class:`~repro.request.RunRequest` objects,
and executes them on a bounded worker pool.  The request path layers
three protections, outermost first:

1. **single-flight** — concurrent identical requests coalesce onto one
   leader; followers share its report (`serve.singleflight.coalesced_hits`);
2. **admission control** — at most ``queue_depth`` requests wait for the
   ``workers``-wide pool; overflow is a deterministic 429 + Retry-After;
3. **run cache** — completed reports land in the process-wide LRU run
   cache, so repeats after the burst never reach the queue at all.

``--isolate`` additionally pushes each simulation into a fork-spawned
child via :func:`~repro.harness.parallel.run_sweep` with
``fallback=False``, so a per-request timeout genuinely kills the work
instead of abandoning a thread.

Routes: ``POST /run``, ``GET /healthz``, ``GET /metrics`` (Prometheus
text format, service + process-global registries).
"""

from __future__ import annotations

import signal
import threading
import time
import urllib.parse
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..errors import (
    ProtocolError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from ..harness.parallel import SweepFailure, run_sweep
from ..obs.lru import LruCache
from ..obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    global_metrics,
)
from ..obs.propagation import new_span_id, new_trace_id, parse_traceparent
from ..obs.spans import (
    SpanRecord,
    SpanStore,
    perf_to_epoch_us,
    reparent_spans,
    spans_from_tracer,
    spans_to_chrome,
)
from ..phases import RunReport
from ..request import RunRequest
from .admission import REJECTED_METRIC, ServiceQueue
from .batching import (
    BATCH_BATCHES_METRIC,
    BATCH_FUSED_METRIC,
    BATCH_REQUESTS_METRIC,
    BATCH_SIZE_BUCKETS,
    BATCH_SIZE_METRIC,
    BatchMember,
    MicroBatcher,
)
from .protocol import (
    MAX_BODY_BYTES,
    encode,
    error_payload,
    parse_run_request,
    run_response,
)
from .singleflight import SingleFlight
from .store import (
    DEFAULT_STORE_MAX_BYTES,
    STORE_CORRUPT_METRIC,
    STORE_EVICTIONS_METRIC,
    STORE_HITS_METRIC,
    STORE_MISSES_METRIC,
    ResultStore,
)
from .telemetry import (
    COALESCE_WAIT_METRIC,
    OUTCOME_BAD_REQUEST,
    OUTCOME_BATCHED,
    OUTCOME_CACHED,
    OUTCOME_COALESCED,
    OUTCOME_DRAINING,
    OUTCOME_ERROR,
    OUTCOME_REJECTED,
    OUTCOME_SIMULATED,
    OUTCOME_TIMEOUT,
    QUEUE_WAIT_METRIC,
    SIMULATE_METRIC,
    TOTAL_METRIC,
    AccessLog,
    RequestContext,
    RequestIds,
    RequestJournal,
)

REQUESTS_METRIC = "serve.requests"
SIMULATIONS_METRIC = "serve.simulations"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    queue_depth: int = 8
    request_timeout_s: Optional[float] = None
    retry_after_s: float = 1.0
    run_isolated: bool = False
    drain_timeout_s: float = 30.0
    #: Master switch for request-level telemetry (journal + stage
    #: latency histograms).  Off, the service records only the PR-4
    #: counters/gauges — and responses are byte-identical either way.
    telemetry: bool = True
    #: JSON-lines access log destination (a path, or "-" for stderr);
    #: None (the default) disables access logging entirely.
    access_log: Optional[str] = None
    #: Ring-buffer capacity of the /debug/requests journal.
    journal_size: int = 256
    #: Master switch for distributed tracing: W3C ``traceparent``
    #: propagation, per-stage + per-phase span records, and the
    #: ``GET /debug/trace/{trace_id}`` span store.  Like telemetry,
    #: responses are byte-identical either way (pinned by tests).
    tracing: bool = True
    #: How many recent traces the in-memory span store retains.
    trace_capacity: int = 128
    #: Per-trace span cap; spans beyond it are counted as dropped.
    trace_spans: int = 2048
    #: Directory of the persistent L2 result store; ``None`` (the
    #: default) runs with the in-memory L1 run cache only.  With a
    #: store, cold starts serve byte-identical responses from disk.
    store_dir: Optional[str] = None
    #: Byte bound of the L2 store (LRU eviction by mtime beyond it).
    store_max_bytes: int = DEFAULT_STORE_MAX_BYTES
    #: Micro-batching admission window (milliseconds).  0 (the default)
    #: disables batching entirely — the request path is exactly the
    #: pre-batching single-flight one.  Positive: the first leader for a
    #: ``(dataset, seed, gpu)`` compatibility key waits this long for
    #: compatible requests, then the whole batch runs as ONE queue task
    #: through :func:`~repro.algorithms.runner.run_batch`.
    batch_window_ms: float = 0.0
    #: Seal a window early once this many requests joined.
    batch_max: int = 8


def _isolated_run(request: RunRequest) -> RunReport:
    """Sweep worker: simulate one request in a child process."""
    from ..algorithms.runner import execute_request

    return execute_request(request).report


def _isolated_traced_run(request: RunRequest) -> Dict[str, Any]:
    """Sweep worker: simulate one request AND ship its spans back.

    The worker records per-phase spans under a local tracer, converts
    them to wire-form span records (absolute wall-clock, no trace
    identity yet — fork shares the parent's clocks), and returns them
    over the existing result pipe; the parent re-parents them under its
    ``serve.simulate`` span via :func:`~repro.obs.spans.reparent_spans`.
    """
    import os

    from ..algorithms.runner import execute_request
    from ..obs import make_observability
    from ..obs.spans import epoch_us_now

    base_us = epoch_us_now()
    obs = make_observability()
    report = execute_request(request, obs=obs).report
    spans = spans_from_tracer(
        obs.tracer,
        trace_id="",
        parent_id=None,
        base_us=base_us,
        process=f"worker-{os.getpid()}",
    )
    return {"report": report, "spans": [span.to_dict() for span in spans]}


class SimulationService:
    """Request execution core; the HTTP handler is a thin shell over it."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config if config is not None else ServiceConfig()
        self.registry = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self.telemetry = self.config.telemetry
        self._request_ids = RequestIds()
        self.journal = (
            RequestJournal(self.config.journal_size) if self.telemetry else None
        )
        self.access_log = (
            AccessLog(self.config.access_log)
            if self.config.access_log is not None
            else None
        )
        self.spans = (
            SpanStore(
                max_traces=self.config.trace_capacity,
                max_spans_per_trace=self.config.trace_spans,
            )
            if self.config.tracing
            else None
        )
        # Recently finished leaders' simulate spans, keyed by canonical
        # cache key: a coalesced follower looks its leader up here to
        # emit the cross-trace link span.  Bounded — links on very old
        # leaders just degrade to plain coalesce-wait spans.
        self._leader_spans = LruCache(max(16, self.config.trace_capacity))
        # Pre-register every service instrument so concurrent first
        # touches never race on the registry's get-or-create dict.
        self.registry.counter(REQUESTS_METRIC)
        self.registry.counter(SIMULATIONS_METRIC)
        self.registry.counter(REJECTED_METRIC)
        # L2 result store: installed process-wide so the runner's
        # tiered get/put reads through it; counters live in this
        # service's registry (pre-registered like everything else).
        self.store: Optional[ResultStore] = None
        if self.config.store_dir is not None:
            for name in (
                STORE_HITS_METRIC,
                STORE_MISSES_METRIC,
                STORE_EVICTIONS_METRIC,
                STORE_CORRUPT_METRIC,
            ):
                self.registry.counter(name)
            self.store = ResultStore(
                self.config.store_dir,
                max_bytes=self.config.store_max_bytes,
                registry=self.registry,
            )
            from ..algorithms.runner import set_result_store

            set_result_store(self.store)
        # In-flight HTTP /run requests: distinct from queue in-flight —
        # a request that left the queue still journals its outcome and
        # flushes its spans in finish_request, and drain() must wait
        # for that, not just for the queue (see the drain test).
        self._http_cond = threading.Condition()
        self._http_inflight = 0
        if self.telemetry:
            for name in (
                QUEUE_WAIT_METRIC,
                SIMULATE_METRIC,
                TOTAL_METRIC,
                COALESCE_WAIT_METRIC,
            ):
                self.registry.histogram(name, buckets=DEFAULT_LATENCY_BUCKETS)
        self._singleflight = SingleFlight(
            registry=self.registry,
            observe_wait=(
                self._make_wait_observer(COALESCE_WAIT_METRIC)
                if self.telemetry
                else None
            ),
        )
        self._queue = ServiceQueue(
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            registry=self.registry,
            retry_after_s=self.config.retry_after_s,
            observe_wait=(
                self._make_wait_observer(QUEUE_WAIT_METRIC)
                if self.telemetry
                else None
            ),
        )
        # Micro-batching window: off unless a positive window was
        # configured, in which case the batch instruments exist from the
        # first exposition on (pre-registered like everything else).
        self._batcher: Optional[MicroBatcher] = None
        if self.config.batch_window_ms > 0:
            if self.config.run_isolated:
                raise ServiceError(
                    "micro-batching (batch_window_ms > 0) is incompatible "
                    "with run_isolated: a batch runs in-process"
                )
            for name in (
                BATCH_REQUESTS_METRIC,
                BATCH_BATCHES_METRIC,
                BATCH_FUSED_METRIC,
            ):
                self.registry.counter(name)
            self.registry.histogram(BATCH_SIZE_METRIC, buckets=BATCH_SIZE_BUCKETS)
            self._batcher = MicroBatcher(
                window_s=self.config.batch_window_ms / 1000.0,
                max_size=max(1, self.config.batch_max),
                execute=self._execute_batch,
            )
        self._draining = False

    # -- metrics (the registry's instruments are not thread-safe) -------
    def _count(self, name: str, **labels: Any) -> None:
        with self._metrics_lock:
            self.registry.counter(name).inc(**labels)

    def _count_n(self, name: str, n: int) -> None:
        with self._metrics_lock:
            self.registry.counter(name).inc(n)

    def _observe_latency(self, name: str, seconds: float) -> None:
        with self._metrics_lock:
            self.registry.histogram(name).observe(seconds)

    def _observe_value(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self.registry.histogram(name).observe(value)

    def _make_wait_observer(self, name: str):
        return lambda seconds: self._observe_latency(name, seconds)

    # -- per-request telemetry ------------------------------------------
    def begin_request(self, traceparent: Optional[str] = None) -> RequestContext:
        """Admit one HTTP request: assign its ID, stamp its start.

        With tracing enabled the request joins the client's trace when
        a well-formed W3C ``traceparent`` header came along, and roots
        a fresh trace otherwise, so every served request is traceable.
        """
        ctx = RequestContext(
            request_id=self._request_ids.next_id(),
            started=time.perf_counter(),
        )
        with self._http_cond:
            self._http_inflight += 1
        if self.spans is not None:
            remote = parse_traceparent(traceparent)
            if remote is not None:
                ctx.trace_id = remote.trace_id
                ctx.parent_span_id = remote.span_id
            else:
                ctx.trace_id = new_trace_id()
            ctx.span_id = new_span_id()
        return ctx

    def finish_request(
        self,
        ctx: RequestContext,
        *,
        method: str,
        path: str,
        status: int,
        error: Optional[BaseException] = None,
    ) -> None:
        """Close out one request: histogram, journal, access log, spans.

        The journal append and span flush happen *before* the in-flight
        count drops, so ``drain()`` returning guarantees every admitted
        request's outcome is journaled and its trace is stored — a
        request admitted before SIGTERM but completing after is not
        lost (pinned by the drain-ordering regression test).
        """
        try:
            total_s = time.perf_counter() - ctx.started
            if error is not None:
                ctx.outcome = _error_outcome(error)
            elif ctx.outcome is None:
                ctx.outcome = OUTCOME_ERROR
            record = ctx.record(status=status, total_s=total_s)
            if self.telemetry:
                self._observe_latency(TOTAL_METRIC, total_s)
                self.journal.append(record)
            if self.spans is not None and ctx.trace_id is not None:
                self._flush_spans(ctx, status=status, total_s=total_s)
            if self.access_log is not None:
                fields = {k: v for k, v in record.items() if k != "status"}
                self.access_log.write(method, path, status, **fields)
        finally:
            with self._http_cond:
                self._http_inflight -= 1
                self._http_cond.notify_all()

    def _flush_spans(
        self, ctx: RequestContext, *, status: int, total_s: float
    ) -> None:
        """Assemble and store this request's span tree.

        Runs before the response bytes leave (like the journal append),
        so a client that has seen its response finds the stitched trace
        at ``/debug/trace/{trace_id}`` — read-your-writes.
        """
        spans = [
            SpanRecord(
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                parent_id=ctx.parent_span_id,
                name="serve.request",
                category="serve",
                status="ok" if status < 400 else "error",
                process="serve",
                start_us=perf_to_epoch_us(ctx.started),
                duration_us=total_s * 1e6,
                attributes={
                    "request_id": ctx.request_id,
                    "outcome": ctx.outcome,
                    "http.status": status,
                },
            )
        ]
        if ctx.queue_entered is not None and ctx.queue_wait_s is not None:
            spans.append(
                SpanRecord(
                    trace_id=ctx.trace_id,
                    span_id=new_span_id(),
                    parent_id=ctx.span_id,
                    name="serve.queue_wait",
                    category="serve",
                    process="serve",
                    start_us=perf_to_epoch_us(ctx.queue_entered),
                    duration_us=ctx.queue_wait_s * 1e6,
                )
            )
        spans.extend(ctx.spans)
        self.spans.add(spans)

    def log_access(self, method: str, path: str, status: int) -> None:
        """Access-log one non-/run request (no journal entry)."""
        if self.access_log is not None:
            self.access_log.write(method, path, status)

    def journal_payload(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The ``GET /debug/requests`` body."""
        if self.journal is None:
            return {"enabled": False, "capacity": 0, "requests": []}
        return {
            "enabled": True,
            "capacity": self.journal.capacity,
            "requests": self.journal.tail(limit),
        }

    def traces_payload(self) -> Dict[str, Any]:
        """The ``GET /debug/traces`` body: known trace IDs, newest last."""
        if self.spans is None:
            return {"enabled": False, "traces": []}
        return {
            "enabled": True,
            "traces": self.spans.trace_ids(),
            "dropped_spans": self.spans.dropped_spans,
        }

    def trace_payload(
        self, trace_id: str, *, raw: bool = False
    ) -> Optional[Dict[str, Any]]:
        """The ``GET /debug/trace/{trace_id}`` body; ``None`` if unknown.

        Default form is a stitched Chrome ``trace_event`` document ready
        for ``ui.perfetto.dev``; ``?raw=1`` returns the schema-versioned
        span records instead.
        """
        if self.spans is None:
            return None
        spans = self.spans.get(trace_id)
        if not spans:
            return None
        if raw:
            return {
                "trace_id": trace_id,
                "spans": [span.to_dict() for span in spans],
            }
        return spans_to_chrome(spans)

    # -- request path ---------------------------------------------------
    def handle_run(
        self, request: RunRequest, ctx: Optional[RequestContext] = None
    ) -> Dict[str, Any]:
        """Execute (or coalesce, or reject) one validated run request."""
        from ..algorithms.runner import get_cached_report

        digest = request.cache_digest()
        if ctx is not None:
            # One canonical string identity everywhere: this same digest
            # names the L2 entry on disk and places the key on the
            # cluster front's hash ring (pinned by a test).
            ctx.cache_key = digest
        if self._draining:
            self._count(REJECTED_METRIC, reason="draining")
            raise ServiceUnavailableError("service is draining; not accepting work")
        self._count(REQUESTS_METRIC, route="run")
        probe_started = time.perf_counter()
        report, tier = get_cached_report(request, with_tier=True)
        if self.store is not None and tier != "l1":
            # The probe reached the disk tier: record it as a span so
            # store latency shows up in the request's trace tree.
            self._record_store_span(
                ctx, "serve.store.get", probe_started, tier=tier or "miss"
            )
        if report is not None:
            if ctx is not None:
                ctx.outcome = OUTCOME_CACHED
        else:
            wait_started = time.perf_counter()
            # With batching on, the single-flight *leader* enters the
            # micro-batch window; followers of the same digest coalesce
            # exactly as before, so the layers compose: identical
            # requests share one seat, compatible ones share one batch.
            if self._batcher is not None:
                leader_body = lambda: self._run_batched(request, ctx)  # noqa: E731
            else:
                leader_body = lambda: self._run_queued(request, ctx)  # noqa: E731
            report = self._singleflight.do(
                digest,
                leader_body,
                timeout_s=self.config.request_timeout_s,
            )
            if ctx is not None and ctx.outcome is None:
                # Our closure never ran: a concurrent leader's did.
                ctx.outcome = OUTCOME_COALESCED
                if self.spans is not None and ctx.trace_id is not None:
                    self._record_coalesce_span(ctx, request, wait_started)
        return run_response(request, report)

    def _record_store_span(
        self,
        ctx: Optional[RequestContext],
        name: str,
        started: float,
        **attributes: Any,
    ) -> None:
        """One L2 store operation as a span in the request's trace tree."""
        if (
            self.spans is None
            or ctx is None
            or ctx.trace_id is None
            or ctx.span_id is None
        ):
            return
        ctx.spans.append(
            SpanRecord(
                trace_id=ctx.trace_id,
                span_id=new_span_id(),
                parent_id=ctx.span_id,
                name=name,
                category="serve",
                process="serve",
                start_us=perf_to_epoch_us(started),
                duration_us=(time.perf_counter() - started) * 1e6,
                attributes=dict(attributes),
            )
        )

    def _record_coalesce_span(
        self, ctx: RequestContext, request: RunRequest, wait_started: float
    ) -> None:
        """A follower's wait span, linked to its leader's simulate span.

        The link crosses traces: the leader simulated under *its own*
        request's ``trace_id``, so the follower's trace records a link
        — not a parent edge — pointing at that span.
        """
        links = []
        leader = self._leader_spans.get(request.cache_digest())
        if leader is not None:
            leader_trace_id, leader_span_id = leader
            links.append(
                {"trace_id": leader_trace_id, "span_id": leader_span_id}
            )
        ctx.spans.append(
            SpanRecord(
                trace_id=ctx.trace_id,
                span_id=new_span_id(),
                parent_id=ctx.span_id,
                name="serve.coalesce_wait",
                category="serve",
                process="serve",
                start_us=perf_to_epoch_us(wait_started),
                duration_us=(time.perf_counter() - wait_started) * 1e6,
                links=links,
            )
        )

    def _run_queued(
        self, request: RunRequest, ctx: Optional[RequestContext]
    ) -> RunReport:
        """Single-flight leader body: admit to the queue and wait."""
        if ctx is not None:
            ctx.outcome = OUTCOME_SIMULATED
        task = self._queue.submit(lambda: self._simulate(request, ctx))
        try:
            return self._queue.wait(
                task, timeout_s=self.config.request_timeout_s
            )
        finally:
            if ctx is not None:
                ctx.queue_wait_s = task.queue_wait_s
                ctx.queue_entered = task.submitted_at

    def _run_batched(
        self, request: RunRequest, ctx: Optional[RequestContext]
    ) -> RunReport:
        """Single-flight leader body when micro-batching is enabled."""
        self._count(BATCH_REQUESTS_METRIC)
        wait_started = time.perf_counter()
        member = self._batcher.submit(
            request, ctx, timeout_s=self.config.request_timeout_s
        )
        if (
            not member.leader
            and self.spans is not None
            and ctx is not None
            and ctx.trace_id is not None
        ):
            # Mirror of the coalesce-wait link: this request rode in a
            # batch another request led, so its trace records the wait
            # with a cross-trace link to the leader's serve.batch span.
            ctx.spans.append(
                SpanRecord(
                    trace_id=ctx.trace_id,
                    span_id=new_span_id(),
                    parent_id=ctx.span_id,
                    name="serve.batch_wait",
                    category="serve",
                    process="serve",
                    start_us=perf_to_epoch_us(wait_started),
                    duration_us=(time.perf_counter() - wait_started) * 1e6,
                    links=(
                        [{"trace_id": member.link[0], "span_id": member.link[1]}]
                        if member.link is not None
                        else []
                    ),
                )
            )
        return member.report

    def _execute_batch(
        self, members: "list[BatchMember]", opened: float
    ) -> None:
        """Window-leader body: run one sealed batch as ONE queue task.

        Every member's context gets the shared queue-wait attribution
        and its outcome (``batched`` when >= 2 requests fused, plain
        ``simulated`` for a batch of one); the leader's trace carries
        the ``serve.batch`` span the other members link to.
        """
        size = len(members)
        lctx = members[0].ctx
        traced = (
            self.spans is not None and lctx is not None and lctx.trace_id is not None
        )
        batch_span_id = new_span_id() if traced else None
        outcome = OUTCOME_BATCHED if size > 1 else OUTCOME_SIMULATED
        for member in members:
            if member.ctx is not None:
                member.ctx.outcome = outcome
        task = self._queue.submit(
            lambda: self._simulate_batch(members, batch_span_id)
        )
        try:
            items = self._queue.wait(task, timeout_s=self.config.request_timeout_s)
        finally:
            for member in members:
                if member.ctx is not None:
                    member.ctx.queue_wait_s = task.queue_wait_s
                    member.ctx.queue_entered = task.submitted_at
        for member, item in zip(members, items):
            member.report = item.report
        self._count(BATCH_BATCHES_METRIC)
        if size > 1:
            self._count_n(BATCH_FUSED_METRIC, size)
        self._observe_value(BATCH_SIZE_METRIC, float(size))
        if traced:
            simulated = sum(1 for item in items if item.simulated)
            lctx.spans.append(
                SpanRecord(
                    trace_id=lctx.trace_id,
                    span_id=batch_span_id,
                    parent_id=lctx.span_id,
                    name="serve.batch",
                    category="serve",
                    process="serve",
                    start_us=perf_to_epoch_us(opened),
                    duration_us=(time.perf_counter() - opened) * 1e6,
                    attributes={
                        "batch_size": size,
                        "simulated": simulated,
                        "window_ms": self.config.batch_window_ms,
                    },
                )
            )
            link = (lctx.trace_id, batch_span_id)
            for member in members:
                member.link = link

    def _simulate_batch(
        self, members: "list[BatchMember]", batch_span_id: Optional[str]
    ):
        """Worker-side execution of one sealed batch (fused runner pass)."""
        from ..algorithms.runner import run_batch

        lctx = members[0].ctx
        traced = (
            self.spans is not None and lctx is not None and lctx.trace_id is not None
        )
        requests = [member.request for member in members]
        started = time.perf_counter()
        if traced:
            from ..obs import make_observability

            obs = make_observability()
            items = run_batch(requests, obs=obs)
            child_spans = spans_from_tracer(
                obs.tracer,
                trace_id=lctx.trace_id,
                parent_id=batch_span_id,
                base_us=perf_to_epoch_us(started),
                process="serve",
            )
        else:
            items = run_batch(requests)
            child_spans = []
        simulate_s = time.perf_counter() - started
        # serve_simulations still means "requests actually simulated":
        # cache hits and in-batch duplicates ride along uncounted, so
        # handled = simulated + coalesced + cached keeps adding up.
        simulated = sum(1 for item in items if item.simulated)
        if simulated:
            self._count_n(SIMULATIONS_METRIC, simulated)
        for member in members:
            if member.ctx is not None:
                member.ctx.simulate_s = simulate_s
                member.ctx.simulate_started = started
        if traced:
            lctx.sim_span_id = batch_span_id
            lctx.spans.extend(child_spans)
            # Coalesced followers of ANY member's digest link here.
            for member in members:
                self._leader_spans.put(
                    member.request.cache_digest(),
                    (lctx.trace_id, batch_span_id),
                )
        if self.telemetry:
            self._observe_latency(SIMULATE_METRIC, simulate_s)
        return items

    def _simulate(
        self, request: RunRequest, ctx: Optional[RequestContext] = None
    ) -> RunReport:
        """Worker-side execution of one admitted request."""
        from ..algorithms.runner import (
            execute_request,
            get_cached_report,
            put_cached_report,
        )

        # A previous leader may have finished between the handler's cache
        # probe and this task reaching a worker.
        report = get_cached_report(request)
        if report is not None:
            return report
        self._count(SIMULATIONS_METRIC)
        traced = (
            self.spans is not None and ctx is not None and ctx.trace_id is not None
        )
        sim_span_id = new_span_id() if traced else None
        started = time.perf_counter()
        child_spans: list = []
        if self.config.run_isolated:
            report, worker_spans = self._simulate_isolated(
                request, with_spans=traced
            )
            if traced:
                child_spans = reparent_spans(
                    worker_spans,
                    trace_id=ctx.trace_id,
                    parent_id=sim_span_id,
                    source="isolated worker",
                )
        elif traced:
            from ..obs import make_observability

            obs = make_observability()
            report = execute_request(request, obs=obs).report
            child_spans = spans_from_tracer(
                obs.tracer,
                trace_id=ctx.trace_id,
                parent_id=sim_span_id,
                base_us=perf_to_epoch_us(started),
                process="serve",
            )
        else:
            report = execute_request(request).report
        simulate_s = time.perf_counter() - started
        if ctx is not None:
            ctx.simulate_s = simulate_s
            ctx.simulate_started = started
        if traced:
            ctx.sim_span_id = sim_span_id
            ctx.spans.append(
                SpanRecord(
                    trace_id=ctx.trace_id,
                    span_id=sim_span_id,
                    parent_id=ctx.span_id,
                    name="serve.simulate",
                    category="serve",
                    process="serve",
                    start_us=perf_to_epoch_us(started),
                    duration_us=simulate_s * 1e6,
                    attributes={
                        "algorithm": request.algorithm,
                        "mode": request.mode,
                        "isolated": self.config.run_isolated,
                    },
                )
            )
            ctx.spans.extend(child_spans)
            # Publish so coalesced followers can link to this span.
            self._leader_spans.put(
                request.cache_digest(), (ctx.trace_id, sim_span_id)
            )
        if self.telemetry:
            self._observe_latency(SIMULATE_METRIC, simulate_s)
        put_started = time.perf_counter()
        put_cached_report(request, report)
        if self.store is not None:
            self._record_store_span(ctx, "serve.store.put", put_started)
        return report

    def _simulate_isolated(
        self, request: RunRequest, *, with_spans: bool = False
    ) -> Tuple[RunReport, list]:
        """Run in a killable child process (hard per-request timeout).

        With ``with_spans`` the child also records per-phase spans and
        ships their wire form back over the result pipe; they come back
        trace-less (``trace_id=""``) for the caller to re-parent.
        """
        worker = _isolated_traced_run if with_spans else _isolated_run
        try:
            outcomes = run_sweep(
                [request],
                worker,
                jobs=2,  # >1 forces process isolation even for one task
                timeout_s=self.config.request_timeout_s,
                retries=0,
                fallback=False,
            )
        except SweepFailure as failure:
            if failure.reason == "timeout":
                raise ServiceTimeoutError(
                    f"isolated simulation exceeded "
                    f"{self.config.request_timeout_s}s"
                ) from failure
            raise ServiceError(f"isolated simulation failed: {failure}") from failure
        value = outcomes[0].value
        if with_spans:
            return value["report"], value["spans"]
        return value, []

    # -- introspection / lifecycle --------------------------------------
    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "workers": self.config.workers,
            "queue_depth": self._queue.depth,
            "queue_capacity": self.config.queue_depth,
            "inflight": self._queue.inflight,
        }

    def metrics_text(self) -> str:
        with self._metrics_lock:
            service = self.registry.render_prometheus()
        return service + global_metrics().render_prometheus()

    def drain(self, *, timeout_s: Optional[float] = None) -> bool:
        """Refuse new work, then wait for queued + in-flight requests.

        Waits for *both* layers: the worker queue AND the HTTP requests
        still inside their handler (a request that left the queue still
        has to journal its outcome and flush its spans before it counts
        as finished).  Only when both hit zero is every admitted
        request's telemetry durable.
        """
        self._draining = True
        if timeout_s is None:
            timeout_s = self.config.drain_timeout_s
        deadline = time.monotonic() + timeout_s
        if not self._queue.drain(timeout_s=timeout_s):
            return False
        with self._http_cond:
            return self._http_cond.wait_for(
                lambda: self._http_inflight == 0,
                timeout=max(0.0, deadline - time.monotonic()),
            )

    def close(self) -> None:
        """Release operator-facing resources (the access-log stream)."""
        if self.access_log is not None:
            self.access_log.close()
        if self.store is not None:
            from ..algorithms.runner import get_result_store, set_result_store

            # Uninstall only our own store: another service instance may
            # have installed its own since (tests run many services).
            if get_result_store() is self.store:
                set_result_store(None)


#: (exception class -> HTTP status, stable error code); checked in order.
_ERROR_MAP: Tuple[Tuple[type, int, str], ...] = (
    (ProtocolError, 400, "bad-request"),
    (ServiceOverloadError, 429, "overloaded"),
    (ServiceUnavailableError, 503, "draining"),
    (ServiceTimeoutError, 504, "timeout"),
)

#: (exception class -> journal outcome); checked in order.
_OUTCOME_MAP: Tuple[Tuple[type, str], ...] = (
    (ProtocolError, OUTCOME_BAD_REQUEST),
    (ServiceOverloadError, OUTCOME_REJECTED),
    (ServiceUnavailableError, OUTCOME_DRAINING),
    (ServiceTimeoutError, OUTCOME_TIMEOUT),
    (ValueError, OUTCOME_BAD_REQUEST),
)


def _error_outcome(error: BaseException) -> str:
    for cls, outcome in _OUTCOME_MAP:
        if isinstance(error, cls):
            return outcome
    return OUTCOME_ERROR


class RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs to the :class:`SimulationService` on the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    sys_version = ""

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the metrics registry's job

    # -- response plumbing ---------------------------------------------
    def _send(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error_response(
        self, error: BaseException
    ) -> Tuple[int, bytes, Tuple[Tuple[str, str], ...]]:
        for cls, status, code in _ERROR_MAP:
            if isinstance(error, cls):
                break
        else:
            status, code = 500, "internal"
        extra: Tuple[Tuple[str, str], ...] = ()
        payload = error_payload(status, code, str(error))
        if isinstance(error, ServiceOverloadError):
            payload["retry_after_s"] = error.retry_after_s
            extra = (("Retry-After", f"{error.retry_after_s:g}"),)
        return status, encode(payload), extra

    def _send_error(self, error: BaseException) -> None:
        status, body, extra = self._error_response(error)
        self._send(status, body, extra_headers=extra)

    def _not_found(self) -> None:
        self._send(
            404,
            encode(error_payload(404, "not-found", f"no route {self.path!r}")),
        )
        self.service.log_access("GET", self.path, 404)

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path == "/healthz":
            self._send(200, encode(self.service.health()))
            self.service.log_access("GET", parsed.path, 200)
        elif parsed.path == "/metrics":
            body = self.service.metrics_text().encode("utf-8")
            self._send(200, body, content_type="text/plain; charset=utf-8")
            self.service.log_access("GET", parsed.path, 200)
        elif parsed.path == "/debug/requests":
            limit = _journal_limit(parsed.query)
            self._send(200, encode(self.service.journal_payload(limit)))
            self.service.log_access("GET", parsed.path, 200)
        elif parsed.path == "/debug/traces":
            self._send(200, encode(self.service.traces_payload()))
            self.service.log_access("GET", parsed.path, 200)
        elif parsed.path.startswith("/debug/trace/"):
            trace_id = parsed.path[len("/debug/trace/") :]
            raw = "1" in urllib.parse.parse_qs(parsed.query).get("raw", [])
            payload = self.service.trace_payload(trace_id, raw=raw)
            if payload is None:
                self._send(
                    404,
                    encode(
                        error_payload(
                            404, "unknown-trace", f"no trace {trace_id!r}"
                        )
                    ),
                )
                self.service.log_access("GET", parsed.path, 404)
            else:
                self._send(200, encode(payload))
                self.service.log_access("GET", parsed.path, 200)
        else:
            self._not_found()

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path != "/run":
            self._not_found()
            return
        ctx = self.service.begin_request(self.headers.get("traceparent"))
        rid_header: Tuple[Tuple[str, str], ...] = (
            ("X-Request-Id", ctx.request_id),
        )
        if ctx.trace_id is not None:
            rid_header += (("X-Trace-Id", ctx.trace_id),)
        error: Optional[BaseException] = None
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if length > MAX_BODY_BYTES:
                raise ProtocolError(
                    f"request body too large ({length} bytes > {MAX_BODY_BYTES})"
                )
            request = parse_run_request(self.rfile.read(length))
            response = self.service.handle_run(request, ctx)
        except (ReproError, ValueError) as exc:
            error = exc
            status, body, extra = self._error_response(exc)
        else:
            status, body, extra = 200, encode(response), ()
        # Journal before the response bytes leave: a client that has
        # seen this response will find its record at /debug/requests.
        self.service.finish_request(
            ctx, method="POST", path="/run", status=status, error=error
        )
        self._send(status, body, extra_headers=extra + rid_header)


def _journal_limit(query: str) -> Optional[int]:
    """Parse ``?n=`` from a ``/debug/requests`` query string."""
    for value in urllib.parse.parse_qs(query).get("n", []):
        try:
            return max(0, int(value))
        except ValueError:
            continue
    return None


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service for its handlers."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SimulationService):
        super().__init__(address, RequestHandler)
        self.service = service


def make_server(
    service: SimulationService, *, host: str | None = None, port: int | None = None
) -> ServiceServer:
    """Bind the HTTP server for ``service`` (port 0 picks a free port)."""
    if host is None:
        host = service.config.host
    if port is None:
        port = service.config.port
    return ServiceServer((host, port), service)


def run_service(config: ServiceConfig) -> int:
    """Foreground entry point for ``repro serve``; blocks until signalled.

    SIGTERM/SIGINT stop accepting connections, then drain queued and
    in-flight work before returning (0 on a clean drain, 1 otherwise).
    """
    service = SimulationService(config)
    httpd = make_server(service)

    def _shutdown(signum: int, frame: Any) -> None:
        # shutdown() must not run on the serve_forever thread (deadlock);
        # signal handlers execute on the main thread, which IS that
        # thread here, so hand the call to a helper.
        service._draining = True
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _shutdown) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        host, port = httpd.server_address[:2]
        print(f"repro serve listening on http://{host}:{port}", flush=True)
        httpd.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        httpd.server_close()
    drained = service.drain()
    service.close()
    print(
        "repro serve drained cleanly" if drained else "repro serve drain timed out",
        flush=True,
    )
    return 0 if drained else 1
