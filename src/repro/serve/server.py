"""The ``repro serve`` daemon: HTTP front-end over the simulator.

Stdlib-only: a :class:`ThreadingHTTPServer` accepts JSON run requests,
validates them into typed :class:`~repro.request.RunRequest` objects,
and executes them on a bounded worker pool.  The request path layers
three protections, outermost first:

1. **single-flight** — concurrent identical requests coalesce onto one
   leader; followers share its report (`serve.singleflight.coalesced_hits`);
2. **admission control** — at most ``queue_depth`` requests wait for the
   ``workers``-wide pool; overflow is a deterministic 429 + Retry-After;
3. **run cache** — completed reports land in the process-wide LRU run
   cache, so repeats after the burst never reach the queue at all.

``--isolate`` additionally pushes each simulation into a fork-spawned
child via :func:`~repro.harness.parallel.run_sweep` with
``fallback=False``, so a per-request timeout genuinely kills the work
instead of abandoning a thread.

Routes: ``POST /run``, ``GET /healthz``, ``GET /metrics`` (Prometheus
text format, service + process-global registries).
"""

from __future__ import annotations

import signal
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..errors import (
    ProtocolError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from ..harness.parallel import SweepFailure, run_sweep
from ..obs.metrics import MetricsRegistry, global_metrics
from ..phases import RunReport
from ..request import RunRequest
from .admission import ServiceQueue
from .protocol import (
    MAX_BODY_BYTES,
    encode,
    error_payload,
    parse_run_request,
    run_response,
)
from .singleflight import SingleFlight

REQUESTS_METRIC = "serve.requests"
SIMULATIONS_METRIC = "serve.simulations"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    queue_depth: int = 8
    request_timeout_s: Optional[float] = None
    retry_after_s: float = 1.0
    run_isolated: bool = False
    drain_timeout_s: float = 30.0


def _isolated_run(request: RunRequest) -> RunReport:
    """Sweep worker: simulate one request in a child process."""
    from ..algorithms.runner import execute_request

    return execute_request(request).report


class SimulationService:
    """Request execution core; the HTTP handler is a thin shell over it."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config if config is not None else ServiceConfig()
        self.registry = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._singleflight = SingleFlight(registry=self.registry)
        self._queue = ServiceQueue(
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            registry=self.registry,
            retry_after_s=self.config.retry_after_s,
        )
        self._draining = False

    # -- metrics (the registry's instruments are not thread-safe) -------
    def _count(self, name: str, **labels: Any) -> None:
        with self._metrics_lock:
            self.registry.counter(name).inc(**labels)

    # -- request path ---------------------------------------------------
    def handle_run(self, request: RunRequest) -> Dict[str, Any]:
        """Execute (or coalesce, or reject) one validated run request."""
        from ..algorithms.runner import get_cached_report

        if self._draining:
            raise ServiceUnavailableError("service is draining; not accepting work")
        self._count(REQUESTS_METRIC, route="run")
        report = get_cached_report(request)
        if report is None:
            timeout_s = self.config.request_timeout_s
            report = self._singleflight.do(
                request.cache_key(),
                lambda: self._queue.run(
                    lambda: self._simulate(request), timeout_s=timeout_s
                ),
                timeout_s=timeout_s,
            )
        return run_response(request, report)

    def _simulate(self, request: RunRequest) -> RunReport:
        """Worker-side execution of one admitted request."""
        from ..algorithms.runner import (
            execute_request,
            get_cached_report,
            put_cached_report,
        )

        # A previous leader may have finished between the handler's cache
        # probe and this task reaching a worker.
        report = get_cached_report(request)
        if report is not None:
            return report
        self._count(SIMULATIONS_METRIC)
        if self.config.run_isolated:
            report = self._simulate_isolated(request)
        else:
            report = execute_request(request).report
        put_cached_report(request, report)
        return report

    def _simulate_isolated(self, request: RunRequest) -> RunReport:
        """Run in a killable child process (hard per-request timeout)."""
        try:
            outcomes = run_sweep(
                [request],
                _isolated_run,
                jobs=2,  # >1 forces process isolation even for one task
                timeout_s=self.config.request_timeout_s,
                retries=0,
                fallback=False,
            )
        except SweepFailure as failure:
            if failure.reason == "timeout":
                raise ServiceTimeoutError(
                    f"isolated simulation exceeded "
                    f"{self.config.request_timeout_s}s"
                ) from failure
            raise ServiceError(f"isolated simulation failed: {failure}") from failure
        return outcomes[0].value

    # -- introspection / lifecycle --------------------------------------
    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "workers": self.config.workers,
            "queue_depth": self._queue.depth,
            "queue_capacity": self.config.queue_depth,
            "inflight": self._queue.inflight,
        }

    def metrics_text(self) -> str:
        with self._metrics_lock:
            service = self.registry.render_prometheus()
        return service + global_metrics().render_prometheus()

    def drain(self, *, timeout_s: Optional[float] = None) -> bool:
        """Refuse new work, then wait for queued + in-flight requests."""
        self._draining = True
        if timeout_s is None:
            timeout_s = self.config.drain_timeout_s
        return self._queue.drain(timeout_s=timeout_s)


#: (exception class -> HTTP status, stable error code); checked in order.
_ERROR_MAP: Tuple[Tuple[type, int, str], ...] = (
    (ProtocolError, 400, "bad-request"),
    (ServiceOverloadError, 429, "overloaded"),
    (ServiceUnavailableError, 503, "draining"),
    (ServiceTimeoutError, 504, "timeout"),
)


class RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs to the :class:`SimulationService` on the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    sys_version = ""

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the metrics registry's job

    # -- response plumbing ---------------------------------------------
    def _send(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, error: BaseException) -> None:
        for cls, status, code in _ERROR_MAP:
            if isinstance(error, cls):
                break
        else:
            status, code = 500, "internal"
        extra: Tuple[Tuple[str, str], ...] = ()
        payload = error_payload(status, code, str(error))
        if isinstance(error, ServiceOverloadError):
            payload["retry_after_s"] = error.retry_after_s
            extra = (("Retry-After", f"{error.retry_after_s:g}"),)
        self._send(status, encode(payload), extra_headers=extra)

    def _not_found(self) -> None:
        self._send(
            404,
            encode(error_payload(404, "not-found", f"no route {self.path!r}")),
        )

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/healthz":
            self._send(200, encode(self.service.health()))
        elif self.path == "/metrics":
            body = self.service.metrics_text().encode("utf-8")
            self._send(200, body, content_type="text/plain; charset=utf-8")
        else:
            self._not_found()

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path != "/run":
            self._not_found()
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if length > MAX_BODY_BYTES:
                raise ProtocolError(
                    f"request body too large ({length} bytes > {MAX_BODY_BYTES})"
                )
            request = parse_run_request(self.rfile.read(length))
            response = self.service.handle_run(request)
        except (ReproError, ValueError) as error:
            self._send_error(error)
            return
        self._send(200, encode(response))


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service for its handlers."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SimulationService):
        super().__init__(address, RequestHandler)
        self.service = service


def make_server(
    service: SimulationService, *, host: str | None = None, port: int | None = None
) -> ServiceServer:
    """Bind the HTTP server for ``service`` (port 0 picks a free port)."""
    if host is None:
        host = service.config.host
    if port is None:
        port = service.config.port
    return ServiceServer((host, port), service)


def run_service(config: ServiceConfig) -> int:
    """Foreground entry point for ``repro serve``; blocks until signalled.

    SIGTERM/SIGINT stop accepting connections, then drain queued and
    in-flight work before returning (0 on a clean drain, 1 otherwise).
    """
    service = SimulationService(config)
    httpd = make_server(service)

    def _shutdown(signum: int, frame: Any) -> None:
        # shutdown() must not run on the serve_forever thread (deadlock);
        # signal handlers execute on the main thread, which IS that
        # thread here, so hand the call to a helper.
        service._draining = True
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _shutdown) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        host, port = httpd.server_address[:2]
        print(f"repro serve listening on http://{host}:{port}", flush=True)
        httpd.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        httpd.server_close()
    drained = service.drain()
    print(
        "repro serve drained cleanly" if drained else "repro serve drain timed out",
        flush=True,
    )
    return 0 if drained else 1
