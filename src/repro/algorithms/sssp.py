"""Single-Source Shortest Paths — Davidson near-far method (Section 2.2).

Each iteration expands the node frontier into edge and weight frontiers,
then contracts: edges that improve their destination's tentative
distance and fall under the cost threshold ("near") form the next
frontier; improving-but-expensive edges are pushed onto the "far" pile.
When the frontier drains, the threshold advances by delta and the far
pile is re-contracted.

System variants (Algorithms 2 and 5):

* GPU baseline — expansion gathers and the three contraction
  compactions (near frontier, far edges, far weights) are GPU kernels;
* basic SCU — those five data movements become SCU operations;
* enhanced SCU — expansion adds unique-best-cost *filtering* and
  cache-line *grouping* passes; near contraction applies grouping; the
  far-pile consumption applies both (far elements were never filtered).

Unlike BFS, the GPU-side duplicate handling here is *complete* within a
frontier (the lookup-table trick of [12]), so the enhanced SCU's wins
come from cross-copy best-cost filtering on expansion and the far pile,
plus the coalescing improvement of grouping — exactly the paper's story.
"""

from __future__ import annotations

import numpy as np

from ..core.api import ScuSystem
from ..core.ops import expanded_indices
from ..core.pipeline import gather_read, sequential_read
from ..errors import SimulationError
from ..gpu.kernel import KernelSpec
from ..graph.csr import CsrGraph
from ..mem.address_space import DeviceArray
from ..phases import PhaseKind, RunReport
from .common import (
    COMPACTION_MEMORY_EFFICIENCY,
    compaction_sync_overhead_s,
    KERNEL_COSTS,
    SCAN_OVERHEAD_PER_ELEMENT,
    GraphOnDevice,
    SystemMode,
    finalize_report,
    pick_source,
)


def _dedup_best(dests: np.ndarray, costs: np.ndarray) -> np.ndarray:
    """Keep-mask selecting, per destination, the lowest-cost entry.

    Models the contraction lookup-table: every candidate writes its id,
    atomicMin fixes the distance, and one winner per destination joins
    the next frontier.
    """
    if dests.size == 0:
        return np.zeros(0, dtype=bool)
    order = np.lexsort((costs, dests))
    first = np.ones(dests.size, dtype=bool)
    first[1:] = dests[order][1:] != dests[order][:-1]
    keep = np.zeros(dests.size, dtype=bool)
    keep[order] = first
    return keep


def run_sssp(
    graph: CsrGraph,
    system: ScuSystem,
    mode: SystemMode,
    *,
    source: int | None = None,
    delta: float | None = None,
    max_rounds: int = 100_000,
    enable_grouping: bool = True,
) -> tuple[np.ndarray, RunReport]:
    """Run SSSP; returns (distances, phase-level cost report).

    ``enable_grouping=False`` gives the enhanced SCU with filtering only
    — the baseline configuration of Figure 12.
    """
    if mode is not SystemMode.GPU and not system.has_scu:
        raise SimulationError(f"mode {mode.value} requires a system with an SCU")
    if source is None:
        source = pick_source(graph)
    if delta is None:
        # Davidson tunes delta online; mean weight x small factor works
        # across our weight range and keeps round counts comparable.
        delta = max(float(np.mean(graph.weights)) if graph.num_edges else 1.0, 1.0)

    dev = GraphOnDevice.place(graph, system, np.float64(np.inf))
    dist = dev.node_data.values
    dist[source] = 0.0

    report = RunReport(algorithm="sssp", system=mode.value, dataset=graph.name)
    ctx = system.ctx
    gpu = system.gpu
    tracer = system.obs.tracer
    frontier_hist = system.obs.metrics.histogram("frontier.size")
    enhanced = mode is SystemMode.SCU_ENHANCED

    nf = np.array([source], dtype=np.int64)
    far_edges = np.empty(0, dtype=np.int64)
    far_costs = np.empty(0, dtype=np.float64)
    threshold = delta

    for _ in range(max_rounds):
        if nf.size == 0:
            if far_edges.size == 0:
                break
            with tracer.span(
                "sssp.far_pile", "algorithm", far_edges=int(far_edges.size)
            ):
                # ---- far-pile consumption -------------------------------------
                threshold += delta
                nf, far_edges, far_costs = _consume_far(
                    system, mode, dev, report, far_edges, far_costs, threshold,
                    enable_grouping=enable_grouping,
                )
            continue

        tracer.counter("frontier.size", nodes=nf.size, far=far_edges.size)
        frontier_hist.observe(nf.size, algorithm="sssp")
        with tracer.span(
            "sssp.iteration", "algorithm",
            frontier_nodes=int(nf.size), far_edges=int(far_edges.size),
            threshold=threshold,
        ):
            nf_dev = ctx.array("nf", nf)
            ef_dev, wf_dev = _expand(
                system, mode, dev, report, nf_dev, nf, enable_grouping=enable_grouping
            )
            ef = np.asarray(ef_dev.values, dtype=np.int64)
            wf = np.asarray(wf_dev.values, dtype=np.float64)
            nf, new_far_e, new_far_c = _contract(
                system, mode, dev, report, ef_dev, wf_dev, ef, wf, threshold,
                filtered_upstream=enhanced,
                enable_grouping=enable_grouping,
            )
            far_edges = np.concatenate([far_edges, new_far_e])
            far_costs = np.concatenate([far_costs, new_far_c])
    else:
        raise SimulationError("SSSP failed to converge within the round budget")

    return dist.copy(), finalize_report(report, system)


# ---------------------------------------------------------------------------


def _expand(
    system: ScuSystem,
    mode: SystemMode,
    dev: GraphOnDevice,
    report: RunReport,
    nf_dev: DeviceArray,
    nf: np.ndarray,
    *,
    enable_grouping: bool = True,
) -> tuple[DeviceArray, DeviceArray]:
    """Expansion phase: node frontier -> edge + weight frontiers."""
    ctx = system.ctx
    gpu = system.gpu
    graph = dev.graph
    dist = dev.node_data.values

    indexes_values = graph.offsets[nf]
    count_values = graph.out_degrees[nf]
    source_costs = dist[nf]
    indexes_dev = ctx.array("expand.indexes", indexes_values)
    count_dev = ctx.array("expand.count", count_values)
    cost_dev = ctx.array("expand.cost", source_costs)

    prepare = KernelSpec(
        "sssp.expand.prepare",
        PhaseKind.PROCESSING,
        threads=nf.size,
        instructions_per_thread=KERNEL_COSTS["expand.prepare"],
        extra_instructions=int(SCAN_OVERHEAD_PER_ELEMENT * nf.size),
    )
    prepare.load(nf_dev.addresses())
    prepare.load(dev.offsets.addresses(nf))
    prepare.load(dev.offsets.addresses(nf + 1))
    prepare.load(dev.node_data.addresses(nf))
    prepare.store(indexes_dev.addresses())
    prepare.store(count_dev.addresses())
    prepare.store(cost_dev.addresses())
    report.add(gpu.run(prepare))

    gather_indices = expanded_indices(indexes_values, count_values)
    ef_values = graph.edges[gather_indices]
    wf_values = graph.weights[gather_indices] + np.repeat(source_costs, count_values)

    if mode is SystemMode.GPU:
        ef_dev = ctx.array("ef", ef_values)
        wf_dev = ctx.array("wf", wf_values)
        gather = KernelSpec(
            "sssp.expand.gather",
            PhaseKind.COMPACTION,
            threads=ef_values.size,
            instructions_per_thread=KERNEL_COSTS["expand.gather"],
            extra_instructions=int(SCAN_OVERHEAD_PER_ELEMENT * nf.size),
            memory_efficiency=COMPACTION_MEMORY_EFFICIENCY,
            extra_overhead_s=compaction_sync_overhead_s(gpu.config),
        )
        gather.load(indexes_dev.addresses())
        gather.load(count_dev.addresses())
        gather.load(cost_dev.addresses())
        gather.load(dev.edges.addresses(gather_indices))
        gather.load(dev.weights.addresses(gather_indices))
        gather.store(ef_dev.addresses())
        gather.store(wf_dev.addresses())
        dev.add_scan_traffic(gather, nf.size)
        report.add(gpu.run(gather))
        return ef_dev, wf_dev

    if mode is SystemMode.SCU_BASIC:
        ef_dev, phase = system.scu.access_expansion_compaction(
            dev.edges, indexes_dev, count_dev, out="ef"
        )
        report.add(phase)
        ew_dev, phase = system.scu.access_expansion_compaction(
            dev.weights, indexes_dev, count_dev, out="ew"
        )
        report.add(phase)
        repl_dev, phase = system.scu.replication_compaction(
            cost_dev, count_dev, out="wf"
        )
        report.add(phase)
        wf_dev = DeviceArray(values=ew_dev.values + repl_dev.values, alloc=repl_dev.alloc)
        return ef_dev, wf_dev

    # SCU_ENHANCED (Algorithm 5): filtering + grouping passes first.
    scratch_ids = ctx.array("ef.ids", ef_values)
    scratch_costs = ctx.array("wf.ids", wf_values)
    pass_streams = [
        sequential_read(indexes_dev, role="indexes"),
        sequential_read(count_dev, role="count"),
        gather_read(dev.edges, gather_indices),
        gather_read(dev.weights, gather_indices),
    ]
    filter_mask, phase = system.scu.filter_best_cost_pass(
        scratch_ids, scratch_costs, input_streams=pass_streams, out="ef.filter"
    )
    report.add(phase)
    perm_dev = None
    if enable_grouping:
        kept_ids = ctx.array("ef.kept", ef_values[filter_mask.values])
        group_streams = [
            sequential_read(indexes_dev, role="indexes"),
            sequential_read(count_dev, role="count"),
            gather_read(dev.edges, gather_indices[filter_mask.values]),
        ]
        perm_dev, phase = system.scu.grouping_pass(
            kept_ids,
            node_data_base=dev.node_data.alloc.base,
            input_streams=group_streams,
            out="ef.grouping",
        )
        report.add(phase)
    ef_dev, phase = system.scu.access_expansion_compaction(
        dev.edges,
        indexes_dev,
        count_dev,
        element_bitmask=filter_mask,
        reorder=perm_dev,
        out="ef",
    )
    report.add(phase)
    kept_costs = wf_values[filter_mask.values]
    if perm_dev is not None:
        kept_costs = kept_costs[perm_dev.values]
    ew_dev, phase = system.scu.access_expansion_compaction(
        dev.weights,
        indexes_dev,
        count_dev,
        element_bitmask=filter_mask,
        reorder=perm_dev,
        out="wf",
    )
    report.add(phase)
    # Algorithm 2's replication op (accumulated source cost) still runs.
    _, phase = system.scu.replication_compaction(cost_dev, count_dev, out="wf.repl")
    report.add(phase)
    wf_dev = DeviceArray(values=kept_costs, alloc=ew_dev.alloc)
    return ef_dev, wf_dev


def _lookup_table(system: ScuSystem, dev: GraphOnDevice) -> DeviceArray:
    """The per-node contraction lookup table, allocated once per run."""
    cache = getattr(dev, "_sssp_lookup", None)
    if cache is None:
        cache = system.ctx.array(
            "contract.lookup", np.zeros(dev.graph.num_nodes, dtype=np.int64)
        )
        dev._sssp_lookup = cache
    return cache


def _contract(
    system: ScuSystem,
    mode: SystemMode,
    dev: GraphOnDevice,
    report: RunReport,
    ef_dev: DeviceArray,
    wf_dev: DeviceArray,
    ef: np.ndarray,
    wf: np.ndarray,
    threshold: float,
    *,
    filtered_upstream: bool,
    enable_grouping: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Contraction phase: relax near edges, push far edges."""
    ctx = system.ctx
    gpu = system.gpu
    dist = dev.node_data.values

    improving = wf < dist[ef] if ef.size else np.zeros(0, dtype=bool)
    near = improving & (wf < threshold)
    far = improving & ~near
    winners = near & _dedup_best(np.where(near, ef, -1), wf)
    near_dests = ef[winners]

    process = KernelSpec(
        "sssp.contract.process",
        PhaseKind.PROCESSING,
        threads=ef.size,
        instructions_per_thread=KERNEL_COSTS["sssp.contract.process"],
    )
    process.load(ef_dev.addresses())
    process.load(wf_dev.addresses())
    process.load(dev.node_data.addresses(ef))  # divergent distance lookups
    # Lookup-table dedup: candidates scatter their thread id by dest node,
    # then re-read to learn the winner (two divergent passes).
    lookup = _lookup_table(system, dev)
    process.store(lookup.addresses(ef[near]))
    process.load(lookup.addresses(ef[near]))
    process.atomic(dev.node_data.addresses(ef[near]))  # atomicMin relaxations
    mask_near = ctx.bitmask("mask.near", winners)
    mask_far = ctx.bitmask("mask.far", far)
    process.store(mask_near.addresses())
    process.store(mask_far.addresses())
    report.add(gpu.run(process))

    # Functional relaxation (atomicMin semantics).
    if near.any():
        np.minimum.at(dist, ef[near], wf[near])

    if mode is SystemMode.GPU:
        compact = KernelSpec(
            "sssp.contract.compact",
            PhaseKind.COMPACTION,
            threads=ef.size,
            instructions_per_thread=KERNEL_COSTS["contract.compact"],
            extra_instructions=int(2 * SCAN_OVERHEAD_PER_ELEMENT * ef.size),
            memory_efficiency=COMPACTION_MEMORY_EFFICIENCY,
            extra_overhead_s=compaction_sync_overhead_s(gpu.config),
        )
        compact.load(ef_dev.addresses())
        compact.load(wf_dev.addresses())
        compact.load(mask_near.addresses())
        compact.load(mask_far.addresses())
        nf_dev = ctx.array("nf.next", near_dests)
        compact.store(nf_dev.addresses())
        compact.store(ctx.array("far.e", ef[far]).addresses())
        compact.store(ctx.array("far.w", wf[far]).addresses())
        dev.add_scan_traffic(compact, ef.size)
        dev.add_scan_traffic(compact, ef.size)
        report.add(gpu.run(compact))
        return near_dests, ef[far], wf[far]

    if mode is SystemMode.SCU_BASIC or filtered_upstream:
        reorder = None
        if filtered_upstream and enable_grouping:
            # Algorithm 5: grouping applies to the near contraction too.
            kept = ctx.array("near.ids", near_dests)
            perm_dev, phase = system.scu.grouping_pass(
                kept, node_data_base=dev.node_data.alloc.base, out="near.grouping"
            )
            report.add(phase)
            reorder = perm_dev
        nf_dev, phase = system.scu.data_compaction(
            ef_dev, mask_near, out="nf.next", reorder=reorder
        )
        report.add(phase)
        far_e_dev, phase = system.scu.data_compaction(ef_dev, mask_far, out="far.e")
        report.add(phase)
        far_w_dev, phase = system.scu.data_compaction(wf_dev, mask_far, out="far.w")
        report.add(phase)
        return (
            np.asarray(nf_dev.values, dtype=np.int64),
            np.asarray(far_e_dev.values, dtype=np.int64),
            np.asarray(far_w_dev.values, dtype=np.float64),
        )

    raise SimulationError(f"unhandled mode {mode}")


def _consume_far(
    system: ScuSystem,
    mode: SystemMode,
    dev: GraphOnDevice,
    report: RunReport,
    far_edges: np.ndarray,
    far_costs: np.ndarray,
    threshold: float,
    *,
    enable_grouping: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Re-contract the far pile against the advanced threshold."""
    ctx = system.ctx
    enhanced = mode is SystemMode.SCU_ENHANCED

    far_e_dev = ctx.array("far.pile.e", far_edges)
    far_w_dev = ctx.array("far.pile.w", far_costs)

    if enhanced and far_edges.size:
        # Algorithm 5: the far pile was never filtered; filter + group it
        # on the SCU before the GPU re-contracts.
        filter_mask, phase = system.scu.filter_best_cost_pass(
            far_e_dev, far_w_dev, out="far.filter"
        )
        report.add(phase)
        kept = filter_mask.values
        perm_dev = None
        if enable_grouping:
            kept_dev = ctx.array("far.kept", far_edges[kept])
            perm_dev, phase = system.scu.grouping_pass(
                kept_dev, node_data_base=dev.node_data.alloc.base, out="far.grouping"
            )
            report.add(phase)
        far_e_dev, phase = system.scu.data_compaction(
            far_e_dev, filter_mask, out="far.e.filtered", reorder=perm_dev
        )
        report.add(phase)
        far_w_dev, phase = system.scu.data_compaction(
            far_w_dev, filter_mask, out="far.w.filtered", reorder=perm_dev
        )
        report.add(phase)
        far_edges = np.asarray(far_e_dev.values, dtype=np.int64)
        far_costs = np.asarray(far_w_dev.values, dtype=np.float64)

    return _contract(
        system,
        mode,
        dev,
        report,
        far_e_dev,
        far_w_dev,
        far_edges,
        far_costs,
        threshold,
        filtered_upstream=enhanced,
        enable_grouping=enable_grouping,
    )
