"""Plain CPU reference implementations used to validate the simulations.

These are deliberately simple (deque BFS, Dijkstra via scipy, dense
power-iteration PageRank) — their only job is to be obviously correct so
the GPU/SCU functional simulations can be checked against them on every
dataset.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..graph.csr import CsrGraph

#: Label used for unreached nodes in BFS/SSSP outputs.
UNREACHED = -1


def bfs_reference(graph: CsrGraph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every node (-1 if unreachable)."""
    dist = np.full(graph.num_nodes, UNREACHED, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if dist[neighbor] == UNREACHED:
                dist[neighbor] = dist[node] + 1
                queue.append(neighbor)
    return dist


def sssp_reference(graph: CsrGraph, source: int) -> np.ndarray:
    """Weighted shortest-path distance (np.inf if unreachable)."""
    matrix = csr_matrix(
        (graph.weights, graph.edges, graph.offsets),
        shape=(graph.num_nodes, graph.num_nodes),
    )
    return dijkstra(matrix, directed=True, indices=source)


def pagerank_reference(
    graph: CsrGraph,
    *,
    alpha: float = 0.15,
    epsilon: float = 1e-6,
    max_iterations: int = 200,
) -> np.ndarray:
    """PageRank in the paper's formulation (Section 2.3).

    ``score(v) = alpha + (1 - alpha) * sum_{u->v} score(u) / out_degree(u)``

    iterated until the maximum node-wise change drops below ``epsilon``.
    Dangling nodes contribute nothing, as in the paper's CUDA code.
    """
    n = graph.num_nodes
    ranks = np.ones(n, dtype=np.float64)
    out_degree = graph.out_degrees.astype(np.float64)
    sources = graph.edge_sources()
    for _ in range(max_iterations):
        contribution = np.where(out_degree > 0, ranks / np.maximum(out_degree, 1), 0.0)
        incoming = np.zeros(n, dtype=np.float64)
        np.add.at(incoming, graph.edges, contribution[sources])
        new_ranks = alpha + (1.0 - alpha) * incoming
        if np.max(np.abs(new_ranks - ranks)) < epsilon:
            return new_ranks
        ranks = new_ranks
    return ranks
