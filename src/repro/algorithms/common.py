"""Shared machinery for the three graph primitives.

Holds the system-variant enum, the per-kernel instruction-cost constants
(modeling the CUDA implementations the paper builds on), the GPU-side
warp-culling model, and the device placement of a CSR graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# SystemMode now lives with the backend registry; re-exported here for
# compatibility — every historical ``from repro.algorithms.common import
# SystemMode`` keeps working.
from ..backends.modes import SystemMode
from ..core.api import ScuSystem
from ..core.energy import scu_static_power_w
from ..gpu.energy import system_static_power_w
from ..graph.csr import CsrGraph
from ..mem.address_space import DeviceArray
from ..phases import RunReport


#: Instruction-per-thread costs of the modeled CUDA kernels.  Derived
#: from the structure of the Merrill BFS / Davidson SSSP / Geil PR
#: kernels (loads, stores, index arithmetic, culling heuristics, scan
#: steps); they matter only when a kernel is compute-bound, which graph
#: kernels rarely are.
KERNEL_COSTS = {
    "expand.prepare": 12.0,  # degree fetch + scan participation
    "expand.gather": 8.0,  # ragged gather with CTA/warp balancing
    "contract.process": 22.0,  # label test + warp/history culling
    "contract.compact": 10.0,  # scan + scatter of surviving nodes
    "sssp.contract.process": 26.0,  # + near/far split and atomicMin
    "pr.rank_update": 11.0,  # atomic accumulation per edge
    "pr.dampen": 7.0,
    "pr.convergence": 9.0,  # block reduction participation
    "bitmask.build": 6.0,
}

#: Extra instructions charged per element for scan-based allocation
#: (prefix sums are log-depth but touch every element a few times).
SCAN_OVERHEAD_PER_ELEMENT = 4.0

#: Sustained fraction of peak memory throughput GPU stream-compaction
#: kernels reach.  Scan-based compaction pays multi-phase passes with
#: grid synchronization (Billeter et al. HPG'09 report ~half of copy
#: bandwidth for the scan alone), ragged fine-grained gathers, and
#: per-iteration launch/configuration stalls; measured GPU graph
#: traversals sustain well under a third of peak DRAM bandwidth during
#: their compaction steps — which is why Figure 1 of the paper shows
#: compaction costing 25-55 % of real execution time.  The SCU's whole
#: premise is that a dedicated sequential unit does not pay this.
COMPACTION_MEMORY_EFFICIENCY = 0.30

#: Reach of the per-CTA shared-memory history hash (Merrill): a
#: duplicate whose previous copy sits within this many stream positions
#: is caught cheaply.  Clustered duplicates (mesh neighbourhoods) fall
#: here.
HISTORY_CULL_WINDOW = 1024

#: Stream positions after which the non-atomic visited bit is visible
#: to later threads: the store propagates through the L2 in a couple of
#: microseconds, during which the grid retires a few thousand elements.
#: A time-based constant, so it is shared by both GPU systems.
VISIBILITY_WINDOW = 4096

#: Host-side cost charged once per GPU compaction phase: the scan runs
#: as separate upsweep/downsweep launches and the new frontier size is
#: copied back for the next launch configuration (cudaMemcpy + sync).
COMPACTION_SYNC_OVERHEAD_S = 4e-6


def compaction_sync_overhead_s(config) -> float:
    """Extra per-phase overhead of GPU scan-based compaction."""
    return config.kernel_launch_overhead_s + COMPACTION_SYNC_OVERHEAD_S


def best_effort_cull(
    ids: np.ndarray, *, history: int = HISTORY_CULL_WINDOW, visibility: int = VISIBILITY_WINDOW
) -> np.ndarray:
    """Keep-mask of Merrill's full best-effort duplicate pipeline (2.1.2).

    Three mechanisms, composed deterministically:

    * **warp/history culling** — per-CTA shared-memory hashes of
      recently enqueued nodes catch a duplicate whose *previous* copy
      lies within ``history`` stream positions (clustered duplicates,
      e.g. mesh neighbourhoods, rarely survive);
    * **visited bitmask** — the non-atomic global status bit becomes
      visible once the first copy retired more than ``visibility``
      positions earlier (roughly the resident-thread count), dropping
      far-apart duplicates;
    * duplicates in the band between race and survive — the false
      negatives the SCU's hash filtering later removes.
    """
    ids = np.asarray(ids, dtype=np.int64)
    n = ids.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    group_start = np.ones(n, dtype=bool)
    group_start[1:] = sorted_ids[1:] != sorted_ids[:-1]
    far_away = -(10 * n)  # sentinel: "no previous copy"
    prev_index = np.empty(n, dtype=np.int64)
    prev_index[order[0]] = far_away
    prev_index[order[1:]] = np.where(group_start[1:], far_away, order[:-1])
    starts = np.nonzero(group_start)[0]
    lengths = np.diff(np.append(starts, n))
    first_per_sorted = np.repeat(order[starts], lengths)
    first_index = np.empty(n, dtype=np.int64)
    first_index[order] = first_per_sorted
    indices = np.arange(n, dtype=np.int64)
    is_first = indices == first_index
    caught_by_history = (indices - prev_index) < history
    caught_by_bitmask = (indices - first_index) >= visibility
    return is_first | (~caught_by_history & ~caught_by_bitmask)


def warp_cull(ids: np.ndarray, *, window: int = 32) -> np.ndarray:
    """Keep-mask modeling intra-warp duplicate culling (Merrill Section 4).

    GPU implementations cheaply drop duplicates that threads of the same
    warp hold (voting/shuffle based), but duplicates further apart in
    the frontier survive — the "best-effort" filtering whose leftovers
    the SCU's hash filtering removes.  Deterministic model: within every
    consecutive ``window`` elements, only the first copy of a value is
    kept.
    """
    ids = np.asarray(ids, dtype=np.int64)
    n = ids.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    pad = (-n) % window
    padded = np.concatenate([ids, np.full(pad, -1, dtype=np.int64)]) if pad else ids
    grid = padded.reshape(-1, window)
    order = np.argsort(grid, axis=1, kind="stable")
    sorted_vals = np.take_along_axis(grid, order, axis=1)
    first = np.ones_like(sorted_vals, dtype=bool)
    first[:, 1:] = sorted_vals[:, 1:] != sorted_vals[:, :-1]
    keep_grid = np.empty_like(first)
    np.put_along_axis(keep_grid, order, first, axis=1)
    keep = keep_grid.reshape(-1)[:n]
    return keep


@dataclass
class GraphOnDevice:
    """A CSR graph placed in the simulated device memory."""

    graph: CsrGraph
    offsets: DeviceArray
    edges: DeviceArray
    weights: DeviceArray
    node_data: DeviceArray  # per-node state (labels / distances / ranks)
    scan_scratch: DeviceArray  # prefix-sum intermediate storage

    @classmethod
    def place(cls, graph: CsrGraph, system: ScuSystem, node_fill) -> "GraphOnDevice":
        ctx = system.ctx
        scratch_elems = max(graph.num_edges, graph.num_nodes, 1)
        return cls(
            graph=graph,
            offsets=ctx.array("csr.offsets", graph.offsets),
            edges=ctx.array("csr.edges", graph.edges),
            weights=ctx.array("csr.weights", graph.weights),
            node_data=ctx.array(
                "node.state", np.full(graph.num_nodes, node_fill)
            ),
            scan_scratch=ctx.array(
                "scan.scratch", np.zeros(scratch_elems, dtype=np.int64)
            ),
        )

    def add_scan_traffic(self, spec, n: int) -> None:
        """Charge prefix-sum traffic to a GPU compaction kernel.

        Scan-based allocation (Merrill/Billeter) makes an upsweep read
        pass and a downsweep write pass over its ``n`` inputs — memory
        traffic GPU stream compaction pays and the SCU does not.
        """
        if n <= 0:
            return
        indices = np.arange(n, dtype=np.int64) % self.scan_scratch.size
        spec.load(self.scan_scratch.addresses(indices))
        spec.store(self.scan_scratch.addresses(indices))


def finalize_report(report: RunReport, system: ScuSystem) -> RunReport:
    """Charge static energy over the makespan (GPU + DRAM + accelerator)."""
    power = system_static_power_w(system.gpu.config)
    if system.has_scu:
        power += scu_static_power_w(system.scu.config)
    if system.has_iru:
        power += system.iru.static_power_w
    report.static_energy_j = power * report.time_s()
    return report


def pick_source(graph: CsrGraph) -> int:
    """Deterministic high-degree source so traversals reach most nodes."""
    return int(np.argmax(graph.out_degrees))
