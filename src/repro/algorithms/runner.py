"""Top-level driver: run any primitive on any system variant.

``run_algorithm`` resolves the requested mode to its registered
:class:`~repro.backends.base.AcceleratorBackend`, builds a fresh system
through it, executes the requested primitive, and returns a
:class:`~repro.request.RunOutcome` bundling the result array, the
:class:`~repro.phases.RunReport` every experiment consumes, and the
simulated system.  ``execute_request`` is the same entry point driven by
a typed :class:`~repro.request.RunRequest`; ``cached_run`` memoizes
whole runs under the request's canonical :meth:`cache_key` so one
benchmark session (or a long-lived service) can assemble all six
figures without re-simulating.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..backends import get_backend
from ..core.api import PAPER_SCALE
from ..core.config import ScuConfig
from ..errors import ExperimentError
from ..graph.csr import CsrGraph
from ..graph.datasets import load_dataset
from ..obs import LruCache, Observability
from ..phases import RunReport
from ..request import RunOutcome, RunRequest
from .bfs import run_bfs
from .common import SystemMode
from .connected_components import run_connected_components
from .pagerank import run_pagerank
from .sssp import run_sssp

ALGORITHMS: Dict[str, Callable] = {
    "bfs": run_bfs,
    "sssp": run_sssp,
    "pagerank": run_pagerank,
    # extension primitive, not part of the paper's evaluation grid
    "connected_components": run_connected_components,
}

#: Paper ordering of the evaluated primitives (the experiment grid).
ALGORITHM_NAMES = ("bfs", "sssp", "pagerank")


def run_algorithm(
    algorithm: str,
    graph: CsrGraph,
    gpu_name: str,
    mode: SystemMode,
    *,
    scu_config: ScuConfig | None = None,
    memory_scale: float = PAPER_SCALE,
    obs: Observability | None = None,
    **kwargs,
) -> RunOutcome:
    """Run one (algorithm, graph, GPU, system-mode) combination.

    ``memory_scale`` defaults to :data:`~repro.core.api.PAPER_SCALE` so
    experiment runs operate in the paper's working-set regime; pass 1.0
    to model the true hardware capacities.  ``obs`` injects an
    observability bundle (see :mod:`repro.obs`) through the whole stack;
    tracing is passive and leaves every simulated number unchanged.

    Returns a :class:`~repro.request.RunOutcome`; unpacking it as the
    legacy ``result, report, system`` tuple is deprecated — use the
    ``.result`` / ``.report`` / ``.system`` attributes.
    """
    if algorithm not in ALGORITHMS:
        known = ", ".join(ALGORITHMS)
        raise ExperimentError(f"unknown algorithm {algorithm!r}; known: {known}")
    backend = get_backend(mode)
    system = backend.build_system(
        gpu_name,
        scu_config=scu_config,
        memory_scale=memory_scale,
        obs=obs,
    )
    # The backend decides which per-phase dispatch path the drivers
    # take (the IRU runs the baseline structure; its hook lives in the
    # device's memory path); the report still names the backend.
    phase_mode = backend.phase_mode(algorithm)
    result, report = ALGORITHMS[algorithm](graph, system, phase_mode, **kwargs)
    report.system = backend.name
    return RunOutcome(result=result, report=report, system=system)


def execute_request(
    request: RunRequest, *, obs: Observability | None = None
) -> RunOutcome:
    """Execute one typed :class:`~repro.request.RunRequest`.

    The request names a registry dataset (loaded under ``request.seed``);
    its canonical ``kwargs`` are forwarded to :func:`run_algorithm`.
    This is the single execution path behind the figure drivers, the
    parallel sweep workers, and the ``repro serve`` service.
    """
    graph = load_dataset(request.dataset, seed=request.seed)
    return run_algorithm(
        request.algorithm,
        graph,
        request.gpu_name,
        request.mode,
        obs=obs,
        **dict(request.kwargs),
    )


#: LRU bound of the memoized-run cache: one benchmark session sweeps
#: 3 algorithms x 6 datasets on one GPU/mode pair at a time, so 32
#: entries cover a full figure without letting a long-lived process
#: (the ``repro serve`` daemon embedding the simulator) grow without
#: bound.
RUN_CACHE_SIZE = 32

_RUN_CACHE = LruCache(RUN_CACHE_SIZE, metrics_prefix="runner.cache")

#: Optional L2 below the in-memory run cache: a persistent,
#: content-addressed :class:`~repro.serve.store.ResultStore`.  ``None``
#: (the default) keeps the historical single-tier behaviour; the serve
#: daemon (``--store-dir``) and the CLI install one for cold-start
#: reuse.  Reads promote into L1; writes go to both tiers.
_RESULT_STORE = None


def set_result_store(store) -> None:
    """Install (or with ``None`` remove) the process-wide L2 store."""
    global _RESULT_STORE
    _RESULT_STORE = store


def get_result_store():
    """The installed L2 result store, or ``None``."""
    return _RESULT_STORE


def get_cached_report(request: RunRequest, *, with_tier: bool = False):
    """Read through the tiered cache: L1 (memory) then L2 (disk).

    An L2 hit is promoted into L1, so the disk is touched once per key
    per process lifetime under steady load.  With ``with_tier`` the
    return value is ``(report, tier)`` where tier is ``"l1"``, ``"l2"``
    or ``None`` — the serve telemetry layer uses it to attribute hits.
    """
    report = _RUN_CACHE.get(request.cache_key())
    tier: Optional[str] = "l1" if report is not None else None
    if report is None and _RESULT_STORE is not None:
        report = _RESULT_STORE.get(request)
        if report is not None:
            tier = "l2"
            _RUN_CACHE.put(request.cache_key(), report)
    if with_tier:
        return report, tier
    return report


def put_cached_report(request: RunRequest, report: RunReport) -> None:
    """Memoize a report in every tier under the request's canonical key."""
    _RUN_CACHE.put(request.cache_key(), report)
    if _RESULT_STORE is not None:
        _RESULT_STORE.put(request, report)


def cached_run(
    algorithm: str,
    dataset: str,
    gpu_name: str,
    mode: SystemMode,
    *,
    seed: int = 42,
) -> RunReport:
    """Memoized run on a registry dataset; returns only the report.

    The cache is LRU-bounded to :data:`RUN_CACHE_SIZE` entries and keyed
    by :meth:`RunRequest.cache_key`; hits and misses (and evictions) are
    recorded in the process-wide metrics registry under
    ``runner.cache.*``.
    """
    request = RunRequest.make(algorithm, dataset, gpu_name, mode, seed=seed)
    report = get_cached_report(request)
    if report is None:
        report = execute_request(request).report
        put_cached_report(request, report)
    return report


def clear_run_cache() -> None:
    """Drop memoized runs (tests use this to bound memory)."""
    _RUN_CACHE.clear()
