"""Top-level driver: run any primitive on any system variant.

``run_algorithm`` builds a fresh system (GPU + optional SCU), executes
the requested primitive, validates nothing here (tests do), and returns
results plus the :class:`~repro.phases.RunReport` that every experiment
consumes.  ``cached_run`` memoizes whole runs so one benchmark session
can assemble all six figures without re-simulating.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..core.api import PAPER_SCALE, ScuSystem, build_system
from ..core.config import ScuConfig
from ..errors import ExperimentError
from ..graph.csr import CsrGraph
from ..graph.datasets import load_dataset
from ..obs import LruCache, Observability
from ..phases import RunReport
from .bfs import run_bfs
from .common import SystemMode
from .connected_components import run_connected_components
from .pagerank import run_pagerank
from .sssp import run_sssp

ALGORITHMS: Dict[str, Callable] = {
    "bfs": run_bfs,
    "sssp": run_sssp,
    "pagerank": run_pagerank,
    # extension primitive, not part of the paper's evaluation grid
    "connected_components": run_connected_components,
}

#: Paper ordering of the evaluated primitives (the experiment grid).
ALGORITHM_NAMES = ("bfs", "sssp", "pagerank")


def run_algorithm(
    algorithm: str,
    graph: CsrGraph,
    gpu_name: str,
    mode: SystemMode,
    *,
    scu_config: ScuConfig | None = None,
    memory_scale: float = PAPER_SCALE,
    obs: Observability | None = None,
    **kwargs,
) -> tuple[np.ndarray, RunReport, ScuSystem]:
    """Run one (algorithm, graph, GPU, system-mode) combination.

    ``memory_scale`` defaults to :data:`~repro.core.api.PAPER_SCALE` so
    experiment runs operate in the paper's working-set regime; pass 1.0
    to model the true hardware capacities.  ``obs`` injects an
    observability bundle (see :mod:`repro.obs`) through the whole stack;
    tracing is passive and leaves every simulated number unchanged.
    """
    if algorithm not in ALGORITHMS:
        known = ", ".join(ALGORITHMS)
        raise ExperimentError(f"unknown algorithm {algorithm!r}; known: {known}")
    system = build_system(
        gpu_name,
        with_scu=mode is not SystemMode.GPU,
        scu_config=scu_config,
        memory_scale=memory_scale,
        obs=obs,
    )
    result, report = ALGORITHMS[algorithm](graph, system, mode, **kwargs)
    return result, report, system


#: LRU bound of the memoized-run cache: one benchmark session sweeps
#: 3 algorithms x 6 datasets on one GPU/mode pair at a time, so 32
#: entries cover a full figure without letting a long-lived process
#: (a service embedding the simulator) grow without bound.
RUN_CACHE_SIZE = 32

_RUN_CACHE = LruCache(RUN_CACHE_SIZE, metrics_prefix="runner.cache")


def cached_run(
    algorithm: str,
    dataset: str,
    gpu_name: str,
    mode: SystemMode,
    *,
    seed: int = 42,
) -> RunReport:
    """Memoized run on a registry dataset; returns only the report.

    The cache is LRU-bounded to :data:`RUN_CACHE_SIZE` entries; hits and
    misses (and evictions) are recorded in the process-wide metrics
    registry under ``runner.cache.*``.
    """
    key = (algorithm, dataset, gpu_name, mode, seed)
    report = _RUN_CACHE.get(key)
    if report is None:
        graph = load_dataset(dataset, seed=seed)
        _, report, _ = run_algorithm(algorithm, graph, gpu_name, mode)
        _RUN_CACHE.put(key, report)
    return report


def clear_run_cache() -> None:
    """Drop memoized runs (tests use this to bound memory)."""
    _RUN_CACHE.clear()
