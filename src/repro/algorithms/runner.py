"""Top-level driver: run any primitive on any system variant.

``run_algorithm`` resolves the requested mode to its registered
:class:`~repro.backends.base.AcceleratorBackend`, builds a fresh system
through it, executes the requested primitive, and returns a
:class:`~repro.request.RunOutcome` bundling the result array, the
:class:`~repro.phases.RunReport` every experiment consumes, and the
simulated system.  ``execute_request`` is the same entry point driven by
a typed :class:`~repro.request.RunRequest`; ``cached_run`` memoizes
whole runs under the request's canonical :meth:`cache_key` so one
benchmark session (or a long-lived service) can assemble all six
figures without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..backends import get_backend
from ..core.api import PAPER_SCALE
from ..core.config import ScuConfig
from ..errors import ExperimentError
from ..graph.csr import CsrGraph
from ..graph.datasets import load_dataset
from ..obs import LruCache, Observability
from ..phases import RunReport
from ..request import RunOutcome, RunRequest
from .bfs import run_bfs
from .common import SystemMode
from .connected_components import run_connected_components
from .pagerank import run_pagerank
from .sssp import run_sssp

ALGORITHMS: Dict[str, Callable] = {
    "bfs": run_bfs,
    "sssp": run_sssp,
    "pagerank": run_pagerank,
    # extension primitive, not part of the paper's evaluation grid
    "connected_components": run_connected_components,
}

#: Paper ordering of the evaluated primitives (the experiment grid).
ALGORITHM_NAMES = ("bfs", "sssp", "pagerank")


def run_algorithm(
    algorithm: str,
    graph: CsrGraph,
    gpu_name: str,
    mode: SystemMode,
    *,
    scu_config: ScuConfig | None = None,
    memory_scale: float = PAPER_SCALE,
    obs: Observability | None = None,
    **kwargs,
) -> RunOutcome:
    """Run one (algorithm, graph, GPU, system-mode) combination.

    ``memory_scale`` defaults to :data:`~repro.core.api.PAPER_SCALE` so
    experiment runs operate in the paper's working-set regime; pass 1.0
    to model the true hardware capacities.  ``obs`` injects an
    observability bundle (see :mod:`repro.obs`) through the whole stack;
    tracing is passive and leaves every simulated number unchanged.

    Returns a :class:`~repro.request.RunOutcome`; unpacking it as the
    legacy ``result, report, system`` tuple is deprecated — use the
    ``.result`` / ``.report`` / ``.system`` attributes.
    """
    if algorithm not in ALGORITHMS:
        known = ", ".join(ALGORITHMS)
        raise ExperimentError(f"unknown algorithm {algorithm!r}; known: {known}")
    backend = get_backend(mode)
    system = backend.build_system(
        gpu_name,
        scu_config=scu_config,
        memory_scale=memory_scale,
        obs=obs,
    )
    # The backend decides which per-phase dispatch path the drivers
    # take (the IRU runs the baseline structure; its hook lives in the
    # device's memory path); the report still names the backend.
    phase_mode = backend.phase_mode(algorithm)
    result, report = ALGORITHMS[algorithm](graph, system, phase_mode, **kwargs)
    report.system = backend.name
    return RunOutcome(result=result, report=report, system=system)


def execute_request(
    request: RunRequest, *, obs: Observability | None = None
) -> RunOutcome:
    """Execute one typed :class:`~repro.request.RunRequest`.

    The request names a registry dataset (loaded under ``request.seed``);
    its canonical ``kwargs`` are forwarded to :func:`run_algorithm`.
    This is the single execution path behind the figure drivers, the
    parallel sweep workers, and the ``repro serve`` service.
    """
    graph = load_dataset(request.dataset, seed=request.seed)
    return run_algorithm(
        request.algorithm,
        graph,
        request.gpu_name,
        request.mode,
        obs=obs,
        **dict(request.kwargs),
    )


def batch_compatibility_key(request: RunRequest) -> Tuple[str, int, str]:
    """Grouping key for cross-request fusion: ``(dataset, seed, gpu)``.

    Requests sharing this key simulate against the *same* loaded graph,
    so one load (and one warm accelerator working set) serves the whole
    group.  ``mode``, ``memory_scale``, and the algorithm stay
    per-request — they change the simulated system itself, not the
    input data, and fusing across them would change per-request bits.
    """
    return (request.dataset, request.seed, request.gpu_name)


@dataclass(frozen=True)
class BatchItem:
    """One request's result within a batched execution.

    ``simulated`` is False when the report came from a cache tier (or a
    duplicate earlier in the same batch); ``tier`` is ``"l1"``/``"l2"``
    for cache hits, ``None`` when the batch actually simulated it.
    """

    request: RunRequest
    report: RunReport
    simulated: bool
    tier: Optional[str] = None


def run_batch(
    requests: Sequence[RunRequest],
    *,
    obs: Observability | None = None,
    use_cache: bool = True,
) -> List[BatchItem]:
    """Execute N requests as fused per-``(dataset, seed, gpu)`` groups.

    For each compatibility group the graph is loaded **once** and every
    distinct ``cache_key()`` is simulated **once** — duplicate requests
    (and, with ``use_cache``, previously memoized ones probed through a
    single :meth:`~repro.obs.LruCache.get_many` bulk lookup) reuse the
    same report object.  Results come back in input order, and every
    report is byte-identical to what :func:`execute_request` produces
    for the same request: the batched path changes *when* work happens,
    never what a request computes.
    """
    requests = list(requests)
    results: List[Optional[BatchItem]] = [None] * len(requests)
    groups: Dict[Tuple[str, int, str], List[int]] = {}
    for position, request in enumerate(requests):
        groups.setdefault(batch_compatibility_key(request), []).append(position)
    for key, positions in groups.items():
        dataset, seed, _gpu = key
        # In-group dedupe: one simulation per distinct canonical key.
        distinct: Dict[Tuple, List[int]] = {}
        for position in positions:
            distinct.setdefault(requests[position].cache_key(), []).append(position)
        cached: Dict[Tuple, RunReport] = {}
        tiers: Dict[Tuple, str] = {}
        if use_cache:
            cached = _RUN_CACHE.get_many(distinct.keys())
            tiers = {cache_key: "l1" for cache_key in cached}
            if _RESULT_STORE is not None:
                for cache_key in distinct:
                    if cache_key in cached:
                        continue
                    report = _RESULT_STORE.get(requests[distinct[cache_key][0]])
                    if report is not None:
                        cached[cache_key] = report
                        tiers[cache_key] = "l2"
                        _RUN_CACHE.put(cache_key, report)
        # One load serves every simulated member of the group; a fully
        # cached group never touches the dataset registry at all.
        graph = None
        if any(cache_key not in cached for cache_key in distinct):
            graph = load_dataset(dataset, seed=seed)
        for cache_key, members in distinct.items():
            report = cached.get(cache_key)
            simulated = report is None
            if simulated:
                leader = requests[members[0]]
                report = run_algorithm(
                    leader.algorithm,
                    graph,
                    leader.gpu_name,
                    leader.mode,
                    obs=obs,
                    **dict(leader.kwargs),
                ).report
                if use_cache:
                    put_cached_report(leader, report)
            for index, position in enumerate(members):
                results[position] = BatchItem(
                    request=requests[position],
                    report=report,
                    # Only the first occurrence of a key counts as the
                    # simulation; duplicates rode along for free.
                    simulated=simulated and index == 0,
                    tier=tiers.get(cache_key),
                )
    return [item for item in results if item is not None]


#: LRU bound of the memoized-run cache: one benchmark session sweeps
#: 3 algorithms x 6 datasets on one GPU/mode pair at a time, so 32
#: entries cover a full figure without letting a long-lived process
#: (the ``repro serve`` daemon embedding the simulator) grow without
#: bound.
RUN_CACHE_SIZE = 32

_RUN_CACHE = LruCache(RUN_CACHE_SIZE, metrics_prefix="runner.cache")

#: Optional L2 below the in-memory run cache: a persistent,
#: content-addressed :class:`~repro.serve.store.ResultStore`.  ``None``
#: (the default) keeps the historical single-tier behaviour; the serve
#: daemon (``--store-dir``) and the CLI install one for cold-start
#: reuse.  Reads promote into L1; writes go to both tiers.
_RESULT_STORE = None


def set_result_store(store) -> None:
    """Install (or with ``None`` remove) the process-wide L2 store."""
    global _RESULT_STORE
    _RESULT_STORE = store


def get_result_store():
    """The installed L2 result store, or ``None``."""
    return _RESULT_STORE


def get_cached_report(request: RunRequest, *, with_tier: bool = False):
    """Read through the tiered cache: L1 (memory) then L2 (disk).

    An L2 hit is promoted into L1, so the disk is touched once per key
    per process lifetime under steady load.  With ``with_tier`` the
    return value is ``(report, tier)`` where tier is ``"l1"``, ``"l2"``
    or ``None`` — the serve telemetry layer uses it to attribute hits.
    """
    report = _RUN_CACHE.get(request.cache_key())
    tier: Optional[str] = "l1" if report is not None else None
    if report is None and _RESULT_STORE is not None:
        report = _RESULT_STORE.get(request)
        if report is not None:
            tier = "l2"
            _RUN_CACHE.put(request.cache_key(), report)
    if with_tier:
        return report, tier
    return report


def put_cached_report(request: RunRequest, report: RunReport) -> None:
    """Memoize a report in every tier under the request's canonical key."""
    _RUN_CACHE.put(request.cache_key(), report)
    if _RESULT_STORE is not None:
        _RESULT_STORE.put(request, report)


def cached_run(
    algorithm: str,
    dataset: str,
    gpu_name: str,
    mode: SystemMode,
    *,
    seed: int = 42,
) -> RunReport:
    """Memoized run on a registry dataset; returns only the report.

    The cache is LRU-bounded to :data:`RUN_CACHE_SIZE` entries and keyed
    by :meth:`RunRequest.cache_key`; hits and misses (and evictions) are
    recorded in the process-wide metrics registry under
    ``runner.cache.*``.
    """
    request = RunRequest.make(algorithm, dataset, gpu_name, mode, seed=seed)
    report = get_cached_report(request)
    if report is None:
        report = execute_request(request).report
        put_cached_report(request, report)
    return report


def clear_run_cache() -> None:
    """Drop memoized runs (tests use this to bound memory)."""
    _RUN_CACHE.clear()
