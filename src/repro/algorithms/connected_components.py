"""Connected Components — an extension primitive beyond the paper's three.

The paper evaluates BFS, SSSP and PR but argues the SCU serves "graph
processing" generally; label-propagation connected components is the
natural fourth primitive: it is frontier-driven like BFS (so the SCU's
expansion/compaction offload and duplicate filtering apply directly)
but *monotone on labels* rather than on visitation, which exercises the
unique-best-cost filter with a different semantics — the "cost" is the
candidate component label, and lower labels win.

Algorithm (hook-free label propagation):

* every node starts in its own component (label = node id);
* the frontier holds nodes whose label just dropped;
* expansion pushes ``min(label[u])`` along edges; contraction keeps
  destinations whose label improves, exactly like SSSP's near pile with
  an always-zero threshold.

Validated against NetworkX / the union-find reference below.
"""

from __future__ import annotations

import numpy as np

from ..core.ops import expanded_indices
from ..core.api import ScuSystem
from ..errors import SimulationError
from ..gpu.kernel import KernelSpec
from ..graph.csr import CsrGraph
from ..phases import PhaseKind, RunReport
from .common import (
    COMPACTION_MEMORY_EFFICIENCY,
    KERNEL_COSTS,
    SCAN_OVERHEAD_PER_ELEMENT,
    GraphOnDevice,
    SystemMode,
    compaction_sync_overhead_s,
    finalize_report,
)


def connected_components_reference(graph: CsrGraph) -> np.ndarray:
    """Union-find reference labelling (weak connectivity, min-id labels)."""
    parent = np.arange(graph.num_nodes, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    sources = graph.edge_sources()
    for u, v in zip(sources.tolist(), graph.edges.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return np.asarray([find(i) for i in range(graph.num_nodes)], dtype=np.int64)


def connected_components_labels(graph: CsrGraph) -> np.ndarray:
    """Vectorized weak-connectivity labelling (pointer jumping).

    Byte-identical to :func:`connected_components_reference`: every node
    is labelled with the minimum node id of its weakly-connected
    component.  Each round propagates labels across edges in both
    directions with ``np.minimum.at`` and then compresses chains by
    pointer jumping (``labels = labels[labels]``); since ``labels[x] <=
    x`` is invariant, both steps are monotone and the fixpoint is
    reached in O(log diameter) rounds.
    """
    labels = np.arange(graph.num_nodes, dtype=np.int64)
    if graph.num_nodes == 0:
        return labels
    sources = graph.edge_sources()
    targets = np.asarray(graph.edges, dtype=np.int64)
    while True:
        before = labels.copy()
        np.minimum.at(labels, sources, labels[targets])
        np.minimum.at(labels, targets, labels[sources])
        # Pointer jumping: labels[x] <= x, so labels[labels] only drops.
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, before):
            return labels


def run_connected_components(
    graph: CsrGraph,
    system: ScuSystem,
    mode: SystemMode,
    *,
    max_iterations: int = 10_000,
) -> tuple[np.ndarray, RunReport]:
    """Run label-propagation CC; returns (labels, cost report).

    Note: labels converge to the minimum *reachable* id only when edges
    are symmetric (weak connectivity on an undirected graph) — which all
    Table 5 analogs are.
    """
    if mode is not SystemMode.GPU and not system.has_scu:
        raise SimulationError(f"mode {mode.value} requires a system with an SCU")

    dev = GraphOnDevice.place(graph, system, np.int64(0))
    labels = dev.node_data.values
    labels[:] = np.arange(graph.num_nodes, dtype=np.int64)

    report = RunReport(
        algorithm="connected_components", system=mode.value, dataset=graph.name
    )
    ctx = system.ctx
    gpu = system.gpu
    tracer = system.obs.tracer
    frontier_hist = system.obs.metrics.histogram("frontier.size")

    frontier = np.arange(graph.num_nodes, dtype=np.int64)
    for _ in range(max_iterations):
        if frontier.size == 0:
            break
        tracer.counter("frontier.size", nodes=frontier.size)
        frontier_hist.observe(frontier.size, algorithm="connected_components")
        with tracer.span(
            "cc.iteration", "algorithm", frontier_nodes=int(frontier.size)
        ):
            nf_dev = ctx.array("cc.nf", frontier)

            # ---- expansion preparation (GPU) ------------------------------------
            indexes_values = graph.offsets[frontier]
            count_values = graph.out_degrees[frontier]
            indexes_dev = ctx.array("cc.indexes", indexes_values)
            count_dev = ctx.array("cc.count", count_values)
            label_dev = ctx.array("cc.labels", labels[frontier])
            prepare = KernelSpec(
                "cc.expand.prepare",
                PhaseKind.PROCESSING,
                threads=frontier.size,
                instructions_per_thread=KERNEL_COSTS["expand.prepare"],
                extra_instructions=int(SCAN_OVERHEAD_PER_ELEMENT * frontier.size),
            )
            prepare.load(nf_dev.addresses())
            prepare.load(dev.offsets.addresses(frontier))
            prepare.load(dev.offsets.addresses(frontier + 1))
            prepare.load(dev.node_data.addresses(frontier))
            prepare.store(indexes_dev.addresses())
            prepare.store(count_dev.addresses())
            prepare.store(label_dev.addresses())
            report.add(gpu.run(prepare))

            gather_indices = expanded_indices(indexes_values, count_values)
            ef_values = graph.edges[gather_indices]
            candidate_labels = np.repeat(labels[frontier], count_values)

            # ---- expansion gather ------------------------------------------------
            if mode is SystemMode.GPU:
                ef_dev = ctx.array("cc.ef", ef_values)
                lf_dev = ctx.array("cc.lf", candidate_labels)
                gather = KernelSpec(
                    "cc.expand.gather",
                    PhaseKind.COMPACTION,
                    threads=ef_values.size,
                    instructions_per_thread=KERNEL_COSTS["expand.gather"],
                    extra_instructions=int(SCAN_OVERHEAD_PER_ELEMENT * frontier.size),
                    memory_efficiency=COMPACTION_MEMORY_EFFICIENCY,
                    extra_overhead_s=compaction_sync_overhead_s(gpu.config),
                )
                gather.load(indexes_dev.addresses())
                gather.load(count_dev.addresses())
                gather.load(dev.edges.addresses(gather_indices))
                gather.store(ef_dev.addresses())
                gather.store(lf_dev.addresses())
                dev.add_scan_traffic(gather, frontier.size)
                report.add(gpu.run(gather))
                keep_mask = None
            else:
                ef_dev, phase = system.scu.access_expansion_compaction(
                    dev.edges, indexes_dev, count_dev, out="cc.ef"
                )
                report.add(phase)
                lf_dev, phase = system.scu.replication_compaction(
                    label_dev, count_dev, out="cc.lf"
                )
                report.add(phase)
                keep_mask = None
                if mode is SystemMode.SCU_ENHANCED:
                    # Unique-best-cost filtering with labels as the cost: for
                    # every destination keep only the lowest candidate label
                    # seen (hash-lossy, exactly as in SSSP).
                    mask_dev, phase = system.scu.filter_best_cost_pass(
                        ef_dev, lf_dev, out="cc.filter"
                    )
                    report.add(phase)
                    keep_mask = np.asarray(mask_dev.values, dtype=bool)
                    ef_dev, phase = system.scu.data_compaction(
                        ef_dev, mask_dev, out="cc.ef.f"
                    )
                    report.add(phase)
                    lf_dev, phase = system.scu.data_compaction(
                        lf_dev, mask_dev, out="cc.lf.f"
                    )
                    report.add(phase)

            if keep_mask is not None:
                ef_values = ef_values[keep_mask]
                candidate_labels = candidate_labels[keep_mask]

            # ---- contraction: keep improving labels (GPU) -------------------------
            improving = candidate_labels < labels[ef_values]
            process = KernelSpec(
                "cc.contract.process",
                PhaseKind.PROCESSING,
                threads=ef_values.size,
                instructions_per_thread=KERNEL_COSTS["contract.process"],
            )
            process.load(ef_dev.addresses())
            process.load(lf_dev.addresses())
            process.load(dev.node_data.addresses(ef_values))
            process.atomic(dev.node_data.addresses(ef_values[improving]))
            mask_dev2 = ctx.bitmask("cc.mask", improving)
            process.store(mask_dev2.addresses())
            report.add(gpu.run(process))

            candidates = np.unique(ef_values[improving])
            before = labels[candidates].copy()
            if improving.any():
                np.minimum.at(labels, ef_values[improving], candidate_labels[improving])
            # Only nodes whose label actually dropped re-enter the frontier.
            updated = candidates[labels[candidates] < before]

            # ---- contraction: compact the next frontier ---------------------------
            next_mask = np.isin(ef_values, updated) & improving
            next_mask_dev = ctx.bitmask("cc.nextmask", next_mask)
            if mode is SystemMode.GPU:
                compact = KernelSpec(
                    "cc.contract.compact",
                    PhaseKind.COMPACTION,
                    threads=ef_values.size,
                    instructions_per_thread=KERNEL_COSTS["contract.compact"],
                    extra_instructions=int(SCAN_OVERHEAD_PER_ELEMENT * ef_values.size),
                    memory_efficiency=COMPACTION_MEMORY_EFFICIENCY,
                    extra_overhead_s=compaction_sync_overhead_s(gpu.config),
                )
                compact.load(ef_dev.addresses())
                compact.load(next_mask_dev.addresses())
                compact.store(ctx.array("cc.nf.next", updated).addresses())
                dev.add_scan_traffic(compact, ef_values.size)
                report.add(gpu.run(compact))
            else:
                _, phase = system.scu.data_compaction(
                    ef_dev, next_mask_dev, out="cc.nf.next"
                )
                report.add(phase)
            frontier = updated
    else:
        raise SimulationError("CC failed to converge within the iteration budget")

    return labels.copy(), finalize_report(report, system)
