"""Graph primitives (BFS, SSSP, PageRank) on the three system variants."""

from .bfs import run_bfs
from .common import (
    KERNEL_COSTS,
    GraphOnDevice,
    SystemMode,
    finalize_report,
    pick_source,
    warp_cull,
)
from .connected_components import (
    connected_components_labels,
    connected_components_reference,
    run_connected_components,
)
from .pagerank import run_pagerank
from .reference import UNREACHED, bfs_reference, pagerank_reference, sssp_reference
from .runner import (
    ALGORITHM_NAMES,
    ALGORITHMS,
    cached_run,
    clear_run_cache,
    execute_request,
    get_cached_report,
    put_cached_report,
    run_algorithm,
)
from .sssp import run_sssp

__all__ = [
    "SystemMode",
    "run_bfs",
    "run_sssp",
    "run_pagerank",
    "run_connected_components",
    "connected_components_labels",
    "connected_components_reference",
    "run_algorithm",
    "execute_request",
    "cached_run",
    "clear_run_cache",
    "get_cached_report",
    "put_cached_report",
    "ALGORITHMS",
    "ALGORITHM_NAMES",
    "bfs_reference",
    "sssp_reference",
    "pagerank_reference",
    "UNREACHED",
    "warp_cull",
    "pick_source",
    "GraphOnDevice",
    "finalize_report",
    "KERNEL_COSTS",
]
