"""PageRank — Geil et al.'s four-phase formulation (Section 2.3).

Every iteration touches all nodes and edges: expansion builds the edge
and weight (rank-contribution) frontiers, rank-update atomically
accumulates contributions per destination, dampening applies the factor,
and the convergence check compares against the previous iteration.

The SCU offloads only the expansion's stream compaction (Algorithm 3);
filtering and grouping do not apply (Section 4.6: all nodes stay active
and the access pattern is already regular), so the enhanced variant is
the basic one.  On the GTX980 the paper reports a small *slowdown* —
the SCU's sequential pipeline cannot beat 16 SMs at an already-regular
gather — while the TX1 still gains slightly.
"""

from __future__ import annotations

import numpy as np

from ..core.api import ScuSystem
from ..core.ops import expanded_indices
from ..errors import SimulationError
from ..gpu.kernel import KernelSpec
from ..graph.csr import CsrGraph
from ..phases import PhaseKind, RunReport
from .common import (
    COMPACTION_MEMORY_EFFICIENCY,
    compaction_sync_overhead_s,
    KERNEL_COSTS,
    SCAN_OVERHEAD_PER_ELEMENT,
    GraphOnDevice,
    SystemMode,
    finalize_report,
)

#: The paper's dampening constant role; 0.15 in the score formulation
#: ``score = alpha + (1 - alpha) * incoming``.
DEFAULT_ALPHA = 0.15


def run_pagerank(
    graph: CsrGraph,
    system: ScuSystem,
    mode: SystemMode,
    *,
    alpha: float = DEFAULT_ALPHA,
    epsilon: float = 1e-4,
    max_iterations: int = 60,
) -> tuple[np.ndarray, RunReport]:
    """Run PageRank; returns (scores, phase-level cost report)."""
    if mode is not SystemMode.GPU and not system.has_scu:
        raise SimulationError(f"mode {mode.value} requires a system with an SCU")
    if not 0.0 < alpha < 1.0:
        raise SimulationError(f"alpha must be in (0, 1), got {alpha}")

    dev = GraphOnDevice.place(graph, system, np.float64(1.0))
    ranks = dev.node_data.values

    report = RunReport(algorithm="pagerank", system=mode.value, dataset=graph.name)
    ctx = system.ctx
    gpu = system.gpu
    tracer = system.obs.tracer

    n = graph.num_nodes
    all_nodes = np.arange(n, dtype=np.int64)
    degrees = graph.out_degrees
    indexes_dev = ctx.array("pr.indexes", graph.offsets[:-1])
    count_dev = ctx.array("pr.count", degrees)
    gather_indices = expanded_indices(graph.offsets[:-1], degrees)
    prev_ranks_dev = ctx.array("pr.prev", ranks.copy())

    converged = False
    for iteration in range(max_iterations):
        with tracer.span("pr.iteration", "algorithm", iteration=iteration):
            # ---- expansion preparation (GPU, all modes) ------------------------
            contributions = np.where(degrees > 0, ranks / np.maximum(degrees, 1), 0.0)
            contrib_dev = ctx.array("pr.contrib", contributions)
            prepare = KernelSpec(
                "pr.expand.prepare",
                PhaseKind.PROCESSING,
                threads=n,
                instructions_per_thread=KERNEL_COSTS["expand.prepare"],
                extra_instructions=int(SCAN_OVERHEAD_PER_ELEMENT * n),
            )
            prepare.load(dev.offsets.addresses(all_nodes))
            prepare.load(dev.offsets.addresses(all_nodes + 1))
            prepare.load(dev.node_data.addresses(all_nodes))
            prepare.store(contrib_dev.addresses())
            report.add(gpu.run(prepare))

            ef_values = graph.edges[gather_indices]
            wf_values = np.repeat(contributions, degrees)

            # ---- expansion gather: the PR compaction workload -------------------
            if mode is SystemMode.GPU:
                ef_dev = ctx.array("pr.ef", ef_values)
                wf_dev = ctx.array("pr.wf", wf_values)
                gather = KernelSpec(
                    "pr.expand.gather",
                    PhaseKind.COMPACTION,
                    threads=ef_values.size,
                    instructions_per_thread=KERNEL_COSTS["expand.gather"],
                    extra_instructions=int(SCAN_OVERHEAD_PER_ELEMENT * n),
                    memory_efficiency=COMPACTION_MEMORY_EFFICIENCY,
                    extra_overhead_s=compaction_sync_overhead_s(gpu.config),
                )
                gather.load(indexes_dev.addresses())
                gather.load(count_dev.addresses())
                gather.load(dev.edges.addresses(gather_indices))
                gather.load(contrib_dev.addresses())
                gather.store(ef_dev.addresses())
                gather.store(wf_dev.addresses())
                dev.add_scan_traffic(gather, n)
                report.add(gpu.run(gather))
            else:  # SCU offload (Algorithm 3): expansion + replication
                ef_dev, phase = system.scu.access_expansion_compaction(
                    dev.edges, indexes_dev, count_dev, out="pr.ef"
                )
                report.add(phase)
                wf_dev, phase = system.scu.replication_compaction(
                    contrib_dev, count_dev, out="pr.wf"
                )
                report.add(phase)

            # ---- rank update (GPU, all modes): atomicAdd per edge ---------------
            incoming = np.zeros(n, dtype=np.float64)
            np.add.at(incoming, ef_values, wf_values)
            update = KernelSpec(
                "pr.rank_update",
                PhaseKind.PROCESSING,
                threads=ef_values.size,
                instructions_per_thread=KERNEL_COSTS["pr.rank_update"],
            )
            update.load(ef_dev.addresses())
            update.load(wf_dev.addresses())
            update.atomic(dev.node_data.addresses(np.asarray(ef_dev.values, dtype=np.int64)))
            report.add(gpu.run(update))

            # ---- dampening (GPU, all modes) --------------------------------------
            new_ranks = alpha + (1.0 - alpha) * incoming
            dampen = KernelSpec(
                "pr.dampen",
                PhaseKind.PROCESSING,
                threads=n,
                instructions_per_thread=KERNEL_COSTS["pr.dampen"],
            )
            dampen.load(dev.node_data.addresses(all_nodes))
            dampen.store(dev.node_data.addresses(all_nodes))
            report.add(gpu.run(dampen))

            # ---- convergence check (GPU, all modes) ------------------------------
            delta = float(np.max(np.abs(new_ranks - ranks))) if n else 0.0
            check = KernelSpec(
                "pr.convergence",
                PhaseKind.PROCESSING,
                threads=n,
                instructions_per_thread=KERNEL_COSTS["pr.convergence"],
            )
            check.load(dev.node_data.addresses(all_nodes))
            check.load(prev_ranks_dev.addresses(all_nodes))
            report.add(gpu.run(check))

            ranks[:] = new_ranks
            tracer.counter("pr.delta", delta=delta)
        if delta < epsilon:
            converged = True
            break

    if not converged:
        raise SimulationError(
            f"PageRank did not converge within {max_iterations} iterations"
        )
    return ranks.copy(), finalize_report(report, system)
