"""Breadth-First Search — Merrill-style expansion/contraction (Section 2.1).

Three system variants share one functional core:

* ``SystemMode.GPU`` — the baseline: the edge-frontier gather and the
  node-frontier compaction run as GPU kernels (tagged COMPACTION so
  Figure 1's split can be measured);
* ``SystemMode.SCU_BASIC`` — Algorithm 1: those compactions are
  offloaded to the SCU;
* ``SystemMode.SCU_ENHANCED`` — Algorithm 4: the SCU additionally
  builds hash-filter bitmasks during expansion and contraction, so the
  GPU sees a nearly duplicate-free workload.  Grouping is *not* used
  for BFS (Section 4.4: it interferes with warp culling).

The baseline's duplicate handling is the paper's "best-effort" story:
a warp-level cull drops same-warp copies, the label test drops
already-visited nodes, and everything else survives to inflate the next
frontier — which is precisely the workload the SCU filtering removes.
"""

from __future__ import annotations

import numpy as np

from ..core.api import ScuSystem
from ..core.ops import expanded_indices
from ..core.pipeline import gather_read, sequential_read
from ..errors import SimulationError
from ..gpu.kernel import KernelSpec
from ..graph.csr import CsrGraph
from ..phases import PhaseKind, RunReport
from .common import (
    COMPACTION_MEMORY_EFFICIENCY,
    KERNEL_COSTS,
    SCAN_OVERHEAD_PER_ELEMENT,
    GraphOnDevice,
    SystemMode,
    best_effort_cull,
    compaction_sync_overhead_s,
    finalize_report,
    pick_source,
    warp_cull,
)
from .reference import UNREACHED


def run_bfs(
    graph: CsrGraph,
    system: ScuSystem,
    mode: SystemMode,
    *,
    source: int | None = None,
    max_iterations: int = 10_000,
) -> tuple[np.ndarray, RunReport]:
    """Run BFS; returns (hop distances, phase-level cost report)."""
    if mode is not SystemMode.GPU and not system.has_scu:
        raise SimulationError(f"mode {mode.value} requires a system with an SCU")
    if source is None:
        source = pick_source(graph)

    dev = GraphOnDevice.place(graph, system, np.int64(UNREACHED))
    labels = dev.node_data.values
    labels[source] = 0

    report = RunReport(algorithm="bfs", system=mode.value, dataset=graph.name)
    ctx = system.ctx
    gpu = system.gpu
    tracer = system.obs.tracer
    frontier_hist = system.obs.metrics.histogram("frontier.size")

    nf_dev = ctx.array("nf", np.array([source], dtype=np.int64))
    depth = 0
    for _ in range(max_iterations):
        if nf_dev.size == 0:
            break
        depth += 1
        nf = np.asarray(nf_dev.values, dtype=np.int64)
        tracer.counter("frontier.size", nodes=nf.size)
        frontier_hist.observe(nf.size, algorithm="bfs")
        with tracer.span(
            "bfs.iteration", "algorithm", depth=depth, frontier_nodes=int(nf.size)
        ):
            # ---- expansion: prepare indexes/count on the GPU (all modes) ----
            indexes_values = graph.offsets[nf]
            count_values = graph.out_degrees[nf]
            indexes_dev = ctx.array("expand.indexes", indexes_values)
            count_dev = ctx.array("expand.count", count_values)
            prepare = KernelSpec(
                "bfs.expand.prepare",
                PhaseKind.PROCESSING,
                threads=nf.size,
                instructions_per_thread=KERNEL_COSTS["expand.prepare"],
                extra_instructions=int(SCAN_OVERHEAD_PER_ELEMENT * nf.size),
            )
            prepare.load(nf_dev.addresses())
            prepare.load(dev.offsets.addresses(nf))
            prepare.load(dev.offsets.addresses(nf + 1))
            prepare.store(indexes_dev.addresses())
            prepare.store(count_dev.addresses())
            report.add(gpu.run(prepare))

            gather_indices = expanded_indices(indexes_values, count_values)

            # ---- expansion: edge-frontier gather -------------------------------
            if mode is SystemMode.GPU:
                ef_values = graph.edges[gather_indices]
                ef_dev = ctx.array("ef", ef_values)
                gather = KernelSpec(
                    "bfs.expand.gather",
                    PhaseKind.COMPACTION,
                    threads=ef_values.size,
                    instructions_per_thread=KERNEL_COSTS["expand.gather"],
                    extra_instructions=int(SCAN_OVERHEAD_PER_ELEMENT * nf.size),
                    memory_efficiency=COMPACTION_MEMORY_EFFICIENCY,
                    extra_overhead_s=compaction_sync_overhead_s(gpu.config),
                )
                gather.load(indexes_dev.addresses())
                gather.load(count_dev.addresses())
                gather.load(dev.edges.addresses(gather_indices))
                gather.store(ef_dev.addresses())
                dev.add_scan_traffic(gather, nf.size)
                report.add(gpu.run(gather))
            elif mode is SystemMode.SCU_BASIC:
                ef_dev, phase = system.scu.access_expansion_compaction(
                    dev.edges, indexes_dev, count_dev, out="ef"
                )
                report.add(phase)
            else:  # SCU_ENHANCED, Algorithm 4: filtering pass + filtered gather
                ef_raw = graph.edges[gather_indices]
                scratch = ctx.array("ef.ids", ef_raw)
                pass_streams = [
                    sequential_read(indexes_dev, role="indexes"),
                    sequential_read(count_dev, role="count"),
                    gather_read(dev.edges, gather_indices),
                ]
                filter_mask, phase = system.scu.filter_unique_pass(
                    scratch, input_streams=pass_streams, out="ef.filter"
                )
                report.add(phase)
                ef_dev, phase = system.scu.access_expansion_compaction(
                    dev.edges,
                    indexes_dev,
                    count_dev,
                    element_bitmask=filter_mask,
                    out="ef",
                )
                report.add(phase)

            ef = np.asarray(ef_dev.values, dtype=np.int64)
            tracer.counter("frontier.edges", edges=ef.size)
            if ef.size == 0:
                nf_dev = ctx.array("nf", np.empty(0, dtype=np.int64))
                continue

            # ---- contraction: label test + culling on the GPU (all modes) ------
            unvisited = labels[ef] == UNREACHED
            keep = (
                unvisited
                & warp_cull(ef)
                & best_effort_cull(ef)
            )
            mask_dev = ctx.bitmask("contract.mask", keep)
            newly_visited = ef[keep]
            process = KernelSpec(
                "bfs.contract.process",
                PhaseKind.PROCESSING,
                threads=ef.size,
                instructions_per_thread=KERNEL_COSTS["contract.process"],
            )
            process.load(ef_dev.addresses())
            process.load(dev.node_data.addresses(ef))  # divergent label lookups
            process.store(dev.node_data.addresses(newly_visited))
            process.store(mask_dev.addresses())
            report.add(gpu.run(process))
            labels[newly_visited] = depth

            # ---- contraction: node-frontier compaction --------------------------
            if mode is SystemMode.GPU:
                nf_values = ef[keep]
                nf_dev = ctx.array("nf", nf_values)
                compact = KernelSpec(
                    "bfs.contract.compact",
                    PhaseKind.COMPACTION,
                    threads=ef.size,
                    instructions_per_thread=KERNEL_COSTS["contract.compact"],
                    extra_instructions=int(SCAN_OVERHEAD_PER_ELEMENT * ef.size),
                    memory_efficiency=COMPACTION_MEMORY_EFFICIENCY,
                    extra_overhead_s=compaction_sync_overhead_s(gpu.config),
                )
                compact.load(ef_dev.addresses())
                compact.load(mask_dev.addresses())
                compact.store(nf_dev.addresses())
                dev.add_scan_traffic(compact, ef.size)
                report.add(gpu.run(compact))
            elif mode is SystemMode.SCU_BASIC:
                nf_dev, phase = system.scu.data_compaction(ef_dev, mask_dev, out="nf")
                report.add(phase)
            else:  # SCU_ENHANCED: extra hash-filter pass (lossy GPU cull leftovers)
                filter_mask, phase = system.scu.filter_unique_pass(ef_dev, out="nf.filter")
                report.add(phase)
                combined = ctx.bitmask("contract.mask+filter", keep & filter_mask.values)
                nf_dev, phase = system.scu.data_compaction(ef_dev, combined, out="nf")
                report.add(phase)
    else:
        raise SimulationError("BFS failed to converge within the iteration budget")

    return labels.copy(), finalize_report(report, system)
