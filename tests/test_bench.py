"""Tests for the benchmark regression harness (repro.bench)."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchArtifact,
    BenchRecord,
    SimMetrics,
    WallStats,
    collect_provenance,
    compare_artifacts,
    evaluate_expectations,
)
from repro.bench.scoreboard import STATUS_FAIL, STATUS_PASS, STATUS_SKIP
from repro.errors import BenchError
from repro.harness import ExperimentResult
from repro.mem.hierarchy import MemoryStats
from repro.phases import Engine, PhaseKind, PhaseReport, RunReport


def make_report() -> RunReport:
    report = RunReport(algorithm="bfs", system="scu-enhanced", dataset="kron")
    report.add(
        PhaseReport(
            name="contract",
            engine=Engine.GPU,
            kind=PhaseKind.PROCESSING,
            elements=100,
            instructions=1000,
            time_s=0.002,
            dynamic_energy_j=0.01,
            memory=MemoryStats(
                accesses=400, transactions=100, dram_accesses=50, dram_bytes=1600
            ),
        )
    )
    report.add(
        PhaseReport(
            name="filter",
            engine=Engine.SCU,
            kind=PhaseKind.COMPACTION,
            elements=100,
            instructions=200,
            time_s=0.001,
            dynamic_energy_j=0.002,
            memory=MemoryStats(
                accesses=100, transactions=25, dram_accesses=10, dram_bytes=320
            ),
        )
    )
    report.static_energy_j = 0.005
    return report


def make_record(**overrides) -> BenchRecord:
    sim = SimMetrics.from_report(make_report(), gpu_clock_hz=1e9)
    if "sim" in overrides:
        sim_fields = sim.as_dict()
        sim_fields.update(overrides.pop("sim"))
        sim = SimMetrics(**sim_fields)
    fields = dict(
        algorithm="bfs",
        dataset="kron",
        gpu="TX1",
        mode="scu-enhanced",
        effective_mode="scu-enhanced",
        wall=WallStats.from_samples([0.10, 0.12, 0.11]),
        sim=sim,
    )
    fields.update(overrides)
    return BenchRecord(**fields)


def make_artifact(records, tag="test") -> BenchArtifact:
    return BenchArtifact(
        tag=tag,
        grid={"quick": True},
        provenance=collect_provenance(),
        records=list(records),
    )


class TestWallStats:
    def test_statistics(self):
        stats = WallStats.from_samples([0.4, 0.1, 0.3, 0.2])
        assert stats.reps == 4
        assert stats.min_s == 0.1
        assert stats.median_s == pytest.approx(0.25)
        assert stats.mean_s == pytest.approx(0.25)
        assert stats.iqr_s > 0.0

    def test_single_sample_degenerates(self):
        stats = WallStats.from_samples([0.5])
        assert stats.reps == 1
        assert stats.min_s == stats.median_s == stats.mean_s == 0.5
        assert stats.iqr_s == 0.0

    def test_empty_rejected(self):
        with pytest.raises(BenchError, match="at least one sample"):
            WallStats.from_samples([])

    def test_warmup_recorded_but_excluded_from_stats(self):
        stats = WallStats.from_samples([0.1, 0.1], warmup_s=5.0)
        assert stats.warmup_s == 5.0
        assert stats.reps == 2
        assert stats.min_s == stats.mean_s == 0.1  # warmup not pooled

    def test_warmup_defaults_to_none(self):
        assert WallStats.from_samples([0.1]).warmup_s is None


class TestSimMetrics:
    def test_from_report(self):
        sim = SimMetrics.from_report(make_report(), gpu_clock_hz=1e9)
        assert sim.sim_time_s == pytest.approx(0.003)
        assert sim.gpu_time_s == pytest.approx(0.002)
        assert sim.scu_time_s == pytest.approx(0.001)
        assert sim.gpu_cycles == pytest.approx(2e6)
        assert sim.total_energy_j == pytest.approx(0.017)
        assert sim.static_energy_j == pytest.approx(0.005)
        assert sim.instructions == 1200
        assert sim.gpu_instructions == 1000
        assert sim.dram_bytes == 1920
        assert sim.dram_transactions == 60
        assert sim.mem_transactions == 125
        assert sim.compaction_fraction == pytest.approx(1 / 3)

    def test_empty_report_has_null_fraction(self):
        sim = SimMetrics.from_report(
            RunReport(algorithm="bfs", system="gpu", dataset="kron"),
            gpu_clock_hz=1e9,
        )
        assert sim.compaction_fraction is None


class TestArtifactRoundTrip:
    def test_save_load(self, tmp_path):
        artifact = make_artifact([make_record()])
        artifact.metrics = [
            {"metric": "m", "kind": "counter", "labels": "", "value": 1.0}
        ]
        artifact.scoreboard = {
            "columns": ["expectation"], "rows": [["x"]],
            "passed": 1, "failed": 0, "skipped": 0,
        }
        path = artifact.save(tmp_path / "BENCH_test.json")
        loaded = BenchArtifact.load(path)
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.tag == "test"
        assert loaded.records == artifact.records
        assert loaded.metrics == artifact.metrics
        assert loaded.scoreboard == artifact.scoreboard
        assert loaded.provenance["git_sha"] == artifact.provenance["git_sha"]

    def test_null_compaction_fraction_round_trips(self, tmp_path):
        record = make_record(sim={"compaction_fraction": None})
        path = make_artifact([record]).save(tmp_path / "a.json")
        assert "NaN" not in path.read_text()
        loaded = BenchArtifact.load(path)
        assert loaded.records[0].sim.compaction_fraction is None

    def test_warmup_round_trips(self, tmp_path):
        record = make_record(
            wall=WallStats.from_samples([0.1, 0.1], warmup_s=0.7)
        )
        path = make_artifact([record]).save(tmp_path / "w.json")
        loaded = BenchArtifact.load(path)
        assert loaded.records[0].wall.warmup_s == 0.7

    def test_pre_warmup_artifact_loads_with_none(self, tmp_path):
        # Artifacts written before the warmup_s field existed have no
        # such key; they must keep loading (same schema version).
        payload = make_artifact([make_record()]).to_dict()
        del payload["records"][0]["wall"]["warmup_s"]
        path = tmp_path / "old.json"
        path.write_text(json.dumps(payload))
        loaded = BenchArtifact.load(path)
        assert loaded.records[0].wall.warmup_s is None

    def test_wrong_schema_version_rejected(self, tmp_path):
        payload = make_artifact([make_record()]).to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchError, match="schema version"):
            BenchArtifact.load(path)

    def test_malformed_record_rejected(self, tmp_path):
        payload = make_artifact([make_record()]).to_dict()
        del payload["records"][0]["sim"]["total_energy_j"]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchError, match="record 0"):
            BenchArtifact.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(BenchError, match="no such artifact"):
            BenchArtifact.load(tmp_path / "absent.json")

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{nope")
        with pytest.raises(BenchError, match="not a valid artifact"):
            BenchArtifact.load(path)


class TestCompare:
    def test_identical_artifacts_pass(self):
        base = make_artifact([make_record()])
        report = compare_artifacts(base, make_artifact([make_record()]))
        assert report.ok
        assert report.cells_compared == 1
        assert "verdict: OK" in "\n".join(report.table().notes)

    def test_sim_drift_is_a_regression_in_both_directions(self):
        base = make_artifact([make_record()])
        for factor in (0.5, 1.5):
            current = make_artifact(
                [make_record(sim={"total_energy_j": 0.017 * factor})]
            )
            report = compare_artifacts(base, current)
            assert not report.ok
            (finding,) = report.regressions
            assert finding.verdict == "SIM-DRIFT"
            assert finding.metric == "total_energy_j"

    def test_sim_tolerance_absorbs_tiny_drift(self):
        base = make_artifact([make_record()])
        current = make_artifact(
            [make_record(sim={"total_energy_j": 0.017 * (1 + 1e-9)})]
        )
        assert not compare_artifacts(base, current).ok
        assert compare_artifacts(base, current, sim_rtol=1e-6).ok

    def test_wall_regression_beyond_threshold(self):
        base = make_artifact([make_record()])
        slow = make_record(wall=WallStats.from_samples([0.30, 0.33, 0.31]))
        report = compare_artifacts(
            base, make_artifact([slow]), wall_tolerance_pct=50.0
        )
        assert not report.ok
        (finding,) = report.regressions
        assert finding.verdict == "WALL-REGRESSION"
        assert finding.metric == "wall.median_s"

    def test_wall_speedup_is_an_improvement_not_a_regression(self):
        base = make_artifact([make_record()])
        fast = make_record(wall=WallStats.from_samples([0.01, 0.012, 0.011]))
        report = compare_artifacts(base, make_artifact([fast]))
        assert report.ok
        assert len(report.improvements) == 1

    def test_nonpositive_tolerance_disables_wall_gating(self):
        base = make_artifact([make_record()])
        slow = make_record(wall=WallStats.from_samples([9.0]))
        report = compare_artifacts(
            base, make_artifact([slow]), wall_tolerance_pct=0.0
        )
        assert report.ok

    def test_missing_cell_is_a_regression(self):
        base = make_artifact([make_record(), make_record(dataset="human")])
        report = compare_artifacts(base, make_artifact([make_record()]))
        assert not report.ok
        (finding,) = report.regressions
        assert finding.verdict == "MISSING"
        assert "human" in finding.cell

    def test_new_cells_are_informational(self):
        base = make_artifact([make_record()])
        current = make_artifact([make_record(), make_record(dataset="human")])
        report = compare_artifacts(base, current)
        assert report.ok
        assert report.cells_added == 1


class TestScoreboardEvaluation:
    """evaluate_expectations is pure — test it on synthetic results."""

    @staticmethod
    def fig12(avg: float, per_dataset: float = 20.0) -> ExperimentResult:
        result = ExperimentResult(
            "fig12", "grouping", ("dataset", "improvement_pct")
        )
        result.add_row("delaunay", per_dataset)
        result.add_row("AVG", avg)
        return result

    def status_of(self, table: ExperimentResult, expectation_id: str) -> str:
        for row in table.rows:
            if row[0] == expectation_id:
                return row[-1]
        raise AssertionError(f"{expectation_id} not in scoreboard")

    def test_pass_and_skip(self):
        table = evaluate_expectations({"fig12": self.fig12(avg=20.0)})
        assert self.status_of(table, "fig12.coalescing_improvement.avg") == STATUS_PASS
        assert self.status_of(table, "fig12.coalescing_improvement.min") == STATUS_PASS
        # experiments that were not run are skipped, not failed
        assert self.status_of(table, "headline.speedup.TX1") == STATUS_SKIP

    def test_out_of_band_value_fails(self):
        table = evaluate_expectations({"fig12": self.fig12(avg=5.0)})
        assert self.status_of(table, "fig12.coalescing_improvement.avg") == STATUS_FAIL

    def test_summary_note_counts(self):
        table = evaluate_expectations({"fig12": self.fig12(avg=20.0)})
        assert any("2 pass" in note for note in table.notes)
