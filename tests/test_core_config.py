"""Tests for SCU configuration, area model, and Tables 1-2 rendering."""

import pytest

from repro.core import SCU_CONFIGS, SCU_GTX980, SCU_TX1, HashTableConfig, ScuConfig
from repro.core.energy import scu_static_power_w
from repro.errors import ConfigError
from repro.gpu import GTX980, TX1


class TestTable1:
    def test_buffer_sizes(self):
        for config in (SCU_GTX980, SCU_TX1):
            assert config.vector_buffer_bytes == 5 * 1024
            assert config.fifo_request_buffer_bytes == 38 * 1024
            assert config.hash_request_buffer_bytes == 18 * 1024

    def test_coalescer_parameters(self):
        assert SCU_GTX980.coalescer_inflight == 32
        assert SCU_GTX980.coalescer_merge_window == 4

    def test_frequencies_match_gpus(self):
        assert SCU_GTX980.clock_hz == GTX980.clock_hz
        assert SCU_TX1.clock_hz == TX1.clock_hz

    def test_render(self):
        rows = dict(SCU_GTX980.describe_table1())
        assert rows["Technology, Frequency"] == "32 nm, 1.27GHz"
        assert rows["Coalescing Unit"] == "32 in-flight requests, 4-merge"


class TestTable2:
    def test_pipeline_widths(self):
        assert SCU_GTX980.pipeline_width == 4
        assert SCU_TX1.pipeline_width == 1

    def test_hash_sizes_gtx980(self):
        assert SCU_GTX980.filter_bfs_hash.capacity_bytes == 1024 * 1024
        assert SCU_GTX980.filter_sssp_hash.capacity_bytes == 1536 * 1024

    def test_hash_sizes_tx1(self):
        assert SCU_TX1.filter_bfs_hash.capacity_bytes == 132 * 1024
        assert SCU_TX1.grouping_hash.capacity_bytes == 144 * 1024

    def test_entry_sizes(self):
        assert SCU_TX1.filter_bfs_hash.bytes_per_entry == 4  # unique id
        assert SCU_TX1.filter_sssp_hash.bytes_per_entry == 8  # id + cost
        assert SCU_TX1.grouping_hash.bytes_per_entry == 32  # 8 x 4B group

    def test_render(self):
        rows = dict(SCU_GTX980.describe_table2())
        assert rows["Pipeline Width"] == "4 elements/cycle"
        assert rows["Filtering BFS Hash"] == "1 MB, 16-way, 4 bytes/line"
        assert dict(SCU_TX1.describe_table2())["Filtering BFS Hash"] == (
            "132 KB, 16-way, 4 bytes/line"
        )


class TestAreaModel:
    def test_paper_synthesis_points(self):
        """Section 6.4: 13.27 mm2 (GTX980) and 3.65 mm2 (TX1)."""
        assert SCU_GTX980.area_mm2 == pytest.approx(13.27, abs=0.01)
        assert SCU_TX1.area_mm2 == pytest.approx(3.65, abs=0.01)

    def test_paper_overhead_percentages(self):
        """Section 6.4: 3.3 % and 4.1 % of total area."""
        hp = SCU_GTX980.area_overhead_fraction(GTX980.die_area_mm2)
        lp = SCU_TX1.area_overhead_fraction(TX1.die_area_mm2)
        assert hp == pytest.approx(0.033, abs=0.003)
        assert lp == pytest.approx(0.041, abs=0.003)

    def test_area_monotone_in_width(self):
        widths = [SCU_TX1.with_pipeline_width(w).area_mm2 for w in (1, 2, 4, 8)]
        assert widths == sorted(widths)

    def test_bad_die_area_rejected(self):
        with pytest.raises(ConfigError):
            SCU_TX1.area_overhead_fraction(0)

    def test_static_power_scales_with_area(self):
        assert scu_static_power_w(SCU_TX1) < scu_static_power_w(SCU_GTX980)


class TestVariants:
    def test_with_pipeline_width(self):
        wide = SCU_TX1.with_pipeline_width(8)
        assert wide.pipeline_width == 8
        assert wide.filter_bfs_hash == SCU_TX1.filter_bfs_hash

    def test_with_hash_scale(self):
        scaled = SCU_GTX980.with_hash_scale(0.5)
        assert scaled.filter_bfs_hash.capacity_bytes == 512 * 1024
        assert scaled.pipeline_width == SCU_GTX980.pipeline_width

    def test_hash_scale_never_drops_to_zero(self):
        scaled = SCU_TX1.with_hash_scale(1e-9)
        assert scaled.filter_bfs_hash.num_entries >= 1

    def test_elements_per_second(self):
        assert SCU_GTX980.elements_per_second == pytest.approx(4 * 1.27e9)


class TestValidation:
    def test_bad_pipeline_width(self):
        with pytest.raises(ConfigError):
            SCU_TX1.with_pipeline_width(0)

    def test_bad_hash_geometry(self):
        with pytest.raises(ConfigError):
            HashTableConfig("bad", capacity_bytes=10, ways=1, bytes_per_entry=4)

    def test_registry(self):
        assert set(SCU_CONFIGS) == {"GTX980", "TX1"}
