"""Tests for the exact cache simulator and the analytic locality model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem import (
    LocalityProfile,
    SetAssociativeCache,
    estimate_hit_rate,
    estimate_hits,
    profile_lines,
)


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(capacity_bytes=1024, line_bytes=64, ways=2)
        assert cache.access_line(5) is False
        assert cache.access_line(5) is True
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_within_set(self):
        # 2-way cache with 2 sets: lines 0, 2, 4 all map to set 0.
        cache = SetAssociativeCache(capacity_bytes=256, line_bytes=64, ways=2)
        cache.access_line(0)
        cache.access_line(2)
        cache.access_line(4)  # evicts line 0 (LRU)
        assert cache.access_line(2) is True
        assert cache.access_line(0) is False
        assert cache.stats.evictions >= 1

    def test_lru_updated_on_hit(self):
        cache = SetAssociativeCache(capacity_bytes=256, line_bytes=64, ways=2)
        cache.access_line(0)
        cache.access_line(2)
        cache.access_line(0)  # refresh 0; now 2 is LRU
        cache.access_line(4)  # evicts 2
        assert cache.access_line(0) is True
        assert cache.access_line(2) is False

    def test_working_set_fits_entirely(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 1024, line_bytes=64, ways=16)
        lines = np.arange(256)
        cache.access_lines(lines)
        hits = cache.access_lines(lines)
        assert hits == 256

    def test_streaming_never_hits(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        hits = cache.access_lines(np.arange(10_000))
        assert hits == 0

    def test_access_addresses_converts_to_lines(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        cache.access_addresses(np.array([0, 4, 8]))  # same 64-B line
        assert cache.stats.hits == 2

    def test_reset(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        cache.access_line(1)
        cache.reset()
        assert cache.resident_lines == 0
        assert cache.stats.accesses == 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(capacity_bytes=100, line_bytes=64, ways=3)

    def test_nonpositive_params_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(capacity_bytes=0, line_bytes=64, ways=2)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(capacity_bytes=3 * 64 * 2, line_bytes=64, ways=2)


class TestLocalityProfile:
    def test_profile_counts_unique(self):
        profile = profile_lines(np.array([1, 1, 2, 3, 3, 3]))
        assert profile.accesses == 6
        assert profile.unique_lines == 3
        assert profile.reuses == 3

    def test_empty_profile(self):
        profile = profile_lines(np.array([], dtype=np.int64))
        assert profile.accesses == 0
        assert estimate_hit_rate(profile, 1024, 64) == 0.0

    def test_fitting_working_set_hits_all_reuses(self):
        profile = LocalityProfile(accesses=1000, unique_lines=10)
        rate = estimate_hit_rate(profile, capacity_bytes=64 * 1024, line_bytes=64)
        assert rate == pytest.approx(990 / 1000)

    def test_oversized_working_set_scales_down(self):
        # Working set 4x capacity: ~1/4 of reuses hit.
        profile = LocalityProfile(accesses=2000, unique_lines=1000)
        rate = estimate_hit_rate(profile, capacity_bytes=250 * 64, line_bytes=64)
        assert rate == pytest.approx((1000 * 0.25) / 2000, rel=0.01)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            estimate_hit_rate(LocalityProfile(1, 1), 0, 64)


class TestEstimatorAgainstSimulator:
    """The analytic model must track the exact simulator across regimes."""

    @pytest.mark.parametrize(
        "unique_lines,capacity_lines",
        [(64, 256), (256, 256), (512, 256), (2048, 256)],
    )
    def test_uniform_reuse_stream(self, unique_lines, capacity_lines):
        rng = np.random.default_rng(7)
        lines = rng.integers(0, unique_lines, size=20_000)
        cache = SetAssociativeCache(
            capacity_bytes=capacity_lines * 64, line_bytes=64, ways=16
        )
        simulated_hits = cache.access_lines(lines)
        estimated = estimate_hits(lines, capacity_lines * 64, 64)
        # Within 10 percentage points of hit rate across all regimes.
        assert abs(simulated_hits - estimated) / lines.size < 0.10

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_estimate_never_exceeds_reuses(self, unique):
        rng = np.random.default_rng(unique)
        lines = rng.integers(0, unique, size=2000)
        profile = profile_lines(lines)
        hits = estimate_hits(lines, 128 * 64, 64)
        assert hits <= profile.reuses
