"""Tests for the exact cache simulator and the analytic locality model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SimulationError
from repro.mem import (
    LocalityProfile,
    SetAssociativeCache,
    estimate_hit_rate,
    estimate_hits,
    profile_lines,
)
from repro.mem.coalescer import SECTOR_BYTES, coalesce_stream


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(capacity_bytes=1024, line_bytes=64, ways=2)
        assert cache.access_line(5) is False
        assert cache.access_line(5) is True
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_within_set(self):
        # 2-way cache with 2 sets: lines 0, 2, 4 all map to set 0.
        cache = SetAssociativeCache(capacity_bytes=256, line_bytes=64, ways=2)
        cache.access_line(0)
        cache.access_line(2)
        cache.access_line(4)  # evicts line 0 (LRU)
        assert cache.access_line(2) is True
        assert cache.access_line(0) is False
        assert cache.stats.evictions >= 1

    def test_lru_updated_on_hit(self):
        cache = SetAssociativeCache(capacity_bytes=256, line_bytes=64, ways=2)
        cache.access_line(0)
        cache.access_line(2)
        cache.access_line(0)  # refresh 0; now 2 is LRU
        cache.access_line(4)  # evicts 2
        assert cache.access_line(0) is True
        assert cache.access_line(2) is False

    def test_working_set_fits_entirely(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 1024, line_bytes=64, ways=16)
        lines = np.arange(256)
        cache.access_lines(lines)
        hits = cache.access_lines(lines)
        assert hits == 256

    def test_streaming_never_hits(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        hits = cache.access_lines(np.arange(10_000))
        assert hits == 0

    def test_access_addresses_converts_to_lines(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        cache.access_addresses(np.array([0, 4, 8]))  # same 64-B line
        assert cache.stats.hits == 2

    def test_reset(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        cache.access_line(1)
        cache.reset()
        assert cache.resident_lines == 0
        assert cache.stats.accesses == 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(capacity_bytes=100, line_bytes=64, ways=3)

    def test_nonpositive_params_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(capacity_bytes=0, line_bytes=64, ways=2)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(capacity_bytes=3 * 64 * 2, line_bytes=64, ways=2)


class TestBatchedMatchesScalar:
    """access_lines must be behaviorally identical to per-line access_line."""

    @staticmethod
    def replay_scalar(cache: SetAssociativeCache, lines: np.ndarray) -> int:
        return sum(cache.access_line(int(line)) for line in lines)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_random_streams(self, seed):
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, 64, size=500)
        scalar = SetAssociativeCache(capacity_bytes=2048, line_bytes=64, ways=2)
        batched = SetAssociativeCache(capacity_bytes=2048, line_bytes=64, ways=2)
        scalar_hits = self.replay_scalar(scalar, lines)
        batched_hits = batched.access_lines(lines)
        assert batched_hits == scalar_hits
        assert vars(batched.stats) == vars(scalar.stats)
        # residency is identical too: any future probe behaves the same
        probes = rng.integers(0, 64, size=100)
        assert batched.access_lines(probes) == self.replay_scalar(scalar, probes)

    def test_interleaved_batched_and_scalar_calls(self):
        lines = np.array([0, 2, 4, 2, 0, 6, 4, 0])
        a = SetAssociativeCache(capacity_bytes=256, line_bytes=64, ways=2)
        b = SetAssociativeCache(capacity_bytes=256, line_bytes=64, ways=2)
        a.access_lines(lines[:4])
        for line in lines[4:]:
            a.access_line(int(line))
        b_hits = self.replay_scalar(b, lines)
        assert a.stats.hits == b_hits
        assert vars(a.stats) == vars(b.stats)

    def test_empty_batch_is_a_no_op(self):
        cache = SetAssociativeCache(capacity_bytes=256, line_bytes=64, ways=2)
        assert cache.access_lines(np.array([], dtype=np.int64)) == 0
        assert cache.stats.accesses == 0


class TestMatrixReplayMatchesReference:
    """The across-set matrix replay is pinned byte-identical — tags,
    ages, way placement, and stats — to ``access_lines_reference``."""

    @staticmethod
    def assert_equivalent(lines, *, calls=1, ways=2, capacity=2048):
        vec = SetAssociativeCache(capacity_bytes=capacity, line_bytes=64, ways=ways)
        ref = SetAssociativeCache(capacity_bytes=capacity, line_bytes=64, ways=ways)
        for _ in range(calls):
            assert vec.access_lines(lines) == ref.access_lines_reference(lines)
        assert np.array_equal(vec._tags, ref._tags)
        assert np.array_equal(vec._ages, ref._ages)
        assert vars(vec.stats) == vars(ref.stats)
        assert vec._clock == ref._clock

    def test_empty(self):
        self.assert_equivalent(np.array([], dtype=np.int64))

    def test_single_element(self):
        self.assert_equivalent(np.array([42], dtype=np.int64))

    def test_all_same_set_collisions(self):
        # num_sets = 16: every multiple of 16 maps to set 0, with more
        # distinct lines than ways — continuous thrash in one set.
        lines = (np.arange(200) % 5) * 16
        self.assert_equivalent(lines)

    def test_all_same_line(self):
        self.assert_equivalent(np.full(100, 7, dtype=np.int64))

    def test_repeated_calls_share_state(self):
        rng = np.random.default_rng(17)
        self.assert_equivalent(rng.integers(0, 64, size=300), calls=3)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_fuzz(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 400))
        span = int(rng.choice([8, 64, 4096]))
        ways = int(rng.choice([1, 2, 8]))
        self.assert_equivalent(
            rng.integers(0, span, size=n), ways=ways, capacity=64 * 64 * ways
        )


class TestSectorToLineGranularity:
    """CoalesceResult sector ids vs wider cache lines (the 32 B/128 B bug)."""

    @staticmethod
    def result_for(addresses):
        return coalesce_stream(np.asarray(addresses, dtype=np.int64))

    def test_identity_when_granularities_match(self):
        result = self.result_for([0, 32, 64])
        assert np.array_equal(
            result.cache_line_ids(SECTOR_BYTES), result.line_ids
        )

    def test_sectors_collapse_into_wider_lines(self):
        # 32 consecutive sectors = 1024 B = exactly eight 128 B lines.
        result = self.result_for(np.arange(32) * SECTOR_BYTES)
        line_ids = result.cache_line_ids(128)
        assert result.line_ids.size == 32
        assert len(np.unique(line_ids)) == 8

    def test_narrower_or_misaligned_lines_rejected(self):
        result = self.result_for([0, 32])
        with pytest.raises(SimulationError):
            result.cache_line_ids(16)
        with pytest.raises(SimulationError):
            result.cache_line_ids(48)

    def test_access_coalesced_pins_hit_rate(self):
        # Regression pin: sector ids fed into a 128 B-line cache used to
        # be treated as line ids, spreading one line's sectors over four
        # distinct lines (4x the working set, zero sector-local reuse).
        result = self.result_for(np.arange(32) * SECTOR_BYTES)
        cache = SetAssociativeCache(
            capacity_bytes=4096, line_bytes=128, ways=4
        )
        hits = cache.access_coalesced(result)
        # 8 distinct 128 B lines, 4 sectors each: 8 cold misses, 24 hits.
        assert hits == 24
        assert cache.stats.accesses == 32
        assert cache.stats.hit_rate == pytest.approx(0.75)
        # The buggy path (raw sector ids) would have been all misses.
        buggy = SetAssociativeCache(
            capacity_bytes=4096, line_bytes=128, ways=4
        )
        assert buggy.access_lines(result.line_ids) == 0


class TestLocalityProfile:
    def test_profile_counts_unique(self):
        profile = profile_lines(np.array([1, 1, 2, 3, 3, 3]))
        assert profile.accesses == 6
        assert profile.unique_lines == 3
        assert profile.reuses == 3

    def test_empty_profile(self):
        profile = profile_lines(np.array([], dtype=np.int64))
        assert profile.accesses == 0
        assert estimate_hit_rate(profile, 1024, 64) == 0.0

    def test_fitting_working_set_hits_all_reuses(self):
        profile = LocalityProfile(accesses=1000, unique_lines=10)
        rate = estimate_hit_rate(profile, capacity_bytes=64 * 1024, line_bytes=64)
        assert rate == pytest.approx(990 / 1000)

    def test_oversized_working_set_scales_down(self):
        # Working set 4x capacity: ~1/4 of reuses hit.
        profile = LocalityProfile(accesses=2000, unique_lines=1000)
        rate = estimate_hit_rate(profile, capacity_bytes=250 * 64, line_bytes=64)
        assert rate == pytest.approx((1000 * 0.25) / 2000, rel=0.01)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            estimate_hit_rate(LocalityProfile(1, 1), 0, 64)


class TestEstimatorAgainstSimulator:
    """The analytic model must track the exact simulator across regimes."""

    @pytest.mark.parametrize(
        "unique_lines,capacity_lines",
        [(64, 256), (256, 256), (512, 256), (2048, 256)],
    )
    def test_uniform_reuse_stream(self, unique_lines, capacity_lines):
        rng = np.random.default_rng(7)
        lines = rng.integers(0, unique_lines, size=20_000)
        cache = SetAssociativeCache(
            capacity_bytes=capacity_lines * 64, line_bytes=64, ways=16
        )
        simulated_hits = cache.access_lines(lines)
        estimated = estimate_hits(lines, capacity_lines * 64, 64)
        # Within 10 percentage points of hit rate across all regimes.
        assert abs(simulated_hits - estimated) / lines.size < 0.10

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_estimate_never_exceeds_reuses(self, unique):
        rng = np.random.default_rng(unique)
        lines = rng.integers(0, unique, size=2000)
        profile = profile_lines(lines)
        hits = estimate_hits(lines, 128 * 64, 64)
        assert hits <= profile.reuses
