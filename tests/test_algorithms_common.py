"""Tests for the shared algorithm machinery: culls, runner, phases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    ALGORITHM_NAMES,
    SystemMode,
    cached_run,
    clear_run_cache,
    pick_source,
    run_algorithm,
    warp_cull,
)
from repro.algorithms.common import best_effort_cull
from repro.errors import ExperimentError
from repro.graph import build_csr
from repro.graph.generators import generate_kron
from repro.phases import Engine, PhaseKind, PhaseReport, RunReport
from repro.mem import MemoryStats


class TestWarpCull:
    def test_within_window_duplicates_dropped(self):
        ids = np.array([7, 7, 8, 7])
        keep = warp_cull(ids, window=32)
        assert list(keep) == [True, False, True, False]

    def test_across_window_duplicates_survive(self):
        ids = np.concatenate([np.array([7]), np.zeros(31, dtype=np.int64), np.array([7])])
        keep = warp_cull(ids, window=32)
        assert keep[0] and keep[-1]

    def test_empty(self):
        assert warp_cull(np.array([], dtype=np.int64)).size == 0

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_never_drops_all_copies(self, raw):
        ids = np.asarray(raw, dtype=np.int64)
        keep = warp_cull(ids)
        assert set(ids[keep].tolist()) == set(raw)


class TestBestEffortCull:
    def test_first_copy_always_kept(self):
        ids = np.array([5, 5, 5])
        keep = best_effort_cull(ids)
        assert keep[0]

    def test_history_catches_close_duplicates(self):
        ids = np.array([5, 5])
        keep = best_effort_cull(ids, history=10, visibility=100)
        assert list(keep) == [True, False]

    def test_band_duplicates_survive(self):
        # previous copy 20 positions back: beyond history, within visibility.
        ids = np.zeros(40, dtype=np.int64)
        ids[0] = 5
        ids[20] = 5
        keep = best_effort_cull(ids, history=10, visibility=100)
        assert keep[0] and keep[20]

    def test_bitmask_catches_far_duplicates(self):
        ids = np.zeros(300, dtype=np.int64)
        ids[0] = 5
        ids[250] = 5
        keep = best_effort_cull(ids, history=10, visibility=100)
        assert keep[0] and not keep[250]

    @given(
        st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=300),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=64, max_value=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_never_loses_a_value(self, raw, history, visibility):
        ids = np.asarray(raw, dtype=np.int64)
        keep = best_effort_cull(ids, history=history, visibility=visibility)
        assert set(ids[keep].tolist()) == set(raw)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_wider_history_culls_no_less(self, raw):
        ids = np.asarray(raw, dtype=np.int64)
        narrow = best_effort_cull(ids, history=4, visibility=10_000)
        wide = best_effort_cull(ids, history=64, visibility=10_000)
        assert wide.sum() <= narrow.sum()


class TestRunner:
    def test_unknown_algorithm_raises(self):
        graph = generate_kron(scale=6, edge_factor=4, seed=1)
        with pytest.raises(ExperimentError, match="unknown algorithm"):
            run_algorithm("dijkstra", graph, "TX1", SystemMode.GPU)

    def test_algorithm_names_order(self):
        assert ALGORITHM_NAMES == ("bfs", "sssp", "pagerank")

    def test_cached_run_returns_same_report(self):
        clear_run_cache()
        a = cached_run("bfs", "delaunay", "TX1", SystemMode.GPU)
        b = cached_run("bfs", "delaunay", "TX1", SystemMode.GPU)
        assert a is b
        clear_run_cache()

    def test_pick_source_is_max_degree(self):
        graph = build_csr(3, np.array([1, 1]), np.array([0, 2]))
        assert pick_source(graph) == 1

    def test_memory_scale_affects_costs(self):
        graph = generate_kron(scale=12, edge_factor=8, seed=2)
        scaled = run_algorithm("bfs", graph, "TX1", SystemMode.GPU, memory_scale=64).report
        unscaled = run_algorithm("bfs", graph, "TX1", SystemMode.GPU, memory_scale=1).report
        # A smaller effective L2 pushes the divergent lookups to DRAM.
        assert scaled.memory().dram_accesses > unscaled.memory().dram_accesses
        assert scaled.time_s() >= unscaled.time_s()


class TestRunReport:
    def make(self):
        report = RunReport(algorithm="x", system="gpu", dataset="d")
        report.add(
            PhaseReport(
                "a", Engine.GPU, PhaseKind.COMPACTION, 10, 100, 1.0, 0.5,
                MemoryStats(dram_bytes=64, dram_accesses=2),
            )
        )
        report.add(PhaseReport("b", Engine.SCU, PhaseKind.COMPACTION, 5, 5, 0.5, 0.1))
        report.add(PhaseReport("c", Engine.GPU, PhaseKind.PROCESSING, 10, 50, 0.5, 0.2))
        return report

    def test_time_filters(self):
        report = self.make()
        assert report.time_s() == pytest.approx(2.0)
        assert report.time_s(engine=Engine.GPU) == pytest.approx(1.5)
        assert report.time_s(kind=PhaseKind.COMPACTION) == pytest.approx(1.5)

    def test_compaction_fraction(self):
        assert self.make().compaction_time_fraction() == pytest.approx(0.75)

    def test_total_energy_includes_static(self):
        report = self.make()
        report.static_energy_j = 1.0
        assert report.total_energy_j() == pytest.approx(1.8)

    def test_dram_bytes(self):
        assert self.make().dram_bytes() == 64

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            PhaseReport("bad", Engine.GPU, PhaseKind.PROCESSING, 1, 1, -1.0, 0.0)

    def test_instructions_by_engine(self):
        report = self.make()
        assert report.instructions(engine=Engine.GPU) == 150
        assert report.instructions(engine=Engine.SCU) == 5
