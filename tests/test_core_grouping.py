"""Tests for cache-line grouping: vectorized == sequential reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HashTableConfig, group_order, group_order_reference, grouping_quality
from repro.errors import OperationError

TABLE = HashTableConfig("g", capacity_bytes=1024 * 32, ways=16, bytes_per_entry=32)
TINY_TABLE = HashTableConfig("g-tiny", capacity_bytes=4 * 32, ways=1, bytes_per_entry=32)


class TestGroupOrder:
    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 50, size=500)
        perm = group_order(blocks, TABLE)
        assert np.array_equal(np.sort(perm), np.arange(500))

    def test_same_block_elements_adjacent(self):
        # Interleaved blocks get clustered.
        blocks = np.array([1, 2, 1, 2, 1, 2])
        perm = group_order(blocks, TABLE)
        grouped = blocks[perm]
        # Each block's elements appear contiguously.
        changes = np.count_nonzero(grouped[1:] != grouped[:-1])
        assert changes == 1

    def test_group_size_bounds_runs(self):
        blocks = np.zeros(20, dtype=np.int64)
        perm = group_order(blocks, TABLE, group_size=8)
        # All elements same block: permutation exists, order preserved
        # within groups; flushed groups of 8, 8, 4 keep global order here.
        assert np.array_equal(np.sort(perm), np.arange(20))

    def test_arrival_order_within_group(self):
        blocks = np.array([7, 7, 7])
        perm = group_order(blocks, TABLE)
        assert list(perm) == [0, 1, 2]

    def test_empty(self):
        assert group_order(np.array([], dtype=np.int64), TABLE).size == 0

    def test_bad_group_size_rejected(self):
        with pytest.raises(OperationError):
            group_order(np.array([1]), TABLE, group_size=0)

    def test_2d_rejected(self):
        with pytest.raises(OperationError):
            group_order(np.zeros((2, 2), dtype=np.int64), TABLE)

    @given(
        st.lists(st.integers(min_value=0, max_value=25), min_size=0, max_size=300),
        st.sampled_from([1, 2, 4, 32, 512]),
        st.sampled_from([1, 2, 8]),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_reference(self, raw, entries, group_size):
        table = HashTableConfig("t", capacity_bytes=entries * 32, ways=1, bytes_per_entry=32)
        blocks = np.asarray(raw, dtype=np.int64)
        vec = group_order(blocks, table, group_size=group_size)
        ref = group_order_reference(blocks, table, group_size=group_size)
        assert np.array_equal(vec, ref)


class TestAdversarialEquivalence:
    """Edge cases for the ragged-gather fast path vs the dict reference."""

    @staticmethod
    def assert_equivalent(blocks, table=TABLE, group_size=8):
        blocks = np.asarray(blocks, dtype=np.int64)
        vec = group_order(blocks, table, group_size=group_size)
        ref = group_order_reference(blocks, table, group_size=group_size)
        assert np.array_equal(vec, ref)

    def test_single_element(self):
        self.assert_equivalent([9])

    def test_all_same_slot_different_blocks(self):
        # One-entry table: every block hashes to slot 0, so every block
        # change evicts — the maximal-conflict stream.
        one = HashTableConfig("one", capacity_bytes=32, ways=1, bytes_per_entry=32)
        self.assert_equivalent(np.arange(64) % 7, table=one)

    def test_all_same_block_overflowing_groups(self):
        for group_size in (1, 2, 8):
            self.assert_equivalent(np.zeros(33, dtype=np.int64), group_size=group_size)

    def test_group_size_one(self):
        rng = np.random.default_rng(3)
        self.assert_equivalent(rng.integers(0, 10, size=100), group_size=1)

    @pytest.mark.parametrize("seed", range(12))
    def test_fuzz_fixed_seeds(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 500))
        span = int(rng.choice([1, 4, 64, 10_000]))
        entries = int(rng.choice([1, 2, 16, 1024]))
        table = HashTableConfig(
            "fuzz", capacity_bytes=entries * 32, ways=1, bytes_per_entry=32
        )
        group_size = int(rng.choice([1, 3, 8]))
        self.assert_equivalent(
            rng.integers(0, span, size=n), table=table, group_size=group_size
        )


class TestGroupingImprovesLocality:
    def test_quality_improves_on_shuffled_stream(self):
        rng = np.random.default_rng(1)
        # 64 cache lines, 16 edges each, fully shuffled.
        blocks = rng.permutation(np.repeat(np.arange(64), 16))
        perm = group_order(blocks, TABLE)
        before = grouping_quality(blocks, np.arange(blocks.size))
        after = grouping_quality(blocks, perm)
        assert after > before + 0.3

    def test_tiny_table_degrades_gracefully(self):
        rng = np.random.default_rng(2)
        blocks = rng.permutation(np.repeat(np.arange(64), 16))
        big = grouping_quality(blocks, group_order(blocks, TABLE))
        tiny = grouping_quality(blocks, group_order(blocks, TINY_TABLE))
        assert 0.0 <= tiny <= big

    def test_quality_of_trivial_streams(self):
        assert grouping_quality(np.array([1]), np.array([0])) == 0.0

    def test_already_grouped_stream_unharmed(self):
        blocks = np.repeat(np.arange(16), 8)
        perm = group_order(blocks, TABLE, group_size=8)
        assert grouping_quality(blocks, perm) == pytest.approx(
            grouping_quality(blocks, np.arange(blocks.size))
        )
