"""Tests for the warp and stream coalescing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.mem import (
    SECTOR_BYTES,
    coalesce_stream,
    coalesce_warp,
    gather_addresses,
    sequential_addresses,
)


class TestWarpCoalescer:
    def test_fully_coalesced_warp_is_four_sectors(self):
        # 32 threads x 4-byte elements = 128 bytes = 4 sectors of 32 B.
        addrs = sequential_addresses(32, elem_bytes=4)
        result = coalesce_warp(addrs)
        assert result.transactions == 4
        assert result.coalescing_factor == 8.0

    def test_fully_divergent_warp(self):
        # Each thread hits its own sector: no merging possible.
        addrs = np.arange(32, dtype=np.int64) * SECTOR_BYTES
        result = coalesce_warp(addrs)
        assert result.transactions == 32
        assert result.coalescing_factor == 1.0

    def test_broadcast_warp_is_one_transaction(self):
        addrs = np.zeros(32, dtype=np.int64)
        result = coalesce_warp(addrs)
        assert result.transactions == 1

    def test_partial_last_warp(self):
        addrs = sequential_addresses(40, elem_bytes=4)  # 1 full + 1 partial warp
        result = coalesce_warp(addrs)
        assert result.accesses == 40
        assert result.transactions == 5  # 4 + 1

    def test_empty_stream(self):
        result = coalesce_warp(np.empty(0, dtype=np.int64))
        assert result.transactions == 0
        assert result.coalescing_factor == 0.0
        assert result.bytes_transferred == 0

    def test_active_mask_drops_lanes(self):
        addrs = np.arange(32, dtype=np.int64) * SECTOR_BYTES
        mask = np.zeros(32, dtype=bool)
        mask[:4] = True
        result = coalesce_warp(addrs, active_mask=mask)
        assert result.accesses == 4
        assert result.transactions == 4

    def test_mask_shape_checked(self):
        with pytest.raises(SimulationError):
            coalesce_warp(np.zeros(8, dtype=np.int64), active_mask=np.ones(4, dtype=bool))

    def test_line_ids_have_one_entry_per_transaction(self):
        addrs = sequential_addresses(64, elem_bytes=4)
        result = coalesce_warp(addrs)
        assert result.line_ids.size == result.transactions

    def test_bad_sector_bytes_rejected(self):
        with pytest.raises(SimulationError):
            coalesce_warp(np.zeros(4, dtype=np.int64), sector_bytes=48)

    def test_warps_do_not_merge_across_boundary(self):
        # Same sector touched by two different warps -> two transactions.
        addrs = np.zeros(64, dtype=np.int64)
        result = coalesce_warp(addrs)
        assert result.transactions == 2

    @given(
        st.lists(st.integers(min_value=0, max_value=2**20), min_size=1, max_size=256)
    )
    @settings(max_examples=50, deadline=None)
    def test_transactions_bounded(self, raw):
        addrs = np.asarray(raw, dtype=np.int64) * 4
        result = coalesce_warp(addrs)
        # Never more transactions than accesses; never fewer than ceil(n/32)
        # warps' worth of minimum 1 transaction each.
        assert result.transactions <= result.accesses
        assert result.transactions >= -(-len(raw) // 32)

    @given(st.integers(min_value=1, max_value=1024))
    @settings(max_examples=30, deadline=None)
    def test_sequential_walk_is_optimal(self, count):
        addrs = sequential_addresses(count, elem_bytes=4)
        result = coalesce_warp(addrs)
        sectors_per_warp = 32 * 4 // SECTOR_BYTES
        full, rem = divmod(count, 32)
        expected = full * sectors_per_warp + (-(-rem * 4 // SECTOR_BYTES) if rem else 0)
        assert result.transactions == expected


class TestStreamCoalescer:
    def test_sequential_stream_merges_within_window(self):
        # 8 consecutive 4-byte reads span one 32-B sector; window of 4 can
        # only merge runs of 4, so 8 accesses -> 2 transactions.
        addrs = sequential_addresses(8, elem_bytes=4)
        result = coalesce_stream(addrs, merge_window=4)
        assert result.transactions == 2

    def test_window_one_never_merges(self):
        addrs = np.zeros(16, dtype=np.int64)
        result = coalesce_stream(addrs, merge_window=1)
        assert result.transactions == 16

    def test_large_window_merges_repeats(self):
        addrs = np.zeros(16, dtype=np.int64)
        result = coalesce_stream(addrs, merge_window=32)
        assert result.transactions == 1

    def test_random_stream_rarely_merges(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 30, size=4096) * SECTOR_BYTES
        result = coalesce_stream(addrs, merge_window=4)
        assert result.transactions > 4000

    def test_empty_stream(self):
        result = coalesce_stream(np.empty(0, dtype=np.int64))
        assert result.transactions == 0

    def test_bad_window_rejected(self):
        with pytest.raises(SimulationError):
            coalesce_stream(np.zeros(4, dtype=np.int64), merge_window=0)

    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_wider_window_never_hurts(self, raw, window):
        addrs = np.asarray(raw, dtype=np.int64)
        narrow = coalesce_stream(addrs, merge_window=window)
        wide = coalesce_stream(addrs, merge_window=window + 4)
        assert wide.transactions <= narrow.transactions


class TestAddressHelpers:
    def test_gather_addresses(self):
        addrs = gather_addresses(np.array([0, 10, 5]), base=100, elem_bytes=4)
        assert list(addrs) == [100, 140, 120]

    def test_sequential_rejects_negative(self):
        with pytest.raises(SimulationError):
            sequential_addresses(-1)
