"""Connected Components (extension primitive) correctness and reports."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    SystemMode,
    connected_components_labels,
    connected_components_reference,
    run_algorithm,
)
from repro.graph import build_csr, to_networkx
from repro.graph.generators import (
    generate_collaboration,
    generate_kron,
    generate_road_network,
)
from repro.phases import Engine

GRAPHS = {
    "collab": generate_collaboration(num_authors=700, num_papers=900, seed=41),
    "road": generate_road_network(side=18, seed=42),
    "kron": generate_kron(scale=8, edge_factor=6, seed=43),
}


class TestReference:
    def test_two_components(self):
        graph = build_csr(
            5, np.array([0, 1, 3]), np.array([1, 0, 4]), symmetrize=True
        )
        labels = connected_components_reference(graph)
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[2] == 2  # isolated node keeps its own id

    def test_matches_networkx(self):
        graph = GRAPHS["collab"]
        labels = connected_components_reference(graph)
        undirected = to_networkx(graph).to_undirected()
        for component in nx.connected_components(undirected):
            component = list(component)
            assert len({labels[n] for n in component}) == 1

    def test_labels_are_component_minimum(self):
        graph = GRAPHS["road"]
        labels = connected_components_reference(graph)
        for component in np.unique(labels):
            members = np.nonzero(labels == component)[0]
            assert component == members.min()


class TestVectorizedLabels:
    """Pointer-jumping labels are pinned byte-identical to union-find."""

    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_matches_reference_on_generators(self, graph_name):
        graph = GRAPHS[graph_name]
        assert np.array_equal(
            connected_components_labels(graph),
            connected_components_reference(graph),
        )

    def test_empty_graph(self):
        from repro.graph.csr import CsrGraph

        graph = CsrGraph(
            offsets=np.zeros(1, dtype=np.int64),
            edges=np.array([], dtype=np.int64),
            weights=np.array([], dtype=np.float64),
        )
        assert connected_components_labels(graph).size == 0

    def test_single_node(self):
        graph = build_csr(
            1, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert list(connected_components_labels(graph)) == [0]

    def test_isolated_nodes(self):
        graph = build_csr(
            6, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert np.array_equal(connected_components_labels(graph), np.arange(6))

    def test_long_chain_converges(self):
        # A path graph exercises the pointer-jumping rounds (diameter n).
        n = 513
        sources = np.arange(n - 1)
        targets = np.arange(1, n)
        graph = build_csr(n, sources, targets, symmetrize=True)
        labels = connected_components_labels(graph)
        assert np.array_equal(labels, np.zeros(n, dtype=np.int64))
        assert np.array_equal(labels, connected_components_reference(graph))

    @pytest.mark.parametrize("seed", range(10))
    def test_fuzz_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(1, 80))
        num_edges = int(rng.integers(0, 3 * num_nodes))
        sources = rng.integers(0, num_nodes, size=num_edges)
        targets = rng.integers(0, num_nodes, size=num_edges)
        graph = build_csr(num_nodes, sources, targets, symmetrize=True)
        assert np.array_equal(
            connected_components_labels(graph),
            connected_components_reference(graph),
        )


class TestSimulatedCC:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize("mode", list(SystemMode))
    def test_matches_reference(self, graph_name, mode):
        graph = GRAPHS[graph_name]
        labels = run_algorithm("connected_components", graph, "TX1", mode).result
        assert np.array_equal(labels, connected_components_reference(graph))

    def test_gtx980(self):
        graph = GRAPHS["kron"]
        labels = run_algorithm(
            "connected_components", graph, "GTX980", SystemMode.SCU_ENHANCED
        ).result
        assert np.array_equal(labels, connected_components_reference(graph))

    def test_scu_modes_emit_scu_phases(self):
        report = run_algorithm(
            "connected_components", GRAPHS["collab"], "TX1", SystemMode.SCU_BASIC
        ).report
        assert report.select(engine=Engine.SCU)

    def test_enhanced_filtering_reduces_gpu_work(self):
        graph = GRAPHS["kron"]
        base = run_algorithm("connected_components", graph, "TX1", SystemMode.GPU).report
        enh = run_algorithm(
            "connected_components", graph, "TX1", SystemMode.SCU_ENHANCED
        ).report
        assert enh.instructions(engine=Engine.GPU) < base.instructions(engine=Engine.GPU)

    def test_offload_speeds_up_traversal(self):
        graph = GRAPHS["collab"]
        base = run_algorithm("connected_components", graph, "TX1", SystemMode.GPU).report
        enh = run_algorithm(
            "connected_components", graph, "TX1", SystemMode.SCU_ENHANCED
        ).report
        assert enh.time_s() < base.time_s()

    def test_empty_frontier_terminates_immediately(self):
        graph = build_csr(
            3, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        outcome = run_algorithm(
            "connected_components", graph, "TX1", SystemMode.GPU
        )
        labels = outcome.result
        report = outcome.report
        assert list(labels) == [0, 1, 2]
