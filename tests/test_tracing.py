"""Tests for the distributed-tracing layer (repro.obs.propagation /
repro.obs.spans) and the ops-console render layer (repro.serve.console).

Everything here is process-local and fast: W3C traceparent parsing,
tracer-to-span conversion, the cross-process re-parenting protocol, the
bounded span store, Chrome-trace stitching, and the pure text frames of
``repro top``.  The end-to-end HTTP paths live in test_serve.py; the
forked-worker paths in test_parallel.py.
"""

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import Tracer, make_observability
from repro.obs.propagation import (
    FLAG_SAMPLED,
    TraceContext,
    format_traceparent,
    make_context,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.spans import (
    SIM_SPAN_CATEGORIES,
    SPAN_SCHEMA_VERSION,
    SpanRecord,
    SpanStore,
    count_sim_phase_spans,
    perf_to_epoch_us,
    reparent_spans,
    sanitize_attributes,
    spans_from_tracer,
    spans_to_chrome,
)
from repro.serve.console import (
    Snapshot,
    outcome_mix,
    render_frame,
    slowest_traces,
    stage_quantiles,
)

TRACE_ID = "0af7651916cd43dd8448eb211c80319c"
SPAN_ID = "b7ad6b7169203331"
HEADER = f"00-{TRACE_ID}-{SPAN_ID}-01"


# ---------------------------------------------------------------------------
# W3C traceparent propagation
# ---------------------------------------------------------------------------


class TestPropagation:
    def test_parse_well_formed_header(self):
        context = parse_traceparent(HEADER)
        assert context == TraceContext(TRACE_ID, SPAN_ID, FLAG_SAMPLED)
        assert context.sampled

    def test_format_round_trips(self):
        context = make_context()
        assert parse_traceparent(format_traceparent(context)) == context

    def test_parse_is_case_and_whitespace_tolerant(self):
        context = parse_traceparent(f"  {HEADER.upper()}  ")
        assert context is not None
        assert context.trace_id == TRACE_ID

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "not-a-header",
            f"00-{TRACE_ID}-{SPAN_ID}",  # missing flags
            f"00-{'0' * 32}-{SPAN_ID}-01",  # all-zero trace id
            f"00-{TRACE_ID}-{'0' * 16}-01",  # all-zero span id
            f"00-{TRACE_ID[:-1]}-{SPAN_ID}-01",  # short trace id
            f"00-{TRACE_ID}-{SPAN_ID}-1",  # short flags
            f"00-{TRACE_ID}-{SPAN_ID}-01-extra",  # v00 must have 4 parts
            f"ff-{TRACE_ID}-{SPAN_ID}-01",  # reserved version
            f"0g-{TRACE_ID}-{SPAN_ID}-01",  # non-hex version
            f"00-{'g' * 32}-{SPAN_ID}-01",  # non-hex trace id
        ],
    )
    def test_malformed_headers_return_none(self, header):
        assert parse_traceparent(header) is None

    def test_future_versions_with_wellformed_prefix_accepted(self):
        context = parse_traceparent(f"42-{TRACE_ID}-{SPAN_ID}-01-future-field")
        assert context is not None
        assert context.trace_id == TRACE_ID

    def test_fresh_ids_are_wellformed_and_distinct(self):
        trace_ids = {new_trace_id() for _ in range(32)}
        span_ids = {new_span_id() for _ in range(32)}
        assert len(trace_ids) == 32 and len(span_ids) == 32
        assert all(len(t) == 32 and int(t, 16) != 0 for t in trace_ids)
        assert all(len(s) == 16 and int(s, 16) != 0 for s in span_ids)

    def test_invalid_context_fields_rejected(self):
        with pytest.raises(ValueError):
            TraceContext("short", SPAN_ID)
        with pytest.raises(ValueError):
            TraceContext(TRACE_ID, "0" * 16)
        with pytest.raises(ValueError):
            TraceContext(TRACE_ID, SPAN_ID, flags=300)

    def test_child_keeps_trace_and_flags(self):
        parent = TraceContext(TRACE_ID, SPAN_ID, flags=0x01)
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert child.flags == parent.flags


# ---------------------------------------------------------------------------
# Span records
# ---------------------------------------------------------------------------


def _span(**overrides):
    base = dict(
        trace_id=TRACE_ID,
        span_id=new_span_id(),
        name="test.span",
        start_us=1000.0,
        duration_us=50.0,
    )
    base.update(overrides)
    return SpanRecord(**base)


class TestSpanRecord:
    def test_dict_round_trip(self):
        record = _span(
            parent_id=SPAN_ID,
            category="scu",
            process="worker-7",
            attributes={"k": 1},
            links=[{"trace_id": TRACE_ID, "span_id": SPAN_ID}],
        )
        payload = record.to_dict()
        assert payload["schema_version"] == SPAN_SCHEMA_VERSION
        restored = SpanRecord.from_dict(json.loads(json.dumps(payload)))
        assert restored == record

    def test_unsupported_schema_version_rejected(self):
        payload = _span().to_dict()
        payload["schema_version"] = SPAN_SCHEMA_VERSION + 1
        with pytest.raises(ObservabilityError):
            SpanRecord.from_dict(payload)

    def test_missing_fields_rejected(self):
        payload = _span().to_dict()
        del payload["start_us"]
        with pytest.raises(ObservabilityError):
            SpanRecord.from_dict(payload)

    def test_non_finite_timestamps_rejected(self):
        payload = _span().to_dict()
        payload["duration_us"] = float("nan")
        with pytest.raises(ObservabilityError):
            SpanRecord.from_dict(payload)

    def test_sanitize_attributes_coerces_foreign_objects(self):
        class Mode:
            def __str__(self):
                return "scu-enhanced"

        cleaned = sanitize_attributes(
            {
                "mode": Mode(),
                "nested": {"depth": Mode(), "n": 3},
                "seq": (1, Mode()),
                "inf": math.inf,
                "plain": "ok",
            }
        )
        json.dumps(cleaned)  # must be serializable as-is
        assert cleaned["mode"] == "scu-enhanced"
        assert cleaned["nested"]["depth"] == "scu-enhanced"
        assert cleaned["seq"] == [1, "scu-enhanced"]
        assert cleaned["inf"] == "inf"
        assert cleaned["plain"] == "ok"


class TestSpansFromTracer:
    def test_nesting_becomes_parent_child_tree(self):
        tracer = Tracer()
        with tracer.span("outer", "algorithm"):
            with tracer.span("inner", "gpu-kernel"):
                pass
            tracer.instant("marker", "sim")
        spans = spans_from_tracer(
            tracer,
            trace_id=TRACE_ID,
            parent_id=SPAN_ID,
            base_us=1_000_000.0,
            process="serve",
        )
        by_name = {span.name: span for span in spans}
        assert by_name["outer"].parent_id == SPAN_ID
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["marker"].parent_id == by_name["outer"].span_id
        assert by_name["marker"].duration_us == 0.0
        assert all(span.trace_id == TRACE_ID for span in spans)
        assert all(span.start_us >= 1_000_000.0 for span in spans)
        assert by_name["outer"].end_us >= by_name["inner"].end_us

    def test_counters_are_dropped_and_open_spans_closed(self):
        tracer = Tracer()
        tracer.counter("bytes", value=10)
        handle = tracer.begin("open", "sim")
        tracer.instant("tick", "sim")
        del handle  # never ended: span stays open
        spans = spans_from_tracer(
            tracer, trace_id=TRACE_ID, parent_id=None, base_us=0.0, process="p"
        )
        names = [span.name for span in spans]
        assert "bytes" not in names
        open_span = next(span for span in spans if span.name == "open")
        assert open_span.duration_us >= 0.0

    def test_sim_phase_counting(self):
        spans = [_span(category=c) for c in SIM_SPAN_CATEGORIES]
        spans.append(_span(category="serve"))
        assert count_sim_phase_spans(spans) == len(SIM_SPAN_CATEGORIES)


class TestReparenting:
    def _worker_batch(self):
        """Two-span batch the way a forked worker ships it: trace-less."""
        root = _span(trace_id="", parent_id=None, name="root")
        child = _span(trace_id="", parent_id=root.span_id, name="child")
        return [root.to_dict(), child.to_dict()]

    def test_roots_adopted_and_internal_edges_preserved(self):
        batch = self._worker_batch()
        adopted = reparent_spans(batch, trace_id=TRACE_ID, parent_id=SPAN_ID)
        by_name = {span.name: span for span in adopted}
        assert by_name["root"].parent_id == SPAN_ID
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert all(span.trace_id == TRACE_ID for span in adopted)

    def test_accepts_records_and_does_not_mutate_inputs(self):
        original = _span(trace_id="", parent_id=None)
        (adopted,) = reparent_spans(
            [original], trace_id=TRACE_ID, parent_id=SPAN_ID
        )
        assert adopted.trace_id == TRACE_ID
        assert original.trace_id == ""  # input untouched
        assert original.parent_id is None

    def test_malformed_worker_payload_rejected_with_source(self):
        with pytest.raises(ObservabilityError, match="cell bfs"):
            reparent_spans(
                [{"bogus": True}],
                trace_id=TRACE_ID,
                parent_id=None,
                source="cell bfs",
            )


class TestSpanStore:
    def test_traces_evict_in_insertion_order(self):
        store = SpanStore(max_traces=2)
        for i in range(3):
            store.add([_span(trace_id=f"{i:032x}" if i else "f" * 32)])
        assert len(store) == 2
        assert store.get("f" * 32) is None  # oldest evicted

    def test_per_trace_span_cap_counts_drops(self):
        store = SpanStore(max_traces=4, max_spans_per_trace=2)
        store.add([_span() for _ in range(5)])
        assert len(store.get(TRACE_ID)) == 2
        assert store.dropped_spans == 3

    def test_idless_spans_are_dropped_not_stored(self):
        store = SpanStore()
        store.add([_span(trace_id="")])
        assert len(store) == 0
        assert store.dropped_spans == 1

    def test_get_returns_sorted_copies(self):
        store = SpanStore()
        late = _span(start_us=2000.0)
        early = _span(start_us=1000.0)
        store.add([late, early])
        spans = store.get(TRACE_ID)
        assert [span.start_us for span in spans] == [1000.0, 2000.0]
        assert store.trace_ids() == [(TRACE_ID, 2)]

    def test_bounds_validated(self):
        with pytest.raises(ObservabilityError):
            SpanStore(max_traces=0)
        with pytest.raises(ObservabilityError):
            SpanStore(max_spans_per_trace=0)


class TestChromeStitching:
    def test_processes_get_distinct_pids_with_metadata(self):
        spans = [
            _span(process="client", start_us=100.0),
            _span(process="serve", start_us=150.0),
            _span(process="serve", start_us=175.0),
        ]
        doc = spans_to_chrome(spans)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {"client", "serve"}
        assert len({e["pid"] for e in meta}) == 2
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 3
        # timestamps re-based to the earliest span
        assert min(e["ts"] for e in slices) == 0.0
        assert doc["otherData"]["trace_id"] == TRACE_ID
        assert doc["otherData"]["span_schema_version"] == SPAN_SCHEMA_VERSION
        json.dumps(doc)  # writable as-is

    def test_links_and_identity_ride_in_args(self):
        link = {"trace_id": "a" * 32, "span_id": "b" * 16}
        span = _span(parent_id=SPAN_ID, links=[link])
        doc = spans_to_chrome([span])
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["span_id"] == span.span_id
        assert event["args"]["parent_id"] == SPAN_ID
        assert event["args"]["links"] == [link]

    def test_empty_trace_renders(self):
        doc = spans_to_chrome([])
        assert doc["traceEvents"] == []
        assert doc["otherData"]["trace_id"] is None


class TestObservedRunProducesSimSpans:
    def test_real_run_yields_phase_spans(self):
        from repro.algorithms.runner import execute_request
        from repro.request import RunRequest

        obs = make_observability()
        request = RunRequest.make("bfs", "human", "TX1", "scu-enhanced")
        execute_request(request, obs=obs)
        spans = spans_from_tracer(
            obs.tracer,
            trace_id=TRACE_ID,
            parent_id=None,
            base_us=perf_to_epoch_us(0.0),
            process="serve",
        )
        assert count_sim_phase_spans(spans) >= 1
        json.dumps([span.to_dict() for span in spans])  # all serializable


# ---------------------------------------------------------------------------
# repro top render layer
# ---------------------------------------------------------------------------


def _journal_record(request_id, outcome, total_ms, trace_id=None):
    return {
        "request_id": request_id,
        "trace_id": trace_id,
        "outcome": outcome,
        "total_ms": total_ms,
    }


def _snapshot(taken_at, total, journal=(), buckets=None):
    return Snapshot(
        taken_at=taken_at,
        requests_total=total,
        buckets=buckets if buckets is not None else {},
        journal=list(journal),
    )


class TestConsole:
    def test_outcome_mix_counts_and_orders(self):
        journal = [
            _journal_record("r1", "simulated", 5.0),
            _journal_record("r2", "cached", 1.0),
            _journal_record("r3", "cached", 1.0),
        ]
        assert outcome_mix(journal) == [("cached", 2), ("simulated", 1)]

    def test_slowest_traces_orders_and_bounds(self):
        journal = [
            _journal_record(f"r{i}", "simulated", float(i)) for i in range(9)
        ]
        journal.append(_journal_record("untimed", "rejected-429", None))
        rows = slowest_traces(journal)
        assert [r["request_id"] for r in rows] == ["r8", "r7", "r6", "r5", "r4"]

    def test_stage_quantiles_window_between_snapshots(self):
        from repro.serve.console import STAGE_HISTOGRAMS

        base = STAGE_HISTOGRAMS[0][0]
        before = _snapshot(0.0, 0, buckets={base: [(0.1, 10.0), (math.inf, 10.0)]})
        after = _snapshot(
            2.0, 0, buckets={base: [(0.1, 10.0), (math.inf, 14.0)]}
        )
        rows = stage_quantiles(after, before)
        label, values, windowed = rows[0]
        assert windowed  # interval had 4 observations, all above 0.1s
        assert values[0] >= 100.0  # p50 in ms, at or above the 0.1s bound

    def test_first_frame_renders_cumulative(self):
        journal = [
            _journal_record("r1", "simulated", 7.5, trace_id="c" * 32)
        ]
        frame = render_frame(
            _snapshot(1.0, 3, journal=journal), None, url="http://x"
        )
        assert "3 requests (cum" in frame
        assert "simulated" in frame
        assert "c" * 32 in frame

    def test_second_frame_shows_throughput_rate(self):
        first = _snapshot(0.0, 10)
        second = _snapshot(2.0, 30)
        frame = render_frame(second, first, url="http://x")
        assert "10.0 req/s" in frame

    def test_poll_failure_renders_notice(self):
        snap = Snapshot(
            taken_at=0.0, requests_total=0.0, buckets={}, error="refused"
        )
        frame = render_frame(snap, None, url="http://x")
        assert "POLL FAILED: refused" in frame
