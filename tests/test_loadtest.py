"""Tests for the loadtest harness (repro.bench.loadtest).

Unit-level: the zipf schedule is deterministic and skewed; artifacts
round-trip; the compare gate trips on rate/latency regressions and
refuses mismatched workloads; SLO parsing and evaluation.
Integration-level: one tiny closed-loop run against an in-process
server produces a coherent artifact.
"""

import json

import numpy as np
import pytest

from repro.bench.loadtest import (
    LoadtestConfig,
    ServeArtifact,
    build_population,
    build_schedule,
    compare_serve_artifacts,
    evaluate_slo,
    parse_slo,
    run_loadtest,
    summarize_results,
    summarize_server,
    zipf_weights,
    RequestResult,
    SERVE_KIND,
)
from repro.errors import BenchError


class TestConfig:
    def test_defaults_are_valid(self):
        config = LoadtestConfig()
        assert config.mode == "closed"
        assert config.requests == 120

    def test_invalid_mode_rejected(self):
        with pytest.raises(BenchError):
            LoadtestConfig(mode="sideways")

    def test_invalid_counts_rejected(self):
        with pytest.raises(BenchError):
            LoadtestConfig(requests=0)
        with pytest.raises(BenchError):
            LoadtestConfig(clients=0)
        with pytest.raises(BenchError):
            LoadtestConfig(zipf_s=-1.0)

    def test_round_trips_through_dict(self):
        config = LoadtestConfig(requests=10, keys=3, zipf_s=0.5)
        assert LoadtestConfig.from_dict(config.to_dict()) == config


class TestSchedule:
    def test_population_truncates_to_keys(self):
        config = LoadtestConfig(keys=4)
        population = build_population(config)
        assert len(population) == 4
        labels = [r.label() for r in population]
        assert len(set(labels)) == 4  # all distinct cells

    def test_schedule_is_seed_deterministic(self):
        config = LoadtestConfig(requests=200, keys=5, seed=7)
        first = build_schedule(config, 5)
        second = build_schedule(config, 5)
        np.testing.assert_array_equal(first, second)
        different = build_schedule(
            LoadtestConfig(requests=200, keys=5, seed=8), 5
        )
        assert not np.array_equal(first, different)

    def test_zipf_skews_toward_low_ranks(self):
        weights = zipf_weights(10, 1.1)
        assert weights[0] > weights[-1]
        assert weights.sum() == pytest.approx(1.0)
        config = LoadtestConfig(requests=2000, keys=10, zipf_s=1.1, seed=1)
        schedule = build_schedule(config, 10)
        counts = np.bincount(schedule, minlength=10)
        assert counts[0] > counts[-1] * 2  # rank 0 clearly hottest

    def test_zipf_zero_is_uniform(self):
        weights = zipf_weights(8, 0.0)
        np.testing.assert_allclose(weights, np.full(8, 1 / 8))


class TestSummaries:
    def _result(self, status, latency_s):
        return RequestResult(
            index=0, key_index=0, status=status, latency_s=latency_s
        )

    def test_outcome_classification(self):
        results = [
            self._result(200, 0.01),
            self._result(200, 0.02),
            self._result(429, 0.001),
            self._result(504, 1.0),
            self._result(500, 0.1),
        ]
        totals, rates, latency_ms = summarize_results(results, elapsed_s=2.0)
        assert totals["ok"] == 2
        assert totals["rejected_429"] == 1
        assert totals["timeout_504"] == 1
        assert totals["errors"] == 1
        assert rates["throughput_rps"] == pytest.approx(2.5)
        assert rates["rejected_429_rate"] == pytest.approx(0.2)
        assert latency_ms["max_ms"] == pytest.approx(1000.0)
        assert latency_ms["p50_ms"] == pytest.approx(20.0)

    def test_empty_results(self):
        totals, rates, latency_ms = summarize_results([], elapsed_s=0.0)
        assert totals["requests"] == 0
        assert rates["throughput_rps"] == 0.0
        assert latency_ms["p99_ms"] == 0.0

    @staticmethod
    def _exposition(requests, simulations, coalesced, store_hits):
        lines = []
        for name, value in (
            ("serve_requests", requests),
            ("serve_simulations", simulations),
            ("serve_singleflight_coalesced_hits", coalesced),
            ("serve_rejected", 0.0),
            ("serve_store_hits", store_hits),
            ("serve_store_misses", 0.0),
        ):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {value}")
        return "\n".join(lines) + "\n"

    def test_tiers_split_cached_hits_by_store_counter(self):
        before = self._exposition(0, 0, 0, 0)
        after = self._exposition(10, 2, 1, 3)
        summary = summarize_server(before, after)
        # cached = 10 - 2 simulated - 1 coalesced = 7; 3 of those came
        # from the disk tier, the remaining 4 from memory
        tiers = summary["tiers"]
        assert tiers["l2_hit_ratio"] == pytest.approx(0.3)
        assert tiers["l1_hit_ratio"] == pytest.approx(0.4)
        assert tiers["simulated_ratio"] == pytest.approx(0.2)
        assert tiers["coalesced_ratio"] == pytest.approx(0.1)
        assert tiers["l1_hit_ratio"] + tiers["l2_hit_ratio"] == (
            pytest.approx(summary["ratios"]["cached"])
        )

    def test_tiers_without_a_store_attribute_everything_to_l1(self):
        before = self._exposition(0, 0, 0, 0)
        after = self._exposition(8, 2, 0, 0)
        tiers = summarize_server(before, after)["tiers"]
        assert tiers["l2_hit_ratio"] == 0.0
        assert tiers["l1_hit_ratio"] == pytest.approx(0.75)


def _artifact(**overrides):
    config = LoadtestConfig(requests=10, keys=2).to_dict()
    payload = {
        "schema_version": 1,
        "kind": SERVE_KIND,
        "tag": "t",
        "provenance": {},
        "config": config,
        "totals": {"requests": 10.0, "ok": 10.0},
        "rates": {
            "throughput_rps": 50.0,
            "error_rate": 0.0,
            "rejected_429_rate": 0.0,
            "timeout_504_rate": 0.0,
        },
        "latency_ms": {
            "p50_ms": 10.0,
            "p95_ms": 20.0,
            "p99_ms": 30.0,
            "mean_ms": 12.0,
            "max_ms": 35.0,
        },
        "server": {},
    }
    payload.update(overrides)
    return ServeArtifact.from_dict(payload)


class TestArtifact:
    def test_round_trips_through_save_load(self, tmp_path):
        artifact = _artifact()
        path = artifact.save(tmp_path / "BENCH_serve_t.json")
        loaded = ServeArtifact.load(path)
        assert loaded.to_dict() == artifact.to_dict()

    def test_wrong_kind_rejected(self):
        with pytest.raises(BenchError):
            _artifact(kind="bench-micro")

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(BenchError):
            _artifact(schema_version=99)

    def test_missing_field_rejected(self):
        payload = _artifact().to_dict()
        del payload["rates"]
        with pytest.raises(BenchError):
            ServeArtifact.from_dict(payload)


class TestCompare:
    def test_identical_artifacts_are_clean(self):
        report = compare_serve_artifacts(_artifact(), _artifact())
        assert report.ok
        assert report.cells_compared == 1

    def test_rate_regression_trips(self):
        current = _artifact()
        current.rates = dict(current.rates, rejected_429_rate=0.25)
        report = compare_serve_artifacts(_artifact(), current)
        assert not report.ok
        assert any(
            f.metric == "rates.rejected_429_rate" for f in report.regressions
        )

    def test_rate_within_tolerance_passes(self):
        current = _artifact()
        current.rates = dict(current.rates, rejected_429_rate=0.04)
        report = compare_serve_artifacts(
            _artifact(), current, rate_tolerance=0.05
        )
        assert report.ok

    def test_latency_regression_trips_beyond_tolerance(self):
        current = _artifact()
        current.latency_ms = dict(current.latency_ms, p99_ms=300.0)  # 10x
        report = compare_serve_artifacts(
            _artifact(), current, latency_tolerance_pct=300.0
        )
        assert not report.ok
        assert any(f.metric == "latency.p99_ms" for f in report.regressions)

    def test_nonpositive_latency_tolerance_disables_gating(self):
        current = _artifact()
        current.latency_ms = dict(current.latency_ms, p99_ms=30000.0)
        report = compare_serve_artifacts(
            _artifact(), current, latency_tolerance_pct=0.0
        )
        assert report.ok

    def test_mismatched_workload_is_an_error_not_a_verdict(self):
        other = _artifact(
            config=LoadtestConfig(requests=11, keys=2).to_dict()
        )
        with pytest.raises(BenchError, match="different workloads"):
            compare_serve_artifacts(_artifact(), other)

    def test_sizing_fields_do_not_block_comparison(self):
        """workers/queue_depth are what a loadtest tunes — they compare."""
        resized = LoadtestConfig(
            requests=10, keys=2, workers=1, queue_depth=1
        ).to_dict()
        report = compare_serve_artifacts(
            _artifact(), _artifact(config=resized)
        )
        assert report.ok


class TestSlo:
    def test_parse_and_unknown_names(self):
        slo = parse_slo(["p99_ms=500", "error_rate=0.01"])
        assert slo == {"p99_ms": 500.0, "error_rate": 0.01}
        with pytest.raises(BenchError):
            parse_slo(["p37_ms=1"])
        with pytest.raises(BenchError):
            parse_slo(["p99_ms"])
        with pytest.raises(BenchError):
            parse_slo(["p99_ms=fast"])

    def test_ceiling_violation(self):
        violations = evaluate_slo(_artifact(), {"p99_ms": 25.0})
        assert len(violations) == 1
        assert violations[0].metric == "p99_ms"
        assert evaluate_slo(_artifact(), {"p99_ms": 30.0}) == []

    def test_throughput_is_a_floor(self):
        assert evaluate_slo(_artifact(), {"throughput_rps": 40.0}) == []
        violations = evaluate_slo(_artifact(), {"throughput_rps": 60.0})
        assert len(violations) == 1


class TestEndToEnd:
    def test_tiny_closed_loop_run(self, tmp_path):
        config = LoadtestConfig(
            requests=12,
            clients=2,
            keys=2,
            datasets=("delaunay",),
            modes=("gpu", "scu-basic"),
        )
        trace_path = tmp_path / "loadtest-trace.json"
        artifact = run_loadtest(config, tag="test", trace_out=str(trace_path))
        assert artifact.kind == SERVE_KIND
        assert artifact.totals["requests"] == 12
        assert artifact.totals["ok"] == 12
        assert artifact.rates["error_rate"] == 0.0
        assert artifact.latency_ms["p99_ms"] >= artifact.latency_ms["p50_ms"] > 0
        # server-side truth: both keys simulated once, the rest reused
        counters = artifact.server["counters"]
        assert counters["requests"] == 12
        assert counters["simulations"] == 2
        ratios = artifact.server["ratios"]
        assert ratios["simulated"] + ratios["coalesced"] + ratios[
            "cached"
        ] == pytest.approx(1.0)
        assert "total" in artifact.server["latency_ms"]
        # the artifact self-compares clean and serializes valid JSON
        assert compare_serve_artifacts(artifact, artifact).ok
        path = artifact.save(tmp_path / "BENCH_serve_test.json")
        assert json.loads(path.read_text())["kind"] == SERVE_KIND
        # offenders join client observations to server-minted IDs
        slowest = artifact.offenders["slowest"]
        assert 0 < len(slowest) <= 12
        assert all(row["request_id"].startswith("req-") for row in slowest)
        assert all(len(row["trace_id"]) == 32 for row in slowest)
        assert slowest == sorted(
            slowest, key=lambda row: -row["latency_ms"]
        )
        # every request succeeded, so no shed-load offender lists exist
        assert "rejected_429" not in artifact.offenders
        assert "timeout_504" not in artifact.offenders
        # the slowest successful request's stitched trace was written
        doc = json.loads(trace_path.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        assert {"client.request", "serve.request"} <= names
        assert doc["otherData"]["trace_id"] == slowest[0]["trace_id"]

    def test_cluster_store_cold_start_shows_l2_hits(self, tmp_path):
        """The acceptance scenario: a warm store directory makes a
        cold-start cluster run serve from the disk tier — zero
        simulations, >0 L2 hits in the artifact's per-tier ratios."""
        store = str(tmp_path / "store")
        config = LoadtestConfig(
            requests=8,
            clients=2,
            keys=2,
            datasets=("delaunay",),
            modes=("gpu", "scu-basic"),
            cluster_workers=2,
            store_dir=store,
        )
        warm = run_loadtest(config, tag="warm")
        assert warm.totals["ok"] == 8
        assert warm.server["counters"]["simulations"] == 2
        # second run: run_loadtest wipes the in-memory L1, so every key
        # cold-starts from the shared store through the cluster front
        cold = run_loadtest(config, tag="cold")
        assert cold.totals["ok"] == 8
        assert cold.server["counters"]["simulations"] == 0
        assert cold.server["counters"]["store_hits"] > 0
        tiers = cold.server["tiers"]
        assert tiers["l2_hit_ratio"] > 0
        assert tiers["l1_hit_ratio"] + tiers["l2_hit_ratio"] == (
            pytest.approx(cold.server["ratios"]["cached"])
        )
        # the cluster run produced a normal, self-comparable artifact
        assert compare_serve_artifacts(warm, cold).ok


# ---------------------------------------------------------------------------
# Client trace identity and the offenders block
# ---------------------------------------------------------------------------

from repro.bench.loadtest import (  # noqa: E402
    OFFENDER_LIMIT,
    client_trace_context,
    collect_offenders,
)
from repro.obs.propagation import format_traceparent, parse_traceparent  # noqa: E402


class TestClientTraceContext:
    def test_deterministic_and_decodable(self):
        context = client_trace_context(seed=42, index=12)
        again = client_trace_context(seed=42, index=12)
        assert context == again
        # trace id = seed (high 64 bits) ++ 1-based index (low 64 bits)
        assert context.trace_id == f"{42:016x}{13:016x}"
        assert context.span_id == f"{13:016x}"

    def test_distinct_per_request_and_per_seed(self):
        ids = {
            client_trace_context(seed, index).trace_id
            for seed in (1, 2)
            for index in range(5)
        }
        assert len(ids) == 10

    def test_index_zero_is_never_an_all_zero_span(self):
        context = client_trace_context(seed=0x1234, index=0)
        assert context.span_id != "0" * 16
        # the wire form the loadtest sends parses back to the same context
        assert parse_traceparent(format_traceparent(context)) == context


class TestOffenders:
    def _result(self, index, status, latency_s):
        return RequestResult(
            index=index,
            key_index=index % 3,
            status=status,
            latency_s=latency_s,
            request_id=f"req-{index:06d}",
            trace_id=f"{index + 1:032x}",
        )

    def test_buckets_by_status_and_ranks_by_latency(self):
        results = [
            self._result(0, 200, 0.010),
            self._result(1, 504, 0.500),
            self._result(2, 429, 0.001),
            self._result(3, 200, 0.200),
            self._result(4, 504, 0.900),
        ]
        offenders = collect_offenders(results)
        assert [r["request_id"] for r in offenders["slowest"][:2]] == [
            "req-000004",
            "req-000001",
        ]
        assert [r["request_id"] for r in offenders["timeout_504"]] == [
            "req-000004",
            "req-000001",
        ]
        assert [r["request_id"] for r in offenders["rejected_429"]] == [
            "req-000002"
        ]
        row = offenders["slowest"][0]
        assert row["trace_id"] == f"{5:032x}"
        assert row["latency_ms"] == pytest.approx(900.0)
        assert row["status"] == 504

    def test_lists_are_bounded_and_empty_ones_pruned(self):
        results = [
            self._result(i, 200, float(i) / 1000) for i in range(25)
        ]
        offenders = collect_offenders(results)
        assert len(offenders["slowest"]) == OFFENDER_LIMIT
        assert "rejected_429" not in offenders
        assert "timeout_504" not in offenders
        assert collect_offenders([]) == {}

    def test_artifact_round_trips_offenders(self, tmp_path):
        offenders = collect_offenders([self._result(0, 504, 1.0)])
        artifact = _artifact(offenders=offenders)
        path = artifact.save(tmp_path / "BENCH_serve_off.json")
        loaded = ServeArtifact.load(path)
        assert loaded.offenders == offenders
        assert loaded.to_dict() == artifact.to_dict()

    def test_artifacts_without_offenders_still_load(self):
        # Pre-offenders artifacts (and hand-built payloads) stay readable.
        payload = _artifact().to_dict()
        payload.pop("offenders", None)
        assert ServeArtifact.from_dict(payload).offenders == {}
