"""Tests for the DRAM model and the memory hierarchy composition."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mem import (
    GDDR5,
    LPDDR4,
    DramConfig,
    DramModel,
    DramTraffic,
    MemoryHierarchy,
    MemoryStats,
    coalesce_warp,
    row_hit_fraction,
    sequential_addresses,
)


class TestDramConfigs:
    def test_paper_bandwidths(self):
        assert GDDR5.peak_bandwidth_bps == 224e9  # Table 3
        assert LPDDR4.peak_bandwidth_bps == 25.6e9  # Table 4

    def test_paper_capacities(self):
        assert GDDR5.capacity_bytes == 4 << 30
        assert LPDDR4.capacity_bytes == 4 << 30

    def test_lpddr4_is_lower_energy(self):
        assert LPDDR4.energy_pj_per_bit < GDDR5.energy_pj_per_bit

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            DramConfig(
                name="bad",
                capacity_bytes=1,
                peak_bandwidth_bps=-1,
                access_latency_ns=10,
                row_hit_latency_ns=5,
                energy_pj_per_bit=1,
                activation_energy_pj=1,
                static_power_w=1,
            )


class TestDramModel:
    def test_streaming_faster_than_random(self):
        model = DramModel(GDDR5)
        streaming = DramTraffic(accesses=10_000, bytes_transferred=320_000, row_hit_fraction=1.0)
        random = DramTraffic(accesses=10_000, bytes_transferred=320_000, row_hit_fraction=0.0)
        assert model.transfer_time_s(streaming) < model.transfer_time_s(random)

    def test_effective_bandwidth_bounds(self):
        model = DramModel(GDDR5)
        assert model.effective_bandwidth(1.0) == pytest.approx(0.9 * 224e9)
        assert model.effective_bandwidth(0.0) == pytest.approx(0.35 * 224e9)

    def test_zero_traffic_costs_nothing(self):
        model = DramModel(LPDDR4)
        idle = DramTraffic(accesses=0, bytes_transferred=0)
        assert model.transfer_time_s(idle) == 0.0
        assert model.dynamic_energy_j(idle) == 0.0

    def test_latency_floor(self):
        model = DramModel(GDDR5)
        tiny = DramTraffic(accesses=1, bytes_transferred=32)
        assert model.transfer_time_s(tiny) >= GDDR5.access_latency_ns * 1e-9

    def test_row_misses_cost_activation_energy(self):
        model = DramModel(GDDR5)
        hit = DramTraffic(accesses=1000, bytes_transferred=32_000, row_hit_fraction=1.0)
        miss = DramTraffic(accesses=1000, bytes_transferred=32_000, row_hit_fraction=0.0)
        assert model.dynamic_energy_j(miss) > model.dynamic_energy_j(hit)

    def test_bad_row_hit_fraction_rejected(self):
        with pytest.raises(ConfigError):
            DramTraffic(accesses=1, bytes_transferred=32, row_hit_fraction=1.5)

    def test_static_energy_scales_with_time(self):
        model = DramModel(GDDR5)
        assert model.static_energy_j(2.0) == pytest.approx(2 * GDDR5.static_power_w)


class TestRowHitFraction:
    def test_sequential_lines_mostly_hit(self):
        lines = np.arange(1000)
        assert row_hit_fraction(lines) > 0.9

    def test_random_lines_mostly_miss(self):
        rng = np.random.default_rng(1)
        lines = rng.integers(0, 1 << 24, size=1000)
        assert row_hit_fraction(lines) < 0.1

    def test_short_streams_default(self):
        assert row_hit_fraction(np.array([3])) == 0.5


class TestMemoryHierarchy:
    def make(self, l2_kb=256):
        return MemoryHierarchy(l2_capacity_bytes=l2_kb * 1024, dram=LPDDR4)

    def test_fitting_stream_hits_l2_on_reuse(self):
        hierarchy = self.make()
        addrs = np.tile(sequential_addresses(1024, elem_bytes=4), 4)
        stats = hierarchy.process(coalesce_warp(addrs))
        assert stats.l2_hits > 0
        assert stats.dram_accesses < stats.transactions

    def test_l2_bypass_sends_everything_to_dram(self):
        hierarchy = self.make()
        addrs = np.tile(sequential_addresses(1024, elem_bytes=4), 4)
        stats = hierarchy.process(coalesce_warp(addrs), l2_bypass=True)
        assert stats.l2_hits == 0
        assert stats.dram_accesses == stats.transactions

    def test_empty_result(self):
        hierarchy = self.make()
        stats = hierarchy.process(coalesce_warp(np.empty(0, dtype=np.int64)))
        assert stats == MemoryStats()

    def test_dram_bytes_are_sector_sized(self):
        hierarchy = self.make()
        stats = hierarchy.process(coalesce_warp(sequential_addresses(64)), l2_bypass=True)
        assert stats.dram_bytes == stats.dram_accesses * 32

    def test_merged_accumulates(self):
        hierarchy = self.make()
        a = hierarchy.process(coalesce_warp(sequential_addresses(64)))
        b = hierarchy.process(coalesce_warp(sequential_addresses(64, base=1 << 20)))
        merged = a.merged(b)
        assert merged.transactions == a.transactions + b.transactions
        assert merged.accesses == 128

    def test_merged_weights_row_locality_by_bytes(self):
        a = MemoryStats(dram_bytes=100, dram_accesses=1, row_hit_fraction=1.0)
        b = MemoryStats(dram_bytes=300, dram_accesses=1, row_hit_fraction=0.0)
        assert a.merged(b).row_hit_fraction == pytest.approx(0.25)

    def test_coalescing_factor_reported(self):
        hierarchy = self.make()
        stats = hierarchy.process(coalesce_warp(sequential_addresses(32, elem_bytes=4)))
        assert stats.coalescing_factor == 8.0

    def test_dram_time_positive_for_traffic(self):
        hierarchy = self.make()
        stats = hierarchy.process(coalesce_warp(sequential_addresses(4096)), l2_bypass=True)
        assert hierarchy.dram_time_s(stats) > 0
