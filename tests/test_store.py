"""Tests for the persistent L2 result store (repro.serve.store).

The contracts under test:

* **one canonical identity** — the journal field, the L2 filename, and
  the cluster ring placement all key on the same
  :meth:`RunRequest.cache_digest` string, which is the sha256 of the
  request's canonical wire encoding;
* **byte-identical cold starts** — a response served from a disk entry
  written by a previous service incarnation is byte-for-byte the
  response a fresh simulation produces;
* **durability** — corrupt/truncated/mismatched entries quarantine
  instead of serving, eviction respects the byte bound, and concurrent
  writers racing one key both land whole entries.
"""

import hashlib
import json
import threading

import pytest

from repro.algorithms.runner import (
    clear_run_cache,
    get_cached_report,
    put_cached_report,
    set_result_store,
)
from repro.errors import ServiceError
from repro.mem.hierarchy import MemoryStats
from repro.obs import MetricsRegistry
from repro.phases import Engine, PhaseKind, PhaseReport, RunReport
from repro.request import RunRequest
from repro.serve.cluster import HashRing
from repro.serve.protocol import encode, run_response
from repro.serve.store import (
    STORE_CORRUPT_METRIC,
    STORE_EVICTIONS_METRIC,
    STORE_HITS_METRIC,
    STORE_MISSES_METRIC,
    STORE_KIND,
    STORE_SCHEMA_VERSION,
    ResultStore,
    report_from_dict,
    report_to_dict,
)

REQUEST = RunRequest.make("bfs", "human", "TX1", "scu-enhanced")


def synthetic_report(tag: int = 0) -> RunReport:
    """A cheap, fully-populated report (no simulation needed)."""
    return RunReport(
        algorithm="bfs",
        system="scu-enhanced",
        dataset="human",
        static_energy_j=0.125 + tag,
        phases=[
            PhaseReport(
                name=f"phase-{tag}",
                engine=Engine.SCU,
                kind=PhaseKind.COMPACTION,
                elements=1000 + tag,
                instructions=5000,
                time_s=0.001 * (tag + 1),
                dynamic_energy_j=0.25,
                memory=MemoryStats(
                    accesses=100,
                    transactions=40,
                    l2_hits=30,
                    dram_accesses=10,
                    dram_bytes=320,
                    row_hit_fraction=0.625,
                ),
            )
        ],
    )


class TestCanonicalDigest:
    def test_digest_is_sha256_of_canonical_encoding(self):
        assert REQUEST.cache_digest() == (
            hashlib.sha256(REQUEST.canonical_bytes()).hexdigest()
        )

    def test_canonical_bytes_match_the_wire_protocol(self):
        # The digest input IS the wire form: one encoder, one identity.
        assert REQUEST.canonical_bytes() == encode(REQUEST.to_dict())

    def test_digest_distinguishes_requests(self):
        other = RunRequest.make("bfs", "human", "TX1", "scu-enhanced", seed=7)
        assert REQUEST.cache_digest() != other.cache_digest()

    def test_journal_filename_and_ring_agree(self, tmp_path):
        """The acceptance pin: journal field == L2 filename == ring key."""
        digest = REQUEST.cache_digest()
        # L2 filename
        store = ResultStore(tmp_path, registry=MetricsRegistry())
        assert store.path_for(digest).name == f"{digest}.json"
        # ring placement consumes the digest string verbatim
        ring = HashRing(("http://a", "http://b", "http://c"))
        assert ring.node_for(digest) in ring.nodes
        # journal field: the service sets ctx.cache_key to this digest
        from repro.serve.telemetry import RequestContext

        ctx = RequestContext(request_id="req-000001", started=0.0)
        ctx.cache_key = digest
        assert ctx.record(status=200, total_s=0.0)["cache_key"] == digest


class TestReportRoundTrip:
    def test_exact_round_trip(self):
        report = synthetic_report()
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt == report

    def test_round_trip_preserves_response_bytes(self):
        report = synthetic_report()
        rebuilt = report_from_dict(
            json.loads(json.dumps(report_to_dict(report)))
        )
        assert encode(run_response(REQUEST, rebuilt)) == (
            encode(run_response(REQUEST, report))
        )

    def test_malformed_payload_raises(self):
        with pytest.raises(ServiceError, match="malformed"):
            report_from_dict({"algorithm": "bfs"})


class TestResultStore:
    def test_put_then_get(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path, registry=registry)
        report = synthetic_report()
        path = store.put(REQUEST, report)
        assert path.exists()
        assert store.get(REQUEST) == report
        assert registry.counter(STORE_HITS_METRIC).total() == 1
        assert len(store) == 1

    def test_miss_is_counted(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path, registry=registry)
        assert store.get(REQUEST) is None
        assert registry.counter(STORE_MISSES_METRIC).total() == 1

    def test_envelope_is_schema_versioned_with_provenance(self, tmp_path):
        store = ResultStore(tmp_path, registry=MetricsRegistry())
        path = store.put(REQUEST, synthetic_report())
        envelope = json.loads(path.read_text())
        assert envelope["kind"] == STORE_KIND
        assert envelope["schema_version"] == STORE_SCHEMA_VERSION
        assert envelope["digest"] == REQUEST.cache_digest()
        assert envelope["request"] == REQUEST.to_dict()
        assert "provenance" in envelope

    def test_bad_digest_rejected(self, tmp_path):
        store = ResultStore(tmp_path, registry=MetricsRegistry())
        with pytest.raises(ServiceError, match="digest"):
            store.path_for("../escape")

    def test_corrupt_entry_quarantines(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path, registry=registry)
        path = store.put(REQUEST, synthetic_report())
        path.write_text("{definitely not json")
        assert store.get(REQUEST) is None
        assert registry.counter(STORE_CORRUPT_METRIC).total() == 1
        assert not path.exists()
        assert (tmp_path / "quarantine" / path.name).exists()
        # the store recovers: a fresh put serves again
        store.put(REQUEST, synthetic_report())
        assert store.get(REQUEST) is not None

    def test_truncated_entry_quarantines(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path, registry=registry)
        path = store.put(REQUEST, synthetic_report())
        whole = path.read_text()
        path.write_text(whole[: len(whole) // 2])
        assert store.get(REQUEST) is None
        assert registry.counter(STORE_CORRUPT_METRIC).total() == 1
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_digest_mismatch_quarantines(self, tmp_path):
        """An entry renamed to another digest must never be served."""
        registry = MetricsRegistry()
        store = ResultStore(tmp_path, registry=registry)
        other = RunRequest.make("bfs", "human", "TX1", "scu-enhanced", seed=7)
        path = store.put(REQUEST, synthetic_report())
        path.rename(store.path_for(other.cache_digest()))
        assert store.get(other) is None
        assert registry.counter(STORE_CORRUPT_METRIC).total() == 1

    def test_eviction_respects_byte_bound(self, tmp_path):
        registry = MetricsRegistry()
        requests = [
            RunRequest.make("bfs", "human", "TX1", "scu-enhanced", seed=s)
            for s in range(6)
        ]
        probe = ResultStore(tmp_path, registry=MetricsRegistry())
        entry_bytes = probe.put(requests[0], synthetic_report()).stat().st_size
        store = ResultStore(
            tmp_path, max_bytes=entry_bytes * 3, registry=registry
        )
        import time as _time

        for i, request in enumerate(requests):
            store.put(request, synthetic_report(i))
            _time.sleep(0.01)  # distinct mtimes -> deterministic LRU order
        assert store.stats()["bytes"] <= entry_bytes * 3
        assert registry.counter(STORE_EVICTIONS_METRIC).total() > 0
        # the most recent write survives; the oldest keys were evicted
        assert store.get(requests[-1]) is not None
        assert store.get(requests[1]) is None

    def test_protected_entry_never_evicted(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=1, registry=MetricsRegistry())
        path = store.put(REQUEST, synthetic_report())
        assert path.exists()  # over bound, but the fresh write survives

    def test_concurrent_writers_racing_one_key(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path, registry=registry)
        report = synthetic_report()
        errors = []
        barrier = threading.Barrier(8)

        def writer():
            try:
                barrier.wait(10.0)
                for _ in range(10):
                    store.put(REQUEST, report)
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert errors == []
        # every racer atomically landed a whole (identical) entry
        assert len(store) == 1
        assert store.get(REQUEST) == report
        # no stray tmp files leaked
        assert not list(tmp_path.glob("*.tmp"))


class TestTieredRunnerCache:
    def test_l2_hit_promotes_into_l1(self, tmp_path):
        clear_run_cache()
        store = ResultStore(tmp_path, registry=MetricsRegistry())
        set_result_store(store)
        try:
            report = synthetic_report()
            store.put(REQUEST, report)
            first, tier = get_cached_report(REQUEST, with_tier=True)
            assert first == report and tier == "l2"
            second, tier = get_cached_report(REQUEST, with_tier=True)
            assert second == report and tier == "l1"
        finally:
            set_result_store(None)
            clear_run_cache()

    def test_put_writes_both_tiers(self, tmp_path):
        clear_run_cache()
        store = ResultStore(tmp_path, registry=MetricsRegistry())
        set_result_store(store)
        try:
            report = synthetic_report()
            put_cached_report(REQUEST, report)
            assert len(store) == 1
            clear_run_cache()  # kill L1; L2 still serves
            got, tier = get_cached_report(REQUEST, with_tier=True)
            assert got == report and tier == "l2"
        finally:
            set_result_store(None)
            clear_run_cache()

    def test_without_store_behaviour_is_single_tier(self):
        clear_run_cache()
        assert get_cached_report(REQUEST, with_tier=True) == (None, None)
        clear_run_cache()


class TestColdStartService:
    """The acceptance A/B: serve, kill the process state, re-serve."""

    def test_cold_start_serves_byte_identical_from_disk(self, tmp_path):
        import urllib.request

        from repro.serve.server import (
            ServiceConfig,
            SimulationService,
            make_server,
        )
        from repro.serve.server import SIMULATIONS_METRIC

        body = json.dumps(
            {
                "algorithm": "bfs",
                "dataset": "human",
                "gpu": "TX1",
                "mode": "scu-enhanced",
            }
        ).encode()

        def start(store_dir):
            service = SimulationService(
                ServiceConfig(port=0, store_dir=str(store_dir))
            )
            httpd = make_server(service, port=0)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            host, port = httpd.server_address[:2]
            return service, httpd, f"http://{host}:{port}"

        def post(base):
            request = urllib.request.Request(
                base + "/run",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60.0) as response:
                return response.read()

        def stop(service, httpd):
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            service.close()

        clear_run_cache()
        service1, httpd1, base1 = start(tmp_path)
        try:
            first = post(base1)
            assert service1.registry.counter(SIMULATIONS_METRIC).total() == 1
        finally:
            stop(service1, httpd1)
        # "restart": a fresh service, the in-memory tier wiped — only
        # the disk entry written by the first incarnation remains.
        clear_run_cache()
        service2, httpd2, base2 = start(tmp_path)
        try:
            second = post(base2)
            assert second == first  # byte-identical from the L2 tier
            assert service2.registry.counter(SIMULATIONS_METRIC).total() == 0
            assert service2.registry.counter(STORE_HITS_METRIC).total() == 1
        finally:
            stop(service2, httpd2)
            clear_run_cache()
