"""Focused tests for the SCU timing and energy models."""

import pytest

from repro.core import SCU_GTX980, SCU_TX1, build_system, scu_op_timing
from repro.core.energy import scu_op_dynamic_energy_j, scu_static_power_w
from repro.core.timing import SCU_L2_BANDWIDTH_FRACTION
from repro.mem import MemoryStats


def memory_stats(transactions):
    return MemoryStats(
        accesses=transactions,
        transactions=transactions,
        dram_accesses=transactions,
        dram_bytes=32 * transactions,
        row_hit_fraction=0.9,
    )


class TestScuTiming:
    def hierarchy(self):
        return build_system("TX1").gpu.hierarchy

    def test_pipeline_bound(self):
        timing = scu_op_timing(
            SCU_TX1, self.hierarchy(), elements=10**6,
            memory=MemoryStats(), l2_bandwidth_bps=120e9,
        )
        assert timing.bottleneck == "pipeline"
        assert timing.pipeline_s == pytest.approx(1e6 / 1e9)

    def test_width_speeds_pipeline(self):
        wide = scu_op_timing(
            SCU_TX1.with_pipeline_width(4), self.hierarchy(), elements=10**6,
            memory=MemoryStats(), l2_bandwidth_bps=120e9,
        )
        assert wide.pipeline_s == pytest.approx(0.25e6 / 1e9)

    def test_memory_bound(self):
        timing = scu_op_timing(
            SCU_TX1, self.hierarchy(), elements=10,
            memory=memory_stats(10**6), l2_bandwidth_bps=120e9,
        )
        assert timing.bottleneck in ("dram", "l2")
        assert timing.total_s > timing.pipeline_s

    def test_setup_always_charged(self):
        timing = scu_op_timing(
            SCU_TX1, self.hierarchy(), elements=0,
            memory=MemoryStats(), l2_bandwidth_bps=120e9,
        )
        assert timing.total_s == pytest.approx(SCU_TX1.op_setup_s)

    def test_scu_gets_half_the_l2_port(self):
        timing = scu_op_timing(
            SCU_TX1, self.hierarchy(), elements=0,
            memory=memory_stats(10**6), l2_bandwidth_bps=120e9,
        )
        expected = 10**6 * 32 / (120e9 * SCU_L2_BANDWIDTH_FRACTION)
        assert timing.l2_s == pytest.approx(expected)

    def test_dram_override(self):
        timing = scu_op_timing(
            SCU_TX1, self.hierarchy(), elements=0,
            memory=MemoryStats(), l2_bandwidth_bps=120e9, dram_s_override=2.0,
        )
        assert timing.dram_s == 2.0


class TestScuEnergy:
    def hierarchy(self):
        return build_system("TX1").gpu.hierarchy

    def test_per_element_term(self):
        energy = scu_op_dynamic_energy_j(
            SCU_TX1, self.hierarchy(), elements=10**6, memory=MemoryStats()
        )
        assert energy == pytest.approx(10**6 * SCU_TX1.energy_per_element_pj * 1e-12)

    def test_hash_probes_cost_extra(self):
        base = scu_op_dynamic_energy_j(
            SCU_TX1, self.hierarchy(), elements=100, memory=MemoryStats()
        )
        probed = scu_op_dynamic_energy_j(
            SCU_TX1, self.hierarchy(), elements=100,
            memory=MemoryStats(), hash_probes=100,
        )
        assert probed > base

    def test_active_power_scaled_by_area(self):
        # TX1 (width 1) active power is scaled down from the width-4 figure.
        narrow = scu_op_dynamic_energy_j(
            SCU_TX1, self.hierarchy(), elements=0,
            memory=MemoryStats(), busy_time_s=1.0,
        )
        wide = scu_op_dynamic_energy_j(
            SCU_GTX980, self.hierarchy(), elements=0,
            memory=MemoryStats(), busy_time_s=1.0,
        )
        assert narrow < wide
        assert wide == pytest.approx(SCU_GTX980.active_power_w, rel=1e-6)

    def test_static_power_ordering(self):
        assert scu_static_power_w(SCU_TX1) < scu_static_power_w(SCU_GTX980)
        assert scu_static_power_w(SCU_GTX980) == pytest.approx(0.25)

    def test_scu_active_far_below_sm_array(self):
        """The offload energy story: ~two orders of magnitude apart."""
        from repro.gpu import GTX980

        assert GTX980.active_power_w > 50 * SCU_GTX980.active_power_w
