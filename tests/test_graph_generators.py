"""Tests for the six dataset-analog generators and the registry."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    DATASET_NAMES,
    DATASETS,
    clear_dataset_cache,
    graph_stats,
    load_dataset,
)
from repro.graph.generators import (
    generate_collaboration,
    generate_delaunay,
    generate_kron,
    generate_mesh3d,
    generate_regulatory,
    generate_road_network,
    rmat_edges,
)


class TestRoadNetwork:
    def test_low_degree(self):
        g = generate_road_network(side=40, seed=1)
        assert g.average_degree < 6

    def test_symmetric(self):
        g = generate_road_network(side=20, seed=1)
        rev = g.reversed()
        assert np.array_equal(np.sort(g.edges), np.sort(rev.edges))

    def test_size(self):
        g = generate_road_network(side=25, seed=1)
        assert g.num_nodes == 625

    def test_rejects_tiny_side(self):
        with pytest.raises(GraphError):
            generate_road_network(side=1)

    def test_deterministic(self):
        a = generate_road_network(side=15, seed=7)
        b = generate_road_network(side=15, seed=7)
        assert np.array_equal(a.edges, b.edges)


class TestKron:
    def test_heavy_tail(self):
        g = generate_kron(scale=11, edge_factor=8, seed=3)
        stats = graph_stats(g)
        # Kronecker graphs are hub-dominated: p99 degree far above mean.
        assert stats.degree_p99 > 3 * stats.average_degree

    def test_rmat_edges_shape(self):
        edges = rmat_edges(scale=8, edge_factor=4, seed=0)
        assert edges.shape == (4 * 256, 2)
        assert edges.max() < 256

    def test_rmat_rejects_bad_initiator(self):
        with pytest.raises(GraphError):
            rmat_edges(4, 2, initiator=(0.5, 0.5, 0.5, 0.5))

    def test_rmat_rejects_bad_scale(self):
        with pytest.raises(GraphError):
            rmat_edges(0, 2)


class TestDelaunay:
    def test_degree_concentrated_around_six(self):
        g = generate_delaunay(num_points=2000, seed=5)
        assert 5.0 < g.average_degree < 7.0

    def test_connected(self):
        g = generate_delaunay(num_points=500, seed=5)
        assert graph_stats(g).largest_component_fraction == 1.0

    def test_rejects_too_few_points(self):
        with pytest.raises(GraphError):
            generate_delaunay(num_points=2)


class TestCollaboration:
    def test_hubby(self):
        g = generate_collaboration(num_authors=2000, num_papers=4000, seed=2)
        assert graph_stats(g).gini_degree > 0.5

    def test_rejects_single_author_papers(self):
        with pytest.raises(GraphError):
            generate_collaboration(max_authors_per_paper=1)


class TestRegulatory:
    def test_dense(self):
        g = generate_regulatory(num_genes=500, seed=4)
        assert g.average_degree > 30

    def test_hub_degrees_dwarf_background(self):
        g = generate_regulatory(num_genes=500, seed=4)
        stats = graph_stats(g)
        assert stats.max_degree > 5 * stats.average_degree

    def test_rejects_bad_hub_fraction(self):
        with pytest.raises(GraphError):
            generate_regulatory(hub_fraction=1.5)


class TestMesh:
    def test_degree_near_paper_msdoor(self):
        g = generate_mesh3d(dims=(12, 12, 12), radius=2, seed=6)
        assert 70 < g.average_degree < 125

    def test_radius_one_is_26_connectivity(self):
        g = generate_mesh3d(dims=(8, 8, 8), radius=1, seed=6)
        interior = g.out_degrees.max()
        assert interior == 26

    def test_rejects_flat_dims(self):
        with pytest.raises(GraphError):
            generate_mesh3d(dims=(1, 5, 5))


class TestRegistry:
    def test_all_paper_datasets_present(self):
        assert set(DATASET_NAMES) == {"ca", "cond", "delaunay", "human", "kron", "msdoor"}

    def test_specs_carry_paper_numbers(self):
        assert DATASETS["human"].paper_avg_degree == 2214

    def test_unknown_dataset_raises(self):
        with pytest.raises(GraphError, match="unknown dataset"):
            load_dataset("does-not-exist")

    def test_cache_returns_same_object(self):
        clear_dataset_cache()
        a = load_dataset("delaunay", seed=9)
        b = load_dataset("delaunay", seed=9)
        assert a is b
        clear_dataset_cache()

    def test_cache_bypass(self):
        a = load_dataset("delaunay", seed=9, cache=False)
        b = load_dataset("delaunay", seed=9, cache=False)
        assert a is not b
        assert np.array_equal(a.edges, b.edges)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_every_dataset_builds_and_is_nonempty(self, name):
        g = load_dataset(name)
        assert g.num_nodes > 1000
        assert g.num_edges > 10_000
