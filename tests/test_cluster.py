"""Tests for the sharded serve cluster (repro.serve.cluster).

Unit-level: the consistent-hash ring (determinism, balance, minimal
movement on rebalance).  Integration-level: a LocalCluster end to end —
routing through the front is byte-identical to hitting a worker
directly, identical requests reach one worker (cluster-wide
single-flight), a lost worker yields a deterministic 503 + Retry-After
and the retry succeeds on the rebalanced ring, and the merged front
``/metrics`` stays a conformant exposition.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.algorithms.runner import clear_run_cache
from repro.errors import ServiceError
from repro.obs.promtext import check_exposition, sum_by_name
from repro.request import RunRequest
from repro.serve.cluster import HashRing, LocalCluster

BODY = json.dumps(
    {"algorithm": "bfs", "dataset": "human", "gpu": "TX1", "mode": "scu-enhanced"}
).encode()
REQUEST = RunRequest.make("bfs", "human", "TX1", "scu-enhanced")


def _post(base, body=BODY, timeout=60.0):
    request = urllib.request.Request(
        base + "/run", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read(), dict(response.headers)


def _get_json(base, path, timeout=10.0):
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return json.loads(response.read())


class TestHashRing:
    def test_placement_is_deterministic(self):
        nodes = ("http://a", "http://b", "http://c")
        first = HashRing(nodes)
        second = HashRing(nodes)
        digests = [f"{i:064x}" for i in range(200)]
        assert [first.node_for(d) for d in digests] == [
            second.node_for(d) for d in digests
        ]

    def test_every_node_owns_keys(self):
        ring = HashRing(("http://a", "http://b", "http://c"))
        owners = {ring.node_for(f"{i:064x}") for i in range(500)}
        assert owners == set(ring.nodes)

    def test_remove_moves_only_the_lost_nodes_keys(self):
        """Consistent hashing's defining property: survivors keep theirs."""
        nodes = ("http://a", "http://b", "http://c", "http://d")
        ring = HashRing(nodes)
        digests = [f"{i:064x}" for i in range(500)]
        before = {d: ring.node_for(d) for d in digests}
        ring.remove("http://c")
        for digest, owner in before.items():
            if owner != "http://c":
                assert ring.node_for(digest) == owner
        # the orphaned keys all found a surviving owner
        orphans = [d for d, o in before.items() if o == "http://c"]
        assert orphans, "test population never hit the removed node"
        assert all(ring.node_for(d) in ring.nodes for d in orphans)

    def test_add_is_idempotent_and_restores_placement(self):
        ring = HashRing(("http://a", "http://b"))
        before = [ring.node_for(f"{i:064x}") for i in range(100)]
        ring.add("http://a")  # no-op
        ring.remove("http://b")
        ring.add("http://b")
        assert [ring.node_for(f"{i:064x}") for i in range(100)] == before

    def test_empty_ring_routes_nowhere(self):
        ring = HashRing(("http://a",))
        ring.remove("http://a")
        assert ring.node_for("0" * 64) is None

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ServiceError, match="vnodes"):
            HashRing(vnodes=0)


@pytest.fixture
def cluster(tmp_path):
    clear_run_cache()
    local = LocalCluster(2, store_dir=str(tmp_path / "store"))
    yield local
    local.close()
    clear_run_cache()


class TestClusterFront:
    def test_routed_response_matches_direct_worker_response(self, cluster):
        status, via_front, headers = _post(cluster.url)
        assert status == 200
        owner = headers["X-Cluster-Worker"]
        assert owner in cluster.worker_urls
        _, direct, _ = _post(owner)
        assert via_front == direct

    def test_identical_requests_land_on_one_worker_once(self, cluster):
        _, first, h1 = _post(cluster.url)
        _, second, h2 = _post(cluster.url)
        assert first == second
        assert h1["X-Cluster-Worker"] == h2["X-Cluster-Worker"]
        # cluster-wide single simulation, visible in the merged scrape
        with urllib.request.urlopen(
            cluster.url + "/metrics", timeout=10.0
        ) as response:
            samples = check_exposition(response.read().decode())
        assert sum_by_name(samples, "serve_simulations") == 1.0
        assert sum_by_name(samples, "cluster_routed") == 2.0

    def test_healthz_aggregates_workers(self, cluster):
        payload = _get_json(cluster.url, "/healthz")
        assert payload["status"] == "ok"
        assert payload["healthy_workers"] == 2
        assert {w["url"] for w in payload["workers"]} == set(
            cluster.worker_urls
        )

    def test_merged_metrics_are_conformant(self, cluster):
        _post(cluster.url)
        with urllib.request.urlopen(
            cluster.url + "/metrics", timeout=10.0
        ) as response:
            text = response.read().decode()
        samples = check_exposition(text)  # raises on a malformed merge
        assert sum_by_name(samples, "cluster_workers_healthy") == 2.0
        assert sum_by_name(samples, "serve_requests") >= 1.0

    def test_trace_fanout_through_front(self, cluster):
        _, _, headers = _post(cluster.url)
        trace_id = headers.get("X-Trace-Id")
        assert trace_id
        payload = _get_json(cluster.url, f"/debug/trace/{trace_id}?raw=1")
        assert payload["trace_id"] == trace_id
        assert payload["spans"]

    def test_invalid_request_rejected_at_the_edge(self, cluster):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(cluster.url, body=b"{not json")
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"] == "bad-request"
        # the edge rejected it: nothing was routed to a worker
        assert (
            cluster.front.registry.counter("cluster.routed").total() == 0.0
        )

    def test_worker_loss_is_deterministic_503_then_retry_succeeds(
        self, cluster
    ):
        # Kill whichever worker owns this digest, so the next POST is
        # guaranteed to hit the dead one.
        digest = REQUEST.cache_digest()
        owner = cluster.front.route(digest)
        index = cluster.worker_urls.index(owner)
        cluster.worker_servers[index].shutdown()
        cluster.worker_servers[index].server_close()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(cluster.url)
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Retry-After"] is not None
        payload = json.loads(excinfo.value.read())
        assert payload["error"] == "unavailable"
        assert payload["retry_after_s"] == pytest.approx(1.0)
        # the ring rebalanced: the retry routes to the survivor
        status, body, headers = _post(cluster.url)
        assert status == 200
        survivor = headers["X-Cluster-Worker"]
        assert survivor != owner
        health = _get_json(cluster.url, "/healthz")
        assert health["status"] == "degraded"
        assert health["healthy_workers"] == 1

    def test_draining_front_rejects_new_work(self, cluster):
        assert cluster.front.drain(timeout_s=5.0)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(cluster.url)
        assert excinfo.value.code == 503
        excinfo.value.read()
        assert _get_json(cluster.url, "/healthz")["status"] == "draining"

    def test_shared_store_survives_worker_migration(self, cluster, tmp_path):
        """A key that migrates after worker loss cold-starts from the
        shared L2 instead of re-simulating."""
        digest = REQUEST.cache_digest()
        _, first, _ = _post(cluster.url)  # simulated on the owner, stored
        owner = cluster.front.route(digest)
        index = cluster.worker_urls.index(owner)
        survivor_index = 1 - index
        # wipe the survivor's view of L1 so only the shared disk serves
        clear_run_cache()
        cluster.worker_servers[index].shutdown()
        cluster.worker_servers[index].server_close()
        cluster.front.mark_unhealthy(owner, "test kill")
        status, second, headers = _post(cluster.url)
        assert status == 200
        assert second == first  # byte-identical across the migration
        assert headers["X-Cluster-Worker"] == cluster.worker_urls[
            survivor_index
        ]
        survivor = cluster.services[survivor_index]
        assert survivor.registry.counter("serve.simulations").total() == 0.0


class TestHealthSweep:
    def test_sweep_marks_dead_then_recovered(self, cluster):
        owner = cluster.worker_urls[0]
        cluster.worker_servers[0].shutdown()
        cluster.worker_servers[0].server_close()
        cluster.front.check_workers()
        assert owner not in cluster.front.ring
        assert _get_json(cluster.url, "/healthz")["healthy_workers"] == 1
        # recovery path: mark_healthy re-admits (the monitor calls this
        # when /healthz answers again)
        cluster.front.mark_healthy(owner)
        assert owner in cluster.front.ring
