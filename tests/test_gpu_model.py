"""Tests for the GPU configs, timing, energy, and device models."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.gpu import (
    GPU_SYSTEMS,
    GTX980,
    TX1,
    GpuConfig,
    GpuDevice,
    KernelSpec,
    kernel_timing,
)
from repro.mem import GDDR5, MemoryStats, sequential_addresses
from repro.phases import Engine, PhaseKind


class TestConfigs:
    def test_table3_gtx980(self):
        assert GTX980.num_sms == 16
        assert GTX980.max_threads == 16 * 2048
        assert GTX980.clock_hz == 1.27e9
        assert GTX980.l2_bytes == 2 * 1024 * 1024
        assert GTX980.dram.name == "GDDR5"

    def test_table4_tx1(self):
        assert TX1.num_sms == 2
        assert TX1.max_threads == 256
        assert TX1.clock_hz == 1.0e9
        assert TX1.l2_bytes == 256 * 1024
        assert TX1.dram.name == "LPDDR4"

    def test_registry(self):
        assert set(GPU_SYSTEMS) == {"GTX980", "TX1"}

    def test_describe_matches_paper_rows(self):
        rows = dict(GTX980.describe())
        assert rows["GPU, Frequency"] == "GTX980, 1.27GHz"
        assert rows["Streaming Multiprocessors"] == "16 (32768 threads), Maxwell"
        assert "224.0 GB/s" in rows["Main Memory"]

    def test_peak_ops(self):
        assert GTX980.peak_ops_per_s == pytest.approx(16 * 128 * 1.27e9)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            GpuConfig(
                name="bad",
                num_sms=0,
                cores_per_sm=128,
                clock_hz=1e9,
                max_threads_per_sm=2048,
                l1_bytes=1,
                l2_bytes=1,
                shared_bytes_per_sm=1,
                dram=GDDR5,
                l2_bandwidth_bps=1,
                kernel_launch_overhead_s=0,
                issue_efficiency=0.5,
                effective_mshrs_per_sm=8,
                energy_per_instruction_pj=1,
                energy_per_l1_access_pj=1,
                energy_per_l2_access_pj=1,
                energy_per_atomic_pj=1,
                active_power_w=1,
                static_power_w=1,
                die_area_mm2=1,
            )


class TestKernelSpec:
    def test_total_instructions(self):
        spec = KernelSpec("k", PhaseKind.PROCESSING, threads=100, instructions_per_thread=10)
        spec.extra_instructions = 50
        assert spec.total_instructions == 1050

    def test_atomic_count(self):
        spec = KernelSpec("k", PhaseKind.PROCESSING, threads=4)
        spec.atomic(np.array([0, 4, 8]))
        spec.load(np.array([0]))
        assert spec.atomic_count == 3

    def test_negative_threads_rejected(self):
        with pytest.raises(SimulationError):
            KernelSpec("k", PhaseKind.PROCESSING, threads=-1)

    def test_builder_chains(self):
        spec = (
            KernelSpec("k", PhaseKind.COMPACTION, threads=32)
            .load(sequential_addresses(32))
            .store(sequential_addresses(32))
        )
        assert len(spec.accesses) == 2
        assert spec.accesses[1].is_store


class TestTiming:
    def make_device(self, config=TX1):
        return GpuDevice(config)

    def test_zero_work_costs_only_overhead(self):
        device = self.make_device()
        timing = kernel_timing(
            device.config, device.hierarchy, instructions=0, memory=MemoryStats()
        )
        assert timing.total_s == pytest.approx(TX1.kernel_launch_overhead_s)

    def test_compute_bound_kernel(self):
        device = self.make_device()
        timing = kernel_timing(
            device.config,
            device.hierarchy,
            instructions=10**9,
            memory=MemoryStats(),
        )
        assert timing.bottleneck == "compute"
        assert timing.compute_s == pytest.approx(
            1e9 / (TX1.peak_ops_per_s * TX1.issue_efficiency)
        )

    def test_memory_bound_kernel(self):
        device = self.make_device()
        memory = MemoryStats(
            accesses=10**7,
            transactions=10**7,
            dram_accesses=10**7,
            dram_bytes=32 * 10**7,
            row_hit_fraction=0.0,
        )
        timing = kernel_timing(
            device.config, device.hierarchy, instructions=100, memory=memory
        )
        assert timing.bottleneck in ("dram", "latency")
        assert timing.total_s > 0.01

    def test_divergence_slows_kernel(self):
        """Same accesses, different coalescing -> different time."""
        device = self.make_device()
        coalesced = MemoryStats(
            accesses=2**20, transactions=2**15, dram_accesses=2**15,
            dram_bytes=32 * 2**15, row_hit_fraction=0.9,
        )
        divergent = MemoryStats(
            accesses=2**20, transactions=2**20, dram_accesses=2**20,
            dram_bytes=32 * 2**20, row_hit_fraction=0.1,
        )
        t_good = kernel_timing(device.config, device.hierarchy, instructions=0, memory=coalesced)
        t_bad = kernel_timing(device.config, device.hierarchy, instructions=0, memory=divergent)
        assert t_bad.total_s > 5 * t_good.total_s

    def test_atomics_add_time(self):
        device = self.make_device()
        t = kernel_timing(
            device.config, device.hierarchy, instructions=0,
            memory=MemoryStats(), atomics=10**7,
        )
        assert t.atomic_s > 0
        assert t.bottleneck == "atomic"


class TestDevice:
    def test_run_produces_gpu_phase(self):
        device = GpuDevice(TX1)
        spec = KernelSpec(
            "toy", PhaseKind.PROCESSING, threads=1024, instructions_per_thread=8
        )
        spec.load(sequential_addresses(1024, elem_bytes=4))
        report = device.run(spec)
        assert report.engine is Engine.GPU
        assert report.kind is PhaseKind.PROCESSING
        assert report.elements == 1024
        assert report.instructions == 8192
        assert report.time_s > 0
        assert report.dynamic_energy_j > 0
        assert report.memory.transactions == 1024 * 4 // 32

    def test_coalesced_cheaper_than_divergent(self):
        device = GpuDevice(TX1)
        rng = np.random.default_rng(3)
        n = 1 << 16
        good = KernelSpec("good", PhaseKind.PROCESSING, threads=n)
        good.load(sequential_addresses(n, elem_bytes=4))
        bad = KernelSpec("bad", PhaseKind.PROCESSING, threads=n)
        bad.load(rng.integers(0, 1 << 28, size=n) * 4)
        r_good = device.run(good)
        r_bad = device.run(bad)
        assert r_bad.time_s > r_good.time_s
        assert r_bad.dynamic_energy_j > r_good.dynamic_energy_j

    def test_gtx980_faster_than_tx1(self):
        n = 1 << 18
        spec = lambda: KernelSpec(
            "k", PhaseKind.PROCESSING, threads=n, instructions_per_thread=20
        ).load(sequential_addresses(n, elem_bytes=4))
        t_hp = GpuDevice(GTX980).run(spec()).time_s
        t_lp = GpuDevice(TX1).run(spec()).time_s
        assert t_hp < t_lp

    def test_empty_kernel(self):
        device = GpuDevice(TX1)
        report = device.run(KernelSpec("empty", PhaseKind.COMPACTION, threads=0))
        assert report.time_s == pytest.approx(TX1.kernel_launch_overhead_s)
        assert report.memory.transactions == 0
