"""Tests for the observability layer (tracing, metrics, profiles).

The load-bearing guarantee is the A/B determinism test: attaching a
live tracer + metrics registry to a run must leave every simulated
number bit-identical, because instrumentation only *reads*.
"""

import json
import math

import numpy as np
import pytest

from repro.algorithms.common import SystemMode
from repro.algorithms.runner import (
    RUN_CACHE_SIZE,
    _RUN_CACHE,
    cached_run,
    clear_run_cache,
    run_algorithm,
)
from repro.errors import ObservabilityError
from repro.graph.datasets import load_dataset
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_OBS,
    LruCache,
    MetricsRegistry,
    Observability,
    Tracer,
    global_metrics,
    make_observability,
    merge_flat_snapshots,
    quantile_from_buckets,
    sim_profile,
    wall_profile,
)
from repro.phases import RunReport
from repro.request import RunRequest


class FakeClock:
    """Deterministic ns clock: each read advances by one microsecond."""

    def __init__(self):
        self.ns = 0

    def __call__(self) -> int:
        self.ns += 1_000
        return self.ns


class TestTracer:
    def test_span_nesting_and_ordering(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.depth == 2
            tracer.instant("marker")
        assert tracer.depth == 0
        shape = [(e["name"], e["ph"]) for e in tracer.events]
        assert shape == [
            ("outer", "B"),
            ("inner", "B"),
            ("inner", "E"),
            ("marker", "i"),
            ("outer", "E"),
        ]
        # fake clock => timestamps strictly increase by 1us per event
        ts = [e["ts"] for e in tracer.events]
        assert ts == sorted(ts) and len(set(ts)) == len(ts)

    def test_end_without_begin_raises(self):
        with pytest.raises(ObservabilityError):
            Tracer(clock=FakeClock()).end()

    def test_counter_requires_values(self):
        with pytest.raises(ObservabilityError):
            Tracer(clock=FakeClock()).counter("frontier.size")

    def test_annotate_lands_on_end_event(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("phase") as span:
            span.annotate(sim_time_s=1.5)
        end = tracer.events[-1]
        assert end["ph"] == "E" and end["args"] == {"sim_time_s": 1.5}

    def test_chrome_trace_schema(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a", "cat", depth=0):
            tracer.counter("frontier.size", nodes=7)
        path = tmp_path / "trace.json"
        tracer.write_chrome(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in {"B", "E", "i", "C"}
        begins = sum(e["ph"] == "B" for e in events)
        ends = sum(e["ph"] == "E" for e in events)
        assert begins == ends

    def test_jsonl_round_trips(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["ph"] for e in lines] == ["B", "E"]

    def test_null_tracer_records_nothing(self):
        tracer = NULL_OBS.tracer
        with tracer.span("a") as span:
            span.annotate(x=1)
        tracer.instant("b")
        tracer.counter("c", v=1)
        assert tracer.events == [] and not tracer.enabled


class TestMetrics:
    def test_counter_label_aggregation(self):
        registry = MetricsRegistry()
        counter = registry.counter("scu.op.count")
        counter.inc(op="filter")
        counter.inc(2.0, op="filter")
        counter.inc(op="compact")
        assert counter.value(op="filter") == 3.0
        assert counter.value(op="compact") == 1.0
        assert counter.value(op="missing") == 0.0
        assert counter.total() == 4.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("x").inc(-1.0)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("mem.l2.capacity")
        gauge.set(10, device="TX1")
        gauge.set(20, device="TX1")
        assert gauge.value(device="TX1") == 20.0
        with pytest.raises(ObservabilityError):
            gauge.value(device="GTX980")

    def test_histogram_scalar_and_vectorized_agree(self):
        registry = MetricsRegistry()
        h1 = registry.histogram("a")
        h2 = registry.histogram("b")
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        for v in values:
            h1.observe(v, alg="bfs")
        h2.observe_many(np.array(values), alg="bfs")
        assert h1.stats(alg="bfs") == h2.stats(alg="bfs")
        stats = h1.stats(alg="bfs")
        assert stats["count"] == 5 and stats["min"] == 1.0 and stats["max"] == 5.0
        assert stats["mean"] == pytest.approx(2.8)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.histogram("x")

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3, cache="l2")
        snap = registry.snapshot()
        assert snap["hits"]["kind"] == "counter"
        assert snap["hits"]["series"] == [{"labels": {"cache": "l2"}, "value": 3.0}]
        assert "hits{cache=l2} 3" in registry.render()

    def test_null_metrics_retains_nothing(self):
        registry = NULL_OBS.metrics
        registry.counter("x").inc(5)
        registry.histogram("y").observe(1.0)
        assert registry.names() == [] and not registry.enabled


class TestFlatSnapshot:
    """The label-flattened JSON form bench artifacts embed."""

    @staticmethod
    def populate(registry, order):
        """Record the same data in a caller-chosen order."""
        for step in order:
            if step == "counter-b":
                registry.counter("scu.ops").inc(2, op="group")
            elif step == "counter-a":
                registry.counter("scu.ops").inc(3, op="filter")
            elif step == "gauge":
                registry.gauge("mem.l2.rate").set(0.5, gpu="TX1")
            elif step == "hist":
                registry.histogram("frontier").observe_many([1.0, 3.0], alg="bfs")

    def test_entries_are_label_flattened(self):
        registry = MetricsRegistry()
        self.populate(registry, ("counter-a", "gauge", "hist"))
        snap = registry.flat_snapshot()
        assert {e["metric"] for e in snap} == {"scu.ops", "mem.l2.rate", "frontier"}
        counter = next(e for e in snap if e["metric"] == "scu.ops")
        assert counter == {
            "metric": "scu.ops",
            "kind": "counter",
            "labels": "{op=filter}",
            "value": 3.0,
        }
        hist = next(e for e in snap if e["metric"] == "frontier")
        assert hist["kind"] == "histogram"
        assert hist["count"] == 2 and hist["mean"] == pytest.approx(2.0)

    def test_ordering_is_insertion_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        self.populate(a, ("counter-a", "counter-b", "gauge", "hist"))
        self.populate(b, ("hist", "gauge", "counter-b", "counter-a"))
        assert a.flat_snapshot() == b.flat_snapshot()

    def test_sorted_by_metric_then_labels(self):
        registry = MetricsRegistry()
        self.populate(registry, ("counter-b", "counter-a"))
        registry.counter("a.first").inc()
        snap = registry.flat_snapshot()
        assert [(e["metric"], e["labels"]) for e in snap] == [
            ("a.first", ""),
            ("scu.ops", "{op=filter}"),
            ("scu.ops", "{op=group}"),
        ]

    def test_json_serializable(self):
        registry = MetricsRegistry()
        self.populate(registry, ("counter-a", "hist"))
        json.dumps(registry.flat_snapshot(), allow_nan=False)


class TestProfiles:
    def test_wall_profile_self_time(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        rows = {r["name"]: r for r in wall_profile(tracer)}
        assert set(rows) == {"outer", "inner"}
        # outer's self time excludes inner's whole duration
        assert rows["outer"]["self_us"] == pytest.approx(
            rows["outer"]["total_us"] - rows["inner"]["total_us"]
        )
        assert rows["outer"]["count"] == 1

    def test_sim_profile_attribution_sums_to_total(self):
        graph = load_dataset("human", seed=42)
        report = run_algorithm(
            "bfs", graph, "TX1", SystemMode.SCU_ENHANCED
        ).report
        rows = sim_profile(report)
        assert sum(r["time_s"] for r in rows) == pytest.approx(report.time_s())
        assert sum(r["count"] for r in rows) == len(report.phases)
        assert rows == sorted(rows, key=lambda r: r["time_s"], reverse=True)


class TestDeterminism:
    """Tracing must not change a single simulated number."""

    @pytest.mark.parametrize("algorithm", ["bfs", "sssp", "pagerank"])
    def test_observed_run_is_bit_identical(self, algorithm):
        graph = load_dataset("human", seed=42)
        kwargs = {} if algorithm == "pagerank" else {"source": 0}
        outcome = run_algorithm(
            algorithm, graph, "TX1", SystemMode.SCU_ENHANCED, **kwargs
        )
        plain = outcome.result
        plain_report = outcome.report
        obs = make_observability()
        outcome = run_algorithm(
            algorithm, graph, "TX1", SystemMode.SCU_ENHANCED, obs=obs, **kwargs
        )
        traced = outcome.result
        traced_report = outcome.report
        # observation actually happened...
        assert obs.tracer.events and obs.metrics.names()
        # ...and changed nothing
        assert np.array_equal(plain, traced)
        assert traced_report.time_s() == plain_report.time_s()
        assert traced_report.total_energy_j() == plain_report.total_energy_j()
        assert traced_report.dram_bytes() == plain_report.dram_bytes()
        assert len(traced_report.phases) == len(plain_report.phases)
        for a, b in zip(plain_report.phases, traced_report.phases):
            assert a.name == b.name
            assert a.time_s == b.time_s
            assert a.dynamic_energy_j == b.dynamic_energy_j
            assert a.memory.dram_bytes == b.memory.dram_bytes


class TestLruCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError, match="capacity"):
            LruCache(0)

    def test_get_put_and_bound(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # now "b" is LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_counters_report_to_registry(self):
        registry = MetricsRegistry()
        cache = LruCache(1, metrics_prefix="test.cache", registry=registry)
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts "a"
        assert registry.counter("test.cache.misses").total() == 1
        assert registry.counter("test.cache.hits").total() == 1
        assert registry.counter("test.cache.evictions").total() == 1

    def test_contains_is_passive(self):
        registry = MetricsRegistry()
        cache = LruCache(4, metrics_prefix="test.cache", registry=registry)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert registry.counter("test.cache.hits").total() == 0
        assert registry.counter("test.cache.misses").total() == 0

    def test_clear(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and "a" not in cache

    def test_concurrent_hammer_stays_consistent(self):
        """Regression: the cache backs the shared run cache and the
        serve daemon's leader-span cache under ThreadingHTTPServer; an
        unlocked OrderedDict corrupts under concurrent move_to_end /
        popitem.  Hammer it from many threads and require no exceptions
        and an in-bound final state."""
        import threading as _threading

        cache = LruCache(8, metrics_prefix="hammer", registry=MetricsRegistry())
        errors = []
        start = _threading.Barrier(8)

        def worker(tid):
            try:
                start.wait(10.0)
                for i in range(2000):
                    key = (tid * 7 + i) % 24
                    if i % 3 == 0:
                        cache.put(key, (tid, i))
                    elif i % 3 == 1:
                        cache.get(key)
                    else:
                        key in cache  # noqa: B015 — passive probe
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [
            _threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert errors == []
        assert len(cache) <= 8
        # every surviving entry is readable
        for key in range(24):
            cache.get(key)


class TestMergeFlatSnapshots:
    def test_counters_sum_gauges_take_last(self):
        a = [
            {"metric": "c", "kind": "counter", "labels": "", "value": 2.0},
            {"metric": "g", "kind": "gauge", "labels": "", "value": 1.0},
        ]
        b = [
            {"metric": "c", "kind": "counter", "labels": "", "value": 3.0},
            {"metric": "g", "kind": "gauge", "labels": "", "value": 7.0},
        ]
        merged = {(e["metric"], e["kind"]): e for e in merge_flat_snapshots([a, b])}
        assert merged[("c", "counter")]["value"] == 5.0
        assert merged[("g", "gauge")]["value"] == 7.0

    def test_histograms_pool(self):
        a = [{
            "metric": "h", "kind": "histogram", "labels": "",
            "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }]
        b = [{
            "metric": "h", "kind": "histogram", "labels": "",
            "count": 1, "sum": 9.0, "min": 9.0, "max": 9.0, "mean": 9.0,
        }]
        (merged,) = merge_flat_snapshots([a, b])
        assert merged["count"] == 3
        assert merged["sum"] == 13.0
        assert merged["min"] == 1.0
        assert merged["max"] == 9.0
        assert merged["mean"] == pytest.approx(13.0 / 3)

    def test_distinct_labels_stay_separate(self):
        a = [{"metric": "c", "kind": "counter", "labels": "x=1", "value": 1.0}]
        b = [{"metric": "c", "kind": "counter", "labels": "x=2", "value": 1.0}]
        assert len(merge_flat_snapshots([a, b])) == 2

    def test_output_is_sorted_and_deterministic(self):
        a = [{"metric": "z", "kind": "counter", "labels": "", "value": 1.0}]
        b = [{"metric": "a", "kind": "counter", "labels": "", "value": 1.0}]
        assert merge_flat_snapshots([a, b]) == merge_flat_snapshots([b, a])
        metrics = [e["metric"] for e in merge_flat_snapshots([a, b])]
        assert metrics == sorted(metrics)


class TestRunCacheLru:
    def test_cache_hit_miss_metrics_and_bound(self):
        clear_run_cache()
        hits = global_metrics().counter("runner.cache.hits")
        misses = global_metrics().counter("runner.cache.misses")
        h0, m0 = hits.total(), misses.total()
        first = cached_run("bfs", "human", "TX1", SystemMode.GPU)
        assert misses.total() == m0 + 1
        again = cached_run("bfs", "human", "TX1", SystemMode.GPU)
        assert again is first
        assert hits.total() == h0 + 1

    def test_cache_evicts_oldest_beyond_bound(self):
        clear_run_cache()
        # fill past the bound with fake entries shaped like real keys
        # (RunRequest.cache_key 6-tuples)
        for i in range(RUN_CACHE_SIZE):
            _RUN_CACHE[("fake", i, "TX1", SystemMode.GPU, 42, ())] = object()
        cached_run("bfs", "human", "TX1", SystemMode.GPU)
        assert len(_RUN_CACHE) == RUN_CACHE_SIZE
        # the oldest fake entry was evicted, the real run is resident
        assert ("fake", 0, "TX1", SystemMode.GPU, 42, ()) not in _RUN_CACHE
        real_key = RunRequest.make("bfs", "human", "TX1", SystemMode.GPU).cache_key()
        assert real_key in _RUN_CACHE
        clear_run_cache()


class TestCompactionFractionNan:
    def test_empty_report_yields_nan(self):
        report = RunReport(algorithm="bfs", system="gpu", dataset="none")
        assert math.isnan(report.compaction_time_fraction())

    def test_injection_through_build_system(self):
        obs = Observability()
        graph = load_dataset("human", seed=42)
        system = run_algorithm(
            "bfs", graph, "TX1", SystemMode.SCU_ENHANCED, obs=obs
        ).system
        # every layer shares the injected bundle
        assert system.obs is obs
        assert system.gpu.obs is obs
        assert system.gpu.hierarchy.obs is obs
        assert system.scu.obs is obs


class TestBucketedHistograms:
    def test_bucket_counts_are_le_inclusive(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 1.0, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()[0]
        # cumulative pairs: le=0.1 catches 0.05 and 0.1 (le-inclusive)
        assert snap["buckets"] == [
            ["0.1", 2],
            ["1", 4],
            ["10", 5],
            ["+Inf", 6],
        ]
        assert snap["count"] == 6

    def test_observe_and_observe_many_fill_identical_buckets(self):
        registry = MetricsRegistry()
        values = [0.0004, 0.0005, 0.003, 0.2, 7.0, 100.0]
        a = registry.histogram("a", buckets=DEFAULT_LATENCY_BUCKETS)
        b = registry.histogram("b", buckets=DEFAULT_LATENCY_BUCKETS)
        for v in values:
            a.observe(v)
        b.observe_many(np.array(values))
        assert a.snapshot()[0]["buckets"] == b.snapshot()[0]["buckets"]

    def test_quantile_interpolates_and_clamps(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe_many(np.linspace(0.1, 3.9, 100))
        # quantiles are monotone and never leave the observed range
        q50 = h.quantile(0.5)
        q95 = h.quantile(0.95)
        assert 0.1 <= q50 <= q95 <= 3.9
        assert h.quantile(0.0) == pytest.approx(0.1)
        assert h.quantile(1.0) == pytest.approx(3.9)

    def test_quantile_without_buckets_raises(self):
        registry = MetricsRegistry()
        h = registry.histogram("plain")
        h.observe(1.0)
        with pytest.raises(ObservabilityError):
            h.quantile(0.5)

    def test_bucket_mismatch_on_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        registry.histogram("lat")  # no buckets requested: fine
        registry.histogram("lat", buckets=(1.0, 2.0))  # same: fine
        with pytest.raises(ObservabilityError):
            registry.histogram("lat", buckets=(1.0, 3.0))

    def test_quantile_from_buckets_linear_case(self):
        # 100 observations uniform in one bucket [0, 10]
        cumulative = [(10.0, 100.0), (math.inf, 100.0)]
        assert quantile_from_buckets(cumulative, 0.5) == pytest.approx(5.0)
        assert quantile_from_buckets(cumulative, 0.99) == pytest.approx(9.9)
        assert quantile_from_buckets([], 0.5) == 0.0

    def test_quantile_from_buckets_empty_histogram(self):
        # No buckets at all, and buckets that never saw an observation,
        # both answer 0.0 rather than raising or returning NaN.
        assert quantile_from_buckets([], 0.99) == 0.0
        assert quantile_from_buckets([(10.0, 0.0), (math.inf, 0.0)], 0.5) == 0.0

    def test_quantile_from_buckets_all_in_inf_bucket(self):
        # Every observation above the largest finite bound: without an
        # observed max the estimate collapses to the last finite bound
        # (never a fabricated +Inf); ``hi`` re-opens interpolation.
        everything_above = [(10.0, 0.0), (math.inf, 5.0)]
        assert quantile_from_buckets(everything_above, 0.9) == pytest.approx(10.0)
        assert quantile_from_buckets(
            everything_above, 0.9, hi=20.0
        ) == pytest.approx(19.0)
        # Degenerate single +Inf bucket: no finite bound to fall back on.
        assert quantile_from_buckets([(math.inf, 5.0)], 0.5) == 0.0
        assert quantile_from_buckets(
            [(math.inf, 5.0)], 0.5, hi=3.0
        ) == pytest.approx(1.5)

    def test_quantile_from_buckets_single_observation(self):
        one = [(1.0, 1.0), (math.inf, 1.0)]
        # Any quantile interpolates inside the one occupied bucket ...
        assert quantile_from_buckets(one, 0.5) == pytest.approx(0.5)
        assert quantile_from_buckets(one, 0.99) == pytest.approx(0.99)
        # ... and lo/hi clamp the estimate into the observed range.
        clamped = quantile_from_buckets(one, 0.5, lo=0.8, hi=0.9)
        assert 0.8 <= clamped <= 0.9

    def test_prometheus_exposition_has_buckets_and_types(self):
        from repro.obs import check_exposition

        registry = MetricsRegistry()
        h = registry.histogram("lat.total", buckets=(0.5, 1.0))
        h.observe(0.2, route="run")
        h.observe(0.7, route="run")
        registry.counter("req").inc(route="a\\b\"c\nd")  # escaping probe
        text = registry.render_prometheus()
        samples = check_exposition(text)  # raises on malformed output
        by_key = {s.key(): s.value for s in samples}
        assert by_key['lat_total_bucket{le=0.5,route=run}'] == 1.0
        assert by_key['lat_total_bucket{le=1,route=run}'] == 2.0
        assert by_key['lat_total_bucket{le=+Inf,route=run}'] == 2.0
        assert by_key['lat_total_count{route=run}'] == 2.0
        assert by_key['lat_total_sum{route=run}'] == pytest.approx(0.9)
        # the escaped label round-trips through the parser
        escaped = next(s for s in samples if s.name == "req")
        assert escaped.labels_dict()["route"] == 'a\\b"c\nd'
        # every emitted series family is TYPE-announced
        _, types = __import__(
            "repro.obs.promtext", fromlist=["parse_exposition"]
        ).parse_exposition(text)
        assert types["lat_total"] == "histogram"
        assert types["req"] == "counter"

    def test_merge_flat_snapshots_pools_buckets(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        for registry, values in ((r1, [0.2]), (r2, [0.7, 2.0])):
            h = registry.histogram("lat", buckets=(0.5, 1.0))
            for v in values:
                h.observe(v)
        merged = merge_flat_snapshots([r1.flat_snapshot(), r2.flat_snapshot()])
        entry = next(e for e in merged if e["metric"] == "lat")
        assert entry["count"] == 3
        assert entry["buckets"] == [["0.5", 1], ["1", 2], ["+Inf", 3]]

    def test_merge_expositions_sums_and_stays_conformant(self):
        """The cluster front's /metrics merge: sum by identity, union
        TYPE lines, and re-emit something the checker accepts."""
        from repro.obs import check_exposition
        from repro.obs.promtext import merge_expositions, sum_by_name

        def scrape(count, bucket_values):
            registry = MetricsRegistry()
            registry.counter("serve.requests").inc(count, route="run")
            h = registry.histogram("lat.total", buckets=(0.5, 1.0))
            for v in bucket_values:
                h.observe(v)
            return registry.render_prometheus()

        merged = merge_expositions([scrape(3, [0.2]), scrape(4, [0.7])])
        samples = check_exposition(merged)  # raises on malformed merge
        assert sum_by_name(samples, "serve_requests") == 7.0
        by_key = {s.key(): s.value for s in samples}
        assert by_key["lat_total_bucket{le=0.5}"] == 1.0
        assert by_key["lat_total_bucket{le=+Inf}"] == 2.0
        assert by_key["lat_total_count"] == 2.0

    def test_merge_expositions_preserves_label_escapes(self):
        from repro.obs.promtext import merge_expositions, parse_exposition

        registry = MetricsRegistry()
        registry.counter("req").inc(route='a\\b"c\nd')
        merged = merge_expositions(
            [registry.render_prometheus(), registry.render_prometheus()]
        )
        samples, _ = parse_exposition(merged)
        escaped = next(s for s in samples if s.name == "req")
        assert escaped.labels_dict()["route"] == 'a\\b"c\nd'
        assert escaped.value == 2.0

    def test_merge_expositions_empty(self):
        from repro.obs.promtext import merge_expositions

        assert merge_expositions([]) == ""


class TestServeTelemetryAB:
    """Telemetry on vs off must not change a single response byte."""

    REQUEST = {
        "algorithm": "bfs",
        "dataset": "human",
        "gpu": "TX1",
        "mode": "scu-enhanced",
    }

    def _serve_one(self, config):
        import threading
        import urllib.request

        from repro.serve import SimulationService, make_server

        clear_run_cache()
        service = SimulationService(config)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        try:
            request = urllib.request.Request(
                f"http://{host}:{port}/run",
                data=json.dumps(self.REQUEST).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60.0) as response:
                return response.read()
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            service.close()
            clear_run_cache()

    def test_responses_identical_with_telemetry_on_off(self, tmp_path):
        from repro.algorithms import execute_request
        from repro.serve import ServiceConfig, encode, run_response

        body_on = self._serve_one(
            ServiceConfig(
                port=0,
                telemetry=True,
                access_log=str(tmp_path / "access.jsonl"),
            )
        )
        body_off = self._serve_one(ServiceConfig(port=0, telemetry=False))
        assert body_on == body_off
        # ... and both equal the in-process simulation, so telemetry
        # changed no simulated metric either.
        request = RunRequest.make("bfs", "human", "TX1", "scu-enhanced")
        local = execute_request(request).report
        assert body_on == encode(run_response(request, local))
