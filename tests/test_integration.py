"""End-to-end integration tests: the paper's shape claims on a small grid.

The full grid is exercised by ``benchmarks/``; these tests pin the
qualitative conclusions on a fast subset so plain ``pytest tests/``
catches any regression of the reproduction itself.
"""

import numpy as np
import pytest

from repro.algorithms import SystemMode, run_algorithm
from repro.graph import load_dataset
from repro.phases import Engine, PhaseKind

pytestmark = pytest.mark.integration


#: The SCU variants (the paper's Figures 9-11 compare these to the GPU
#: baseline; the IRU backend has its own shape tests below).
SCU_MODES = (SystemMode.SCU_BASIC, SystemMode.SCU_ENHANCED)


@pytest.fixture(scope="module")
def reports():
    """BFS/SSSP/PR on human (duplicate-heavy) for both GPUs, all modes."""
    out = {}
    graph = load_dataset("human")
    for gpu in ("GTX980", "TX1"):
        for algorithm in ("bfs", "sssp", "pagerank"):
            for mode in SystemMode:
                if algorithm == "pagerank" and mode is SystemMode.SCU_ENHANCED:
                    continue
                outcome = run_algorithm(algorithm, graph, gpu, mode)
                out[(gpu, algorithm, mode)] = outcome.report
    return out


class TestPaperShapes:
    def test_compaction_is_major_fraction_of_baseline(self, reports):
        """Figure 1's claim."""
        for gpu in ("GTX980", "TX1"):
            for algorithm in ("bfs", "sssp"):
                fraction = reports[
                    (gpu, algorithm, SystemMode.GPU)
                ].compaction_time_fraction()
                assert 0.25 < fraction < 0.95

    def test_traversals_speed_up_on_both_gpus(self, reports):
        """Figure 10's claim."""
        for gpu in ("GTX980", "TX1"):
            for algorithm in ("bfs", "sssp"):
                base = reports[(gpu, algorithm, SystemMode.GPU)].time_s()
                enh = reports[(gpu, algorithm, SystemMode.SCU_ENHANCED)].time_s()
                assert base / enh > 1.2, (gpu, algorithm)

    def test_energy_savings_everywhere(self, reports):
        """Figure 9's claim (including PR)."""
        for (gpu, algorithm, mode), report in reports.items():
            if mode not in SCU_MODES:
                continue
            base = reports[(gpu, algorithm, SystemMode.GPU)]
            assert report.total_energy_j() < base.total_energy_j(), (gpu, algorithm, mode)

    def test_enhanced_beats_basic_for_traversals(self, reports):
        """Figure 11's claim."""
        for gpu in ("GTX980", "TX1"):
            for algorithm in ("bfs", "sssp"):
                basic = reports[(gpu, algorithm, SystemMode.SCU_BASIC)]
                enhanced = reports[(gpu, algorithm, SystemMode.SCU_ENHANCED)]
                assert enhanced.time_s() < basic.time_s()

    def test_filtering_removes_most_gpu_work(self, reports):
        """Section 6.3: ~71-76% instruction reduction on the dup-heavy graph."""
        for gpu in ("GTX980", "TX1"):
            for algorithm in ("bfs", "sssp"):
                base = reports[(gpu, algorithm, SystemMode.GPU)]
                enh = reports[(gpu, algorithm, SystemMode.SCU_ENHANCED)]
                reduction = 1 - enh.instructions(engine=Engine.GPU) / base.instructions(
                    engine=Engine.GPU
                )
                assert reduction > 0.5, (gpu, algorithm, reduction)

    def test_scu_modes_offload_all_compaction(self, reports):
        """Algorithms 1-3: no GPU compaction kernels remain."""
        for (gpu, algorithm, mode), report in reports.items():
            if mode not in SCU_MODES:
                continue
            gpu_compaction = report.select(engine=Engine.GPU, kind=PhaseKind.COMPACTION)
            assert not gpu_compaction, (gpu, algorithm, mode)

    def test_pagerank_is_the_weak_case(self, reports):
        """Section 6.2: PR benefits least (all nodes active, regular)."""
        for gpu in ("GTX980", "TX1"):
            pr_gain = (
                reports[(gpu, "pagerank", SystemMode.GPU)].time_s()
                / reports[(gpu, "pagerank", SystemMode.SCU_BASIC)].time_s()
            )
            bfs_gain = (
                reports[(gpu, "bfs", SystemMode.GPU)].time_s()
                / reports[(gpu, "bfs", SystemMode.SCU_ENHANCED)].time_s()
            )
            assert pr_gain < bfs_gain

    def test_results_are_deterministic(self):
        graph = load_dataset("human")
        a = run_algorithm("bfs", graph, "TX1", SystemMode.SCU_ENHANCED).report
        b = run_algorithm("bfs", graph, "TX1", SystemMode.SCU_ENHANCED).report
        assert a.time_s() == b.time_s()
        assert a.total_energy_j() == b.total_energy_j()


class TestIruShapes:
    """Shape claims of the follow-on IRU backend (arXiv 2007.07131)."""

    def test_iru_speeds_up_divergent_traversals(self, reports):
        """Reordering helps exactly where coalescing is poor."""
        for gpu in ("GTX980", "TX1"):
            for algorithm in ("bfs", "sssp"):
                base = reports[(gpu, algorithm, SystemMode.GPU)].time_s()
                iru = reports[(gpu, algorithm, SystemMode.IRU)].time_s()
                assert base / iru > 1.1, (gpu, algorithm, base / iru)

    def test_iru_saves_energy_on_divergent_traversals(self, reports):
        for gpu in ("GTX980", "TX1"):
            for algorithm in ("bfs", "sssp"):
                base = reports[(gpu, algorithm, SystemMode.GPU)]
                iru = reports[(gpu, algorithm, SystemMode.IRU)]
                assert iru.total_energy_j() < base.total_energy_j(), (gpu, algorithm)

    def test_iru_is_transparent_to_pagerank(self, reports):
        """PR's regular/atomic streams bypass the unit: near-zero effect."""
        for gpu in ("GTX980", "TX1"):
            base = reports[(gpu, "pagerank", SystemMode.GPU)]
            iru = reports[(gpu, "pagerank", SystemMode.IRU)]
            assert iru.time_s() == pytest.approx(base.time_s(), rel=1e-3)
            assert iru.total_energy_j() == pytest.approx(
                base.total_energy_j(), rel=5e-3
            )

    def test_iru_keeps_compaction_on_the_sms(self, reports):
        """Unlike the SCU, the IRU does not offload phase structure."""
        for gpu in ("GTX980", "TX1"):
            iru = reports[(gpu, "bfs", SystemMode.IRU)]
            base = reports[(gpu, "bfs", SystemMode.GPU)]
            iru_compaction = iru.select(engine=Engine.GPU, kind=PhaseKind.COMPACTION)
            base_compaction = base.select(engine=Engine.GPU, kind=PhaseKind.COMPACTION)
            assert len(iru_compaction) == len(base_compaction) > 0
            assert iru.system == "iru" and base.system == "gpu"

    def test_scu_beats_iru_on_traversals(self, reports):
        """Head-to-head: offload (SCU) wins over in-place reorder (IRU),
        which is the SCU paper's pitch — at a much larger area cost."""
        for gpu in ("GTX980", "TX1"):
            for algorithm in ("bfs", "sssp"):
                iru = reports[(gpu, algorithm, SystemMode.IRU)].time_s()
                scu = reports[(gpu, algorithm, SystemMode.SCU_ENHANCED)].time_s()
                assert scu < iru, (gpu, algorithm)
