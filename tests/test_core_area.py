"""Tests for the per-component area/power breakdown."""

import pytest

from repro.core import SCU_GTX980, SCU_TX1
from repro.core.area import (
    area_breakdown,
    power_breakdown_w,
    render_synthesis_report,
    total_area_mm2,
)
from repro.core.energy import scu_static_power_w


class TestAreaBreakdown:
    @pytest.mark.parametrize("config", [SCU_TX1, SCU_GTX980], ids=lambda c: c.name)
    def test_sums_to_headline_area(self, config):
        assert total_area_mm2(config) == pytest.approx(config.area_mm2, rel=1e-9)

    def test_paper_synthesis_points(self):
        assert total_area_mm2(SCU_GTX980) == pytest.approx(13.27, abs=0.01)
        assert total_area_mm2(SCU_TX1) == pytest.approx(3.65, abs=0.01)

    def test_all_components_positive(self):
        for config in (SCU_TX1, SCU_GTX980):
            for row in area_breakdown(config):
                assert row.area_mm2 > 0, row

    def test_lane_components_scale_with_width(self):
        wide = SCU_TX1.with_pipeline_width(8)
        narrow_rows = {r.component: r.scaled(1) for r in area_breakdown(SCU_TX1)}
        wide_rows = {r.component: r.scaled(8) for r in area_breakdown(wide)}
        for component, narrow_area in narrow_rows.items():
            if "per lane" in component:
                assert wide_rows[component] == pytest.approx(8 * narrow_area)
            else:
                assert wide_rows[component] == pytest.approx(narrow_area)

    def test_buffer_area_matches_table1_sizes(self):
        rows = {r.component: r.area_mm2 for r in area_breakdown(SCU_TX1)}
        expected_kb = (5 + 38 + 18)
        assert rows["buffers (Table 1 SRAM)"] == pytest.approx(expected_kb * 0.005)


class TestPowerBreakdown:
    @pytest.mark.parametrize("config", [SCU_TX1, SCU_GTX980], ids=lambda c: c.name)
    def test_sums_to_static_power(self, config):
        total = sum(p for _, p in power_breakdown_w(config))
        assert total == pytest.approx(scu_static_power_w(config), rel=1e-9)

    def test_wider_unit_leaks_more(self):
        narrow = sum(p for _, p in power_breakdown_w(SCU_TX1))
        wide = sum(p for _, p in power_breakdown_w(SCU_GTX980))
        assert wide > narrow


class TestReport:
    def test_render_contains_totals(self):
        text = render_synthesis_report(SCU_GTX980)
        assert "13.27" in text
        assert "data store" in text
        assert "TOTAL" in text
