"""Tests for the unified run API (repro.request).

The contract under test: there is exactly ONE cache-key derivation in
the codebase — :meth:`RunRequest.cache_key` — and the experiment memo,
the run cache, the parallel sweep cells, and the service all agree on
it byte for byte.
"""

import numpy as np
import pytest

from repro import RunOutcome, RunRequest, build_system, run_algorithm
from repro.algorithms import execute_request
from repro.algorithms.common import SystemMode
from repro.errors import ExperimentError, ProtocolError
from repro.graph.datasets import load_dataset
from repro.harness import experiment_key
from repro.harness.parallel import SweepCell


class TestRunRequestConstruction:
    def test_make_normalizes_string_mode(self):
        request = RunRequest.make("bfs", "human", "TX1", "scu-enhanced")
        assert request.mode is SystemMode.SCU_ENHANCED

    def test_make_rejects_unknown_mode(self):
        with pytest.raises(ExperimentError, match="unknown system mode"):
            RunRequest.make("bfs", "human", "TX1", "warp-speed")

    def test_make_sorts_kwargs(self):
        a = RunRequest.make("bfs", "human", "TX1", SystemMode.GPU, source=3)
        b = RunRequest.make("bfs", "human", "TX1", SystemMode.GPU, **{"source": 3})
        assert a == b
        assert a.kwargs == (("source", 3),)

    def test_requests_are_hashable_and_frozen(self):
        request = RunRequest.make("bfs", "human", "TX1", SystemMode.GPU)
        assert hash(request) == hash(RunRequest.make("bfs", "human", "TX1", SystemMode.GPU))
        with pytest.raises(AttributeError):
            request.algorithm = "sssp"


class TestCacheKeyUnification:
    """Every caching layer derives its key from the same place."""

    def test_experiment_key_is_the_request_key(self):
        assert experiment_key("bfs", "human", "TX1", SystemMode.GPU) == (
            RunRequest.make("bfs", "human", "TX1", SystemMode.GPU).cache_key()
        )

    def test_experiment_key_with_kwargs(self):
        assert experiment_key(
            "bfs", "kron", "TX1", SystemMode.SCU_ENHANCED, enable_grouping=False
        ) == RunRequest.make(
            "bfs", "kron", "TX1", SystemMode.SCU_ENHANCED, enable_grouping=False
        ).cache_key()

    def test_sweep_cell_key_is_the_request_key(self):
        cell = SweepCell(
            algorithm="sssp",
            dataset="road",
            gpu="GTX980",
            mode=SystemMode.SCU_BASIC,
            kwargs=(("source", 5),),
        )
        assert cell.key == RunRequest.make(
            "sssp", "road", "GTX980", SystemMode.SCU_BASIC, source=5
        ).cache_key()

    def test_key_includes_seed(self):
        base = RunRequest.make("bfs", "human", "TX1", SystemMode.GPU)
        other = RunRequest.make("bfs", "human", "TX1", SystemMode.GPU, seed=7)
        assert base.cache_key() != other.cache_key()


class TestWireFormat:
    def test_round_trip(self):
        request = RunRequest.make(
            "bfs", "human", "TX1", SystemMode.SCU_ENHANCED, seed=7, source=0
        )
        assert RunRequest.from_dict(request.to_dict()) == request

    def test_defaults(self):
        request = RunRequest.from_dict(
            {"algorithm": "bfs", "dataset": "human", "gpu": "TX1", "mode": "gpu"}
        )
        assert request.seed == 42
        assert request.kwargs == ()

    @pytest.mark.parametrize(
        "payload, match",
        [
            ([], "must be a JSON object"),
            ({"algorithm": "bfs"}, "must be a non-empty string"),
            (
                {"algorithm": "bfs", "dataset": "human", "gpu": "TX1"},
                "must be a non-empty string",
            ),
            (
                {
                    "algorithm": "bfs",
                    "dataset": "human",
                    "gpu": "TX1",
                    "mode": "gpu",
                    "surprise": 1,
                },
                "unknown request fields",
            ),
            (
                {"algorithm": "zork", "dataset": "human", "gpu": "TX1", "mode": "gpu"},
                "unknown algorithm",
            ),
            (
                {"algorithm": "bfs", "dataset": "zork", "gpu": "TX1", "mode": "gpu"},
                "unknown dataset",
            ),
            (
                {"algorithm": "bfs", "dataset": "human", "gpu": "Z80", "mode": "gpu"},
                "unknown gpu",
            ),
            (
                {"algorithm": "bfs", "dataset": "human", "gpu": "TX1", "mode": "zork"},
                "unknown mode",
            ),
            (
                {
                    "algorithm": "bfs",
                    "dataset": "human",
                    "gpu": "TX1",
                    "mode": "gpu",
                    "seed": True,
                },
                "must be an integer",
            ),
            (
                {
                    "algorithm": "bfs",
                    "dataset": "human",
                    "gpu": "TX1",
                    "mode": "gpu",
                    "kwargs": {"source": [1]},
                },
                "must be a JSON scalar",
            ),
        ],
    )
    def test_from_dict_rejects_bad_payloads(self, payload, match):
        with pytest.raises(ProtocolError, match=match):
            RunRequest.from_dict(payload)


class TestRunOutcome:
    def test_tuple_unpacking_still_works_but_warns(self):
        graph = load_dataset("human")
        outcome = run_algorithm("bfs", graph, "TX1", SystemMode.GPU, source=0)
        with pytest.warns(DeprecationWarning, match="RunOutcome"):
            result, report, system = outcome
        assert report.algorithm == "bfs"
        assert system.config.name == "TX1"
        assert result.shape == (graph.num_nodes,)

    def test_attribute_access(self):
        outcome = execute_request(RunRequest.make("bfs", "human", "TX1", SystemMode.GPU))
        assert isinstance(outcome, RunOutcome)
        with pytest.warns(DeprecationWarning):
            as_tuple = tuple(outcome)
        assert outcome.report is as_tuple[1]
        assert outcome.system.has_scu is False

    def test_execute_request_matches_run_algorithm(self):
        request = RunRequest.make("bfs", "human", "TX1", SystemMode.SCU_ENHANCED)
        via_request = execute_request(request)
        graph = load_dataset("human", seed=42)
        direct = run_algorithm("bfs", graph, "TX1", SystemMode.SCU_ENHANCED)
        assert np.array_equal(via_request.result, direct.result)
        assert via_request.report.time_s() == direct.report.time_s()
        assert (
            via_request.report.total_energy_j() == direct.report.total_energy_j()
        )


class TestMemoryScaleConstruction:
    """build_system no longer mutates the hierarchy post-construction."""

    def test_scaled_capacity_set_at_construction(self):
        plain = build_system("TX1", mode="gpu")
        scaled = build_system("TX1", mode="gpu", memory_scale=16.0)
        expected = int(plain.gpu.config.l2_bytes / 16.0)
        assert scaled.gpu.hierarchy.l2_capacity_bytes == expected
        assert scaled.gpu.memory_scale == 16.0

    def test_unscaled_is_exact_hardware_size(self):
        system = build_system("GTX980", mode="gpu")
        assert system.gpu.hierarchy.l2_capacity_bytes == system.gpu.config.l2_bytes
