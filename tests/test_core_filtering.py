"""Tests for hash-table filtering: vectorized == sequential reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HashTableConfig,
    duplicates_removed_fraction,
    filter_best_cost,
    filter_best_cost_reference,
    filter_unique,
    filter_unique_reference,
    hash_slots,
)
from repro.errors import OperationError

SMALL_TABLE = HashTableConfig("t-small", capacity_bytes=8 * 4, ways=1, bytes_per_entry=4)
BIG_TABLE = HashTableConfig("t-big", capacity_bytes=64 * 1024, ways=16, bytes_per_entry=4)
COST_TABLE = HashTableConfig("t-cost", capacity_bytes=64 * 1024, ways=16, bytes_per_entry=8)


class TestHashSlots:
    def test_in_range(self):
        slots = hash_slots(np.arange(1000), 64)
        assert slots.min() >= 0
        assert slots.max() < 64

    def test_deterministic(self):
        a = hash_slots(np.array([42, 7]), 128)
        b = hash_slots(np.array([42, 7]), 128)
        assert np.array_equal(a, b)

    def test_spreads_sequential_keys(self):
        slots = hash_slots(np.arange(4096), 4096)
        # Multiplicative hashing should use most slots for sequential ids.
        assert np.unique(slots).size > 2048

    def test_rejects_empty_table(self):
        with pytest.raises(OperationError):
            hash_slots(np.array([1]), 0)


class TestFilterUnique:
    def test_exact_duplicates_removed(self):
        ids = np.array([5, 5, 5, 5])
        keep = filter_unique(ids, BIG_TABLE)
        assert list(keep) == [True, False, False, False]

    def test_first_occurrence_always_kept(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 100, size=1000)
        keep = filter_unique(ids, BIG_TABLE)
        # every distinct value survives at least once
        assert set(ids[keep].tolist()) == set(ids.tolist())

    def test_no_duplicates_all_kept_with_big_table(self):
        ids = np.arange(100)
        keep = filter_unique(ids, BIG_TABLE)
        assert keep.all()

    def test_collisions_cause_false_negatives(self):
        # With an 8-entry table, distinct ids evict each other, letting
        # interleaved duplicates survive: lossy but safe.
        ids = np.tile(np.arange(64), 4)
        keep = filter_unique(ids, SMALL_TABLE)
        assert keep.sum() > 64  # some duplicates escaped
        assert set(ids[keep].tolist()) == set(ids.tolist())  # nothing lost

    def test_empty(self):
        assert filter_unique(np.array([], dtype=np.int64), BIG_TABLE).size == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=300),
        st.sampled_from([1, 2, 8, 64, 1024]),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, raw, entries):
        table = HashTableConfig("t", capacity_bytes=entries * 4, ways=1, bytes_per_entry=4)
        ids = np.asarray(raw, dtype=np.int64)
        assert np.array_equal(
            filter_unique(ids, table), filter_unique_reference(ids, table)
        )


class TestFilterBestCost:
    def test_better_cost_kept(self):
        ids = np.array([3, 3, 3])
        costs = np.array([5.0, 2.0, 4.0])
        keep = filter_best_cost(ids, costs, COST_TABLE)
        assert list(keep) == [True, True, False]

    def test_equal_cost_dropped(self):
        ids = np.array([3, 3])
        costs = np.array([5.0, 5.0])
        keep = filter_best_cost(ids, costs, COST_TABLE)
        assert list(keep) == [True, False]

    def test_distinct_ids_all_kept(self):
        keep = filter_best_cost(np.arange(50), np.ones(50), COST_TABLE)
        assert keep.all()

    def test_eviction_resets_cost(self):
        # Two ids colliding in a 1-entry table: each arrival evicts the
        # other, so the "seen best cost" is forgotten.
        table = HashTableConfig("t1", capacity_bytes=8, ways=1, bytes_per_entry=8)
        ids = np.array([1, 2, 1])
        costs = np.array([1.0, 1.0, 9.0])
        keep = filter_best_cost(ids, costs, table)
        assert list(keep) == [True, True, True]

    def test_parallel_arrays_checked(self):
        with pytest.raises(OperationError):
            filter_best_cost(np.array([1, 2]), np.array([1.0]), COST_TABLE)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=0,
            max_size=300,
        ),
        st.sampled_from([1, 2, 8, 64, 1024]),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, pairs, entries):
        table = HashTableConfig("t", capacity_bytes=entries * 8, ways=1, bytes_per_entry=8)
        ids = np.array([p[0] for p in pairs], dtype=np.int64)
        costs = np.array([float(p[1]) for p in pairs])
        assert np.array_equal(
            filter_best_cost(ids, costs, table),
            filter_best_cost_reference(ids, costs, table),
        )


class TestEffectiveness:
    def test_duplicates_removed_fraction(self):
        keep = np.array([True, False, False, True])
        assert duplicates_removed_fraction(keep) == 0.5

    def test_empty_fraction(self):
        assert duplicates_removed_fraction(np.array([], dtype=bool)) == 0.0

    def test_larger_table_filters_no_worse(self):
        """Table 2's size knob: bigger hash -> more duplicates caught."""
        rng = np.random.default_rng(5)
        # heavy duplication, ids spread over a big range
        ids = rng.integers(0, 5000, size=50_000)
        small = HashTableConfig("s", 256 * 4, 1, 4)
        large = HashTableConfig("l", 16384 * 4, 1, 4)
        removed_small = duplicates_removed_fraction(filter_unique(ids, small))
        removed_large = duplicates_removed_fraction(filter_unique(ids, large))
        assert removed_large > removed_small

    def test_paper_scale_removal_rate(self):
        """A Table 2-sized hash removes the vast majority of duplicates."""
        rng = np.random.default_rng(6)
        ids = rng.integers(0, 16384, size=200_000)  # ~92% duplicates
        table = HashTableConfig("bfs", 132 * 1024, 16, 4)  # TX1 BFS table
        keep = filter_unique(ids, table)
        duplicate_rate = 1 - np.unique(ids).size / ids.size
        removed = duplicates_removed_fraction(keep)
        assert removed > 0.8 * duplicate_rate
