"""Tests for the experiment harness (small sweeps; full grid is benchmarked)."""

import pytest

from repro.errors import ExperimentError
from repro.harness import (
    EXPERIMENTS,
    ExperimentResult,
    fig1_compaction_breakdown,
    fig11_basic_vs_enhanced,
    fig12_grouping_coalescing,
    fig13_bandwidth_utilization,
    fig9_normalized_energy,
    fig10_normalized_time,
    normalized,
    render_key_value,
    render_table,
    run_experiment,
    speedup,
    table1_scu_parameters,
    table5_datasets,
)

SMALL = {"datasets": ("human",), "gpus": ("TX1",)}


class TestResultContainer:
    def make(self):
        result = ExperimentResult("x", "test", ("a", "b"))
        result.add_row(1, 2)
        result.add_row(3, 4)
        return result

    def test_add_row_checks_arity(self):
        with pytest.raises(ExperimentError, match="row has"):
            self.make().add_row(1)

    def test_column(self):
        assert self.make().column("b") == [2, 4]

    def test_column_unknown(self):
        with pytest.raises(ExperimentError, match="no column"):
            self.make().column("zzz")

    def test_lookup(self):
        rows = self.make().lookup(a=3)
        assert rows == [{"a": 3, "b": 4}]

    def test_lookup_unknown_column(self):
        with pytest.raises(ExperimentError):
            self.make().lookup(q=1)

    def test_normalized_and_speedup(self):
        assert normalized(2.0, 4.0) == 0.5
        assert speedup(4.0, 2.0) == 2.0
        with pytest.raises(ExperimentError):
            normalized(1.0, 0.0)
        with pytest.raises(ExperimentError):
            speedup(1.0, 0.0)


class TestRendering:
    def test_render_table_contains_all_cells(self):
        result = ExperimentResult("id", "Title", ("col1", "col2"))
        result.add_row("x", 1.2345)
        result.add_note("a note")
        text = render_table(result)
        assert "id: Title" in text
        assert "col1" in text and "x" in text and "1.23" in text
        assert "note: a note" in text

    def test_render_key_value(self):
        text = render_key_value("T", [("k", "v"), ("key2", "v2")])
        assert "k    : v" in text


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig1", "fig9", "fig10", "fig11", "fig12", "fig13",
            "table1", "table2", "table3/4", "table5", "headline",
            "iru",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("table1")
        assert result.experiment_id == "table1"


class TestFigureDrivers:
    """Each driver on a one-dataset, one-GPU slice."""

    def test_fig1_structure(self):
        result = fig1_compaction_breakdown(**SMALL)
        assert len(result.rows) == 3  # three primitives
        for _, _, compaction, rest in result.rows:
            assert compaction + rest == pytest.approx(100.0)

    def test_fig9_savings_on_traversals(self):
        result = fig9_normalized_energy(**SMALL)
        for row in result.lookup(algorithm="bfs"):
            assert row["normalized"] < 1.0

    def test_fig10_split_adds_up(self):
        result = fig10_normalized_time(**SMALL)
        for row in result.rows:
            assert row[4] + row[5] == pytest.approx(row[3])

    def test_fig11_enhanced_beats_basic_energy(self):
        result = fig11_basic_vs_enhanced(**SMALL)
        for row in result.rows:
            assert row[5] > row[4]  # enhanced energy reduction > basic

    def test_fig12_has_average_row(self):
        result = fig12_grouping_coalescing(datasets=("human",))
        assert result.rows[-1][0] == "AVG"
        assert result.rows[0][1] > 0

    def test_fig13_utilization_bounded(self):
        result = fig13_bandwidth_utilization(**SMALL)
        for row in result.rows:
            assert 0 <= row[3] <= 100

    def test_table1_parameters(self):
        result = table1_scu_parameters()
        assert dict(result.rows)["Vector Buffering"] == "5 KB"

    def test_table5_has_paper_reference_values(self):
        result = table5_datasets(datasets=("human",))
        row = result.rows[0]
        assert row[0] == "human"
        assert "[2214]" in row[4]
